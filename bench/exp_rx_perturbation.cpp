// E6 — Section 4.3: RX (Qin et al.) — rollback + re-execution under a
// *deliberately changed* environment vs plain checkpoint-retry (same
// rollback, unchanged environment).
//
// Four environment-dependent bug families (buffer overflow needing guard
// space, schedule-dependent race, FIFO message-order bug, overload), plus a
// pure Bohrbug as control. Shape: RX cures every environment-dependent
// family deterministically; plain retry cures none of them (the
// environment is held fixed); neither cures the Bohrbug.
#include <iostream>

#include "techniques/rx.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

class Cell final : public env::Checkpointable {
 public:
  std::int64_t value = 0;
  [[nodiscard]] util::ByteBuffer snapshot() const override {
    util::ByteBuffer buf;
    buf.put(value);
    return buf;
  }
  void restore(const util::ByteBuffer& state) override {
    value = state.reader().get<std::int64_t>();
  }
};

struct BugFamily {
  std::string name;
  std::function<std::function<bool()>(env::SimEnv&)> make_condition;
};

}  // namespace

int main() {
  std::vector<BugFamily> families{
      {"buffer overflow (needs 32B guard)",
       [](env::SimEnv& e) { return env::overflow_condition(e, 32); }},
      {"race on 50% of schedules",
       [](env::SimEnv& e) {
         // Pin an interleaving where the race fires.
         for (std::uint64_t s = 0;; ++s) {
           e.sched_seed = s;
           if (env::race_condition(e, 0.5)()) break;
         }
         return env::race_condition(e, 0.5);
       }},
      {"FIFO message-order bug",
       [](env::SimEnv& e) { return env::order_condition(e); }},
      {"overload above 60% admitted load",
       [](env::SimEnv& e) { return env::overload_condition(e, 0.6); }},
      {"Bohrbug (environment-independent)",
       [](env::SimEnv&) {
         return [] { return true; };
       }},
  };

  util::Table table{
      "E6. RX environment perturbation vs plain checkpoint-retry on "
      "environment-dependent failures (100 failing requests per family)"};
  table.header({"bug family", "RX recovered", "RX cure", "retry recovered"});

  for (const auto& family : families) {
    // --- RX: perturbation menu active.
    std::size_t rx_recovered = 0;
    std::string cure = "-";
    {
      env::SimEnv environment;
      Cell state;
      auto bug = family.make_condition(environment);
      techniques::RxRecovery rx{environment, state};
      for (int i = 0; i < 100; ++i) {
        // Fresh environment per request so every request initially fails.
        environment = env::SimEnv{};
        if (family.name.find("race") != std::string::npos) {
          (void)family.make_condition(environment);  // re-pin a bad schedule
        }
        auto status = rx.execute([&]() -> core::Status {
          state.value += 1;
          if (bug()) return core::failure(core::FailureKind::crash);
          return core::ok_status();
        });
        if (status.has_value()) ++rx_recovered;
      }
      if (!rx.cures().empty()) {
        // Report the dominant cure.
        std::size_t best = 0;
        for (const auto& [name, count] : rx.cures()) {
          if (count > best) {
            best = count;
            cure = name;
          }
        }
      }
    }
    // --- Plain checkpoint-retry: identical loop, empty perturbation menu,
    // but as many retry rounds as RX had perturbations.
    std::size_t retry_recovered = 0;
    {
      env::SimEnv environment;
      Cell state;
      auto bug = family.make_condition(environment);
      techniques::RxRecovery::Options opts;
      opts.max_rounds = 6;
      techniques::RxRecovery plain{
          environment, state,
          {env::Perturbation{"retry-unchanged", [](env::SimEnv e) { return e; }}},
          opts};
      for (int i = 0; i < 100; ++i) {
        environment = env::SimEnv{};
        if (family.name.find("race") != std::string::npos) {
          (void)family.make_condition(environment);
        }
        auto status = plain.execute([&]() -> core::Status {
          state.value += 1;
          if (bug()) return core::failure(core::FailureKind::crash);
          return core::ok_status();
        });
        if (status.has_value()) ++retry_recovered;
      }
    }
    table.row({family.name, util::Table::count(rx_recovered), cure,
               util::Table::count(retry_recovered)});
  }
  table.print(std::cout);
  std::cout << "Shape check: RX recovers 100/100 on every environment-\n"
               "dependent family (each with the medically appropriate cure)\n"
               "and 0/100 on the Bohrbug; plain retry under an unchanged\n"
               "environment recovers none — deliberate environment change,\n"
               "not re-execution, is what heals.\n";
  return 0;
}
