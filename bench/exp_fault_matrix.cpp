// E13 (headline) — empirical validation of Table 2's "Faults" column:
// which technique survives which fault class. Every cell is a seeded
// fault-injection campaign in the technique's own idiom:
//   Bohrbug    — deterministic on a fraction of the input domain,
//   Heisenbug  — transient, re-rolls on every (re-)execution,
//   malicious  — memory-corruption attacks (heap smash / fnptr hijack).
// "n/a" marks class/technique pairs with no meaningful harness (e.g. a
// voting scheme cannot even be *offered* a heap-smash). The shape to
// reproduce: high survival exactly where the paper's taxonomy places each
// technique, low where it warns the technique is powerless.
#include <iostream>
#include <optional>

#include "faults/campaign.hpp"
#include "faults/fault.hpp"
#include "techniques/checkpoint_recovery.hpp"
#include "techniques/data_diversity.hpp"
#include "techniques/microreboot.hpp"
#include "techniques/nvariant_data.hpp"
#include "techniques/nvp.hpp"
#include "techniques/process_pair.hpp"
#include "techniques/process_replicas.hpp"
#include "techniques/recovery_blocks.hpp"
#include "techniques/rx.hpp"
#include "techniques/workarounds.hpp"
#include "techniques/wrappers.hpp"
#include "util/table.hpp"
#include "vm/attacks.hpp"

using namespace redundancy;

namespace {

constexpr std::size_t kRequests = 10'000;
constexpr double kRate = 0.15;

int golden(const int& x) { return 3 * x + 1; }

auto workload() {
  return [](std::size_t i, util::Rng&) { return static_cast<int>(i); };
}

std::vector<core::Variant<int, int>> faulty_versions(std::size_t n, bool bohr) {
  std::vector<core::Variant<int, int>> vs;
  auto rng = std::make_shared<util::Rng>(42);
  for (std::size_t i = 0; i < n; ++i) {
    faults::FaultInjector<int, int> v{"v" + std::to_string(i), golden};
    if (bohr) {
      v.add(faults::bohrbug<int, int>(
          "b", kRate, 800 + i, core::FailureKind::wrong_output,
          faults::skewed<int, int>(static_cast<int>(i) + 1)));
    } else {
      v.add(faults::heisenbug<int, int>("h", kRate, rng));
    }
    vs.push_back(v.as_variant());
  }
  return vs;
}

// Deliberately stays on the *serial* runner: most cells inject Heisenbugs
// (a shared RNG re-rolled per execution) or drive order-dependent state
// (checkpoint recovery, aging + rejuvenation, replica reset), so the draw
// sequence — and thus the printed matrix — is only reproducible when
// requests execute in stream order.
double campaign(std::function<core::Result<int>(const int&)> system) {
  return faults::run_campaign<int, int>("cell", kRequests, workload(),
                                        std::move(system), golden)
      .reliability_value();
}

// --- per-technique cells ----------------------------------------------------

double nvp_cell(bool bohr) {
  techniques::NVersionProgramming<int, int> nvp{faulty_versions(3, bohr)};
  return campaign([&nvp](const int& x) { return nvp.run(x); });
}

double rb_cell(bool bohr) {
  techniques::RecoveryBlocks<int, int> rb{
      faulty_versions(3, bohr),
      [](const int& x, const int& out) { return out == golden(x); }};
  return campaign([&rb](const int& x) { return rb.run(x); });
}

double dd_cell(bool bohr) {
  // One program, input-region fault; re-expressions shift the input and
  // recover the output exactly (golden is affine: g(x+d) - 3d = g(x)).
  auto rng = std::make_shared<util::Rng>(5);
  auto program = [bohr, rng](const int& x) -> core::Result<int> {
    const bool fires = bohr ? faults::input_position(x, 321) < kRate
                            : rng->chance(kRate);
    if (fires) return core::failure(core::FailureKind::crash, "fault");
    return golden(x);
  };
  std::vector<techniques::ReExpression<int, int>> res{
      techniques::identity_reexpression<int, int>(),
      {"x+1", [](const int& x) { return x + 1; },
       [](const int&, const int& out) { return out - 3; }},
      {"x+2", [](const int& x) { return x + 2; },
       [](const int&, const int& out) { return out - 6; }}};
  techniques::RetryBlock<int, int> retry{
      program, res,
      [](const int& x, const int& out) { return out == golden(x); }};
  return campaign([&retry](const int& x) { return retry.run(x); });
}

double cr_cell(bool bohr) {
  class Nop final : public env::Checkpointable {
   public:
    [[nodiscard]] util::ByteBuffer snapshot() const override { return {}; }
    void restore(const util::ByteBuffer&) override {}
  } state;
  techniques::CheckpointRecovery cr{state,
                                    {.checkpoint_every = 1, .max_retries = 4}};
  auto rng = std::make_shared<util::Rng>(9);
  return campaign([&cr, bohr, rng](const int& x) -> core::Result<int> {
    int out = 0;
    auto status = cr.run([&]() -> core::Status {
      const bool fires = bohr ? faults::input_position(x, 654) < kRate
                              : rng->chance(kRate);
      if (fires) return core::failure(core::FailureKind::crash, "fault");
      out = golden(x);
      return core::ok_status();
    });
    if (!status.has_value()) return status.error();
    return out;
  });
}

double rx_cell(int fault_class) {  // 0=bohr, 1=heisen(env), 2=malicious(flood)
  class Nop final : public env::Checkpointable {
   public:
    [[nodiscard]] util::ByteBuffer snapshot() const override { return {}; }
    void restore(const util::ByteBuffer&) override {}
  } state;
  std::size_t survived = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    env::SimEnv environment;
    techniques::RxRecovery rx{environment, state};
    // Env-dependent Heisenbug: fires on 15% of inputs under the *default*
    // environment only; Bohrbug: fires regardless; malicious flood: fires
    // while admitted load is high.
    auto overload = env::overload_condition(environment, 0.6);
    auto race = env::race_condition(environment, kRate);
    auto status = rx.execute([&]() -> core::Status {
      bool fires = false;
      if (fault_class == 0) {
        fires = faults::input_position(i, 77) < kRate;
      } else if (fault_class == 1) {
        fires = race();
      } else {
        fires = faults::input_position(i, 78) < kRate && overload();
      }
      if (fires) return core::failure(core::FailureKind::crash, "fault");
      return core::ok_status();
    });
    if (status.has_value()) ++survived;
  }
  return survived / 200.0;
}

double replicas_cell() {
  techniques::ProcessReplicas replicas{
      vm::vulnerable_server(),
      {.replicas = 2},
      [](vm::Vm& machine, std::size_t base) {
        (void)machine.poke(base + vm::ServerLayout::secret, vm::kSecretValue);
      }};
  const std::size_t base0 = replicas.partitions()[0].base;
  util::Rng rng{13};
  std::size_t safe = 0;
  constexpr std::size_t kRounds = 500;
  for (std::size_t i = 0; i < kRounds; ++i) {
    replicas.reset();
    if (rng.chance(kRate)) {
      // Attack round: safe iff the attack is detected (no silent leak).
      auto out = rng.chance(0.5)
                     ? replicas.serve(vm::absolute_address_attack(base0))
                     : replicas.serve(vm::code_injection_attack(base0, 1));
      const bool leaked =
          out.has_value() && out.value().ret == vm::kSecretValue;
      if (!leaked) ++safe;
    } else {
      auto out = replicas.serve(
          vm::benign_request(static_cast<int>(i), 2 * static_cast<int>(i)));
      if (out.has_value()) ++safe;
    }
  }
  return static_cast<double>(safe) / kRounds;
}

double nvariant_cell() {
  techniques::NVariantStore store{16, 3, 77};
  util::Rng rng{21};
  std::size_t safe = 0;
  constexpr std::size_t kRounds = 2000;
  for (std::size_t i = 0; i < kRounds; ++i) {
    const std::size_t cell = rng.index(16);
    const auto value = static_cast<std::int64_t>(i);
    (void)store.write(cell, value);
    if (rng.chance(kRate)) {
      store.smash_all_variants(cell, static_cast<std::int64_t>(rng()));
      // Safe iff the corruption cannot be read back as a believed value.
      if (!store.read(cell).has_value()) ++safe;
    } else {
      if (store.read(cell).value_or(-1) == value) ++safe;
    }
  }
  return static_cast<double>(safe) / kRounds;
}

double healer_cell() {
  env::HeapModel heap{1 << 16};
  techniques::HeapHealer healer{heap};
  util::Rng rng{31};
  std::vector<env::BlockId> blocks;
  for (int i = 0; i < 64; ++i) {
    blocks.push_back(healer.malloc(32).value());
  }
  std::size_t safe = 0;
  constexpr std::size_t kRounds = 2000;
  const std::vector<std::byte> payload(96, std::byte{0x41});
  for (std::size_t i = 0; i < kRounds; ++i) {
    const auto id = blocks[rng.index(blocks.size())];
    if (rng.chance(kRate)) {
      // Attack: oversized write. Safe iff blocked and nothing corrupted.
      (void)healer.write(id, 0, payload);
      if (heap.corrupted_blocks() == 0) ++safe;
    } else {
      if (healer.write(id, 0, std::span{payload}.first(32)).has_value()) {
        ++safe;
      }
    }
  }
  return static_cast<double>(safe) / kRounds;
}

double process_pair_cell(bool bohr) {
  class Nop final : public env::Checkpointable {
   public:
    [[nodiscard]] util::ByteBuffer snapshot() const override { return {}; }
    void restore(const util::ByteBuffer&) override {}
  } state;
  techniques::ProcessPair pair{state, {.ship_every = 1, .max_takeovers = 2}};
  auto rng = std::make_shared<util::Rng>(61);
  return campaign([&pair, bohr, rng](const int& x) -> core::Result<int> {
    int out = 0;
    auto status = pair.run([&]() -> core::Status {
      const bool fires = bohr ? faults::input_position(x, 987) < kRate
                              : rng->chance(kRate);
      if (fires) return core::failure(core::FailureKind::crash, "fault");
      out = golden(x);
      return core::ok_status();
    });
    if (!status.has_value()) return status.error();
    return out;
  });
}

double microreboot_cell() {
  techniques::MicrorebootContainer app;
  (void)app.add_component("core", 100.0);
  (void)app.add_component("worker", 5.0, "core");
  util::Rng rng{41};
  std::size_t ok = 0;
  constexpr std::size_t kRounds = 5000;
  for (std::size_t i = 0; i < kRounds; ++i) {
    if (rng.chance(kRate)) (void)app.fail("worker");  // transient wedge
    if (app.serve("worker").has_value()) {
      ++ok;
    } else {
      (void)app.microreboot("worker");  // reactive recovery
      if (app.serve("worker").has_value()) ++ok;
    }
  }
  return static_cast<double>(ok) / kRounds;
}

double workarounds_cell(bool bohr) {
  // The container bug fires on the bulk op; for the Heisenbug variant it is
  // transient, for the Bohrbug variant deterministic. The rewrite engine
  // heals both (a re-execution happens either way), but only the Bohrbug
  // case *requires* the alternative sequence.
  auto rng = std::make_shared<util::Rng>(51);
  std::size_t ok = 0;
  constexpr std::size_t kRounds = 2000;
  for (std::size_t i = 0; i < kRounds; ++i) {
    const bool fires = bohr ? faults::input_position(i, 61) < kRate
                            : rng->chance(kRate);
    auto executor = [&](const techniques::Sequence& seq) -> core::Status {
      for (const auto& op : seq) {
        if (op == "addAll(1,2)" && fires && bohr) {
          return core::failure(core::FailureKind::crash, "bulk bug");
        }
        if (op == "addAll(1,2)" && !bohr && rng->chance(kRate)) {
          return core::failure(core::FailureKind::crash, "transient");
        }
      }
      return core::ok_status();
    };
    techniques::Sequence seq{"open", "addAll(1,2)", "close"};
    if (executor(seq).has_value()) {
      ++ok;
      continue;
    }
    techniques::AutomaticWorkarounds healer{
        {{"expand", {"addAll(1,2)"}, {"add(1)", "add(2)"}}}, executor};
    if (healer.heal(seq).has_value()) ++ok;
  }
  return static_cast<double>(ok) / kRounds;
}

std::string cell(std::optional<double> v) {
  return v ? util::Table::pct(*v, 1) : "n/a";
}

}  // namespace

int main() {
  util::Table table{
      "E13. Technique x fault class: survival rate under 15% fault "
      "activation (validates the 'Faults' column of Table 2)"};
  table.header({"technique", "Table 2 says", "Bohrbug", "Heisenbug",
                "malicious"});
  table.row({"(unprotected baseline)", "-",
             cell(campaign([](const int& x) -> core::Result<int> {
               if (faults::input_position(x, 1) < kRate) {
                 return core::failure(core::FailureKind::crash);
               }
               return golden(x);
             })),
             cell(1.0 - kRate), cell(1.0 - kRate)});
  table.separator();
  table.row({"N-version programming", "development", cell(nvp_cell(true)),
             cell(nvp_cell(false)), "n/a"});
  table.row({"Recovery blocks", "development", cell(rb_cell(true)),
             cell(rb_cell(false)), "n/a"});
  table.row({"Data diversity", "development", cell(dd_cell(true)),
             cell(dd_cell(false)), "n/a"});
  table.row({"Automatic workarounds", "development",
             cell(workarounds_cell(true)), cell(workarounds_cell(false)),
             "n/a"});
  table.row({"Checkpoint-recovery", "Heisenbugs", cell(cr_cell(true)),
             cell(cr_cell(false)), "n/a"});
  table.row({"Environment perturbation (RX)", "development (mostly Heisen)",
             cell(rx_cell(0)), cell(rx_cell(1)), cell(rx_cell(2))});
  table.row({"Process pairs (Gray)", "Heisenbugs (ref. [16])",
             cell(process_pair_cell(true)), cell(process_pair_cell(false)),
             "n/a"});
  table.row({"Reboot and micro-reboot", "Heisenbugs", "n/a",
             cell(microreboot_cell()), "n/a"});
  table.row({"Process replicas", "malicious", "n/a", "n/a",
             cell(replicas_cell())});
  table.row({"Data diversity for security", "malicious", "n/a", "n/a",
             cell(nvariant_cell())});
  table.row({"Wrappers (heap healer)", "Bohrbugs, malicious", "n/a", "n/a",
             cell(healer_cell())});
  table.print(std::cout);
  std::cout
      << "Shape check (vs Table 2): code/data-redundancy techniques lift\n"
         "both development classes far above the 85% baseline; checkpoint\n"
         "recovery splits sharply — Heisenbugs ~100%, Bohrbugs stuck at the\n"
         "baseline; RX adds deterministic cures for environment-dependent\n"
         "and flood-induced failures but not input-deterministic ones; the\n"
         "security mechanisms turn silent compromises into detections.\n";
  return 0;
}
