// Figure 1 — the three inter-component redundancy patterns, characterized
// quantitatively: execution cost (variants run per request), adjudication
// count, redundancy consumption, and the reliability each pattern delivers
// over the same pool of faulty variants. The *shape* to reproduce: parallel
// evaluation always pays N executions but needs no application-specific
// test; parallel selection pays N and consumes redundancy permanently;
// sequential alternatives pays ~1 execution when healthy and degrades
// gracefully.
#include <iostream>
#include <memory>

#include "campaign_runner.hpp"
#include "core/parallel_evaluation.hpp"
#include "core/parallel_selection.hpp"
#include "core/sequential_alternatives.hpp"
#include "faults/campaign.hpp"
#include "faults/fault.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

int golden(const int& x) { return x * 31 + 7; }

std::vector<core::Variant<int, int>> make_pool(std::size_t n, double p) {
  std::vector<core::Variant<int, int>> pool;
  for (std::size_t i = 0; i < n; ++i) {
    faults::FaultInjector<int, int> v{"v" + std::to_string(i), golden};
    v.add(faults::bohrbug<int, int>(
        "b", p, 900 + i, core::FailureKind::wrong_output,
        faults::skewed<int, int>(static_cast<int>(i) + 1)));
    pool.push_back(v.as_variant());
  }
  return pool;
}

core::AcceptanceTest<int, int> oracle_test() {
  return [](const int& x, const int& out) { return out == golden(x); };
}

}  // namespace

int main() {
  constexpr std::size_t kRequests = 20'000;
  constexpr double kFaultRate = 0.10;

  util::Table table{
      "Figure 1 quantified: the three architectural patterns over the same "
      "pool of faulty variants (per-variant fault rate 10%, 20k requests)"};
  table.header({"pattern", "N", "reliability", "execs/req", "adjudications",
                "consumed"});

  auto workload = [](std::size_t i, util::Rng&) { return static_cast<int>(i); };

  for (std::size_t n : {3u, 5u, 7u}) {
    {  // (a) parallel evaluation: run all, vote once, implicit adjudicator
      using PE = core::ParallelEvaluation<int, int>;
      auto cell = bench::run_sharded<int, int>(
          "pe", kRequests, workload,
          [&] {
            return std::make_shared<PE>(make_pool(n, kFaultRate),
                                        core::majority_voter<int>());
          },
          [](PE& pe, const int& x) { return pe.run(x); }, golden);
      table.row({"(a) parallel evaluation", util::Table::count(n),
                 util::Table::pct(cell.report.reliability_value(), 2),
                 util::Table::num(cell.metrics.executions_per_request(), 2),
                 util::Table::count(cell.metrics.adjudications), "0"});
    }
    {  // (b) parallel selection, masking discipline: per-component checks
       // select the best result each round; suited to transient/per-input
       // faults, nothing is consumed.
      using PS = core::ParallelSelection<int, int>;
      auto cell = bench::run_sharded<int, int>(
          "ps", kRequests, workload,
          [&] {
            std::vector<PS::Checked> comps;
            for (auto& v : make_pool(n, kFaultRate)) {
              comps.push_back(PS::Checked{std::move(v), oracle_test()});
            }
            return std::make_shared<PS>(
                std::move(comps), typename PS::Options{
                                      .disable_on_failure = false,
                                      .lazy = false});
          },
          [](PS& ps, const int& x) { return ps.run(x); }, golden);
      table.row({"(b) parallel selection (mask)", util::Table::count(n),
                 util::Table::pct(cell.report.reliability_value(), 2),
                 util::Table::num(cell.metrics.executions_per_request(), 2),
                 util::Table::count(cell.metrics.adjudications), "0"});
    }
    {  // (b) parallel selection, consuming discipline: a rejected component
       // is discarded for good (self-checking hot-spare semantics). Against
       // per-input faults this drains the pool — the figure quantifies the
       // paper's warning that "execution progressively consumes the initial
       // explicit redundancy" unless components are redeployed. Each shard
       // consumes (and redeploys) its own pool.
      using PS = core::ParallelSelection<int, int>;
      struct Consuming {
        PS ps;
        std::size_t served = 0;
        core::Result<int> run(const int& x) {
          if (++served % 50 == 0) ps.reinstate_all();  // ops redeploys
          return ps.run(x);
        }
        [[nodiscard]] const core::Metrics& metrics() const noexcept {
          return ps.metrics();
        }
      };
      auto cell = bench::run_sharded<int, int>(
          "ps", kRequests, workload,
          [&] {
            std::vector<PS::Checked> comps;
            for (auto& v : make_pool(n, kFaultRate)) {
              comps.push_back(PS::Checked{std::move(v), oracle_test()});
            }
            return std::make_shared<Consuming>(
                Consuming{PS{std::move(comps)}});
          },
          [](Consuming& c, const int& x) { return c.run(x); }, golden);
      table.row({"(b) parallel selection (consume)", util::Table::count(n),
                 util::Table::pct(cell.report.reliability_value(), 2),
                 util::Table::num(cell.metrics.executions_per_request(), 2),
                 util::Table::count(cell.metrics.adjudications),
                 util::Table::count(cell.metrics.disabled_components)});
    }
    {  // (c) sequential alternatives: try next only on rejection
      using SA = core::SequentialAlternatives<int, int>;
      auto cell = bench::run_sharded<int, int>(
          "sa", kRequests, workload,
          [&] {
            return std::make_shared<SA>(make_pool(n, kFaultRate),
                                        oracle_test());
          },
          [](SA& sa, const int& x) { return sa.run(x); }, golden);
      table.row({"(c) sequential alternatives", util::Table::count(n),
                 util::Table::pct(cell.report.reliability_value(), 2),
                 util::Table::num(cell.metrics.executions_per_request(), 2),
                 util::Table::count(cell.metrics.adjudications), "0"});
    }
    table.separator();
  }
  table.print(std::cout);
  std::cout << "Shape check: (a) and (b) pay ~N executions per request; (c)\n"
               "pays ~1 when the primary is healthy. With oracle-grade\n"
               "explicit adjudicators, (b-mask)/(c) outrank (a)'s majority\n"
               "vote, whose quorum can deadlock when wrong answers disagree.\n"
               "The consuming variant of (b) shows the paper's warning:\n"
               "against per-input faults, discard-on-failure burns through\n"
               "the redundancy pool and reliability collapses between\n"
               "redeployments.\n";
  return 0;
}
