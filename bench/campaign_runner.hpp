// Shared helper for the experiment drivers: run a fault-injection campaign
// through faults::run_campaign_parallel with one system instance per shard
// and merge the per-instance metrics afterwards.
//
// Techniques are cheap to construct but carry per-instance state (metrics,
// disabled components, learned weights), so shards must not share one
// instance. The worker count is pinned — not taken from the machine — so
// shard boundaries, and therefore the printed numbers of *stateful* systems,
// are identical everywhere. Stateless systems produce counts identical to
// the serial runner for any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "faults/campaign.hpp"

namespace redundancy::bench {

/// Pinned shard count for every experiment driver (reproducibility beats
/// auto-scaling here; the pool still provides the actual threads).
inline constexpr std::size_t kCampaignWorkers = 8;

template <typename System>
struct ShardedCampaign {
  faults::CampaignReport report;
  core::Metrics metrics;  ///< sum over all shard instances
  std::vector<std::shared_ptr<System>> shards;
};

/// `make_system` builds one shared_ptr<System> per shard (called on this
/// thread); `run_one(system, input)` serves one request on it.
template <typename In, typename Out, typename MakeSystem, typename RunOne>
auto run_sharded(std::string name, std::size_t requests,
                 std::function<In(std::size_t, util::Rng&)> workload,
                 MakeSystem make_system, RunOne run_one,
                 std::function<Out(const In&)> oracle,
                 std::uint64_t seed = 1) {
  using System = typename decltype(make_system())::element_type;
  ShardedCampaign<System> out;
  out.report = faults::run_campaign_parallel<In, Out>(
      std::move(name), requests, std::move(workload),
      [&]() -> std::function<core::Result<Out>(const In&)> {
        std::shared_ptr<System> sys = make_system();
        out.shards.push_back(sys);
        return [sys, run_one](const In& x) { return run_one(*sys, x); };
      },
      std::move(oracle), seed, kCampaignWorkers);
  for (const auto& s : out.shards) out.metrics += s->metrics();
  return out;
}

}  // namespace redundancy::bench
