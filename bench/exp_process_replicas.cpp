// E7 — Section 4.3: process replicas / N-variant systems (Cox et al.).
//
// The vulnerable VM server is deployed under each protection configuration
// and fed benign traffic plus the two attack payloads. Shape to reproduce
// (Cox's coverage claims): address-space partitioning catches the
// absolute-address attack, instruction tagging catches code injection,
// replication *without* diversification catches nothing, and benign
// requests are never flagged (no false positives).
#include <iostream>

#include "techniques/process_replicas.hpp"
#include "util/table.hpp"
#include "vm/attacks.hpp"

using namespace redundancy;

namespace {

struct Config {
  std::string name;
  techniques::ProcessReplicas::Options options;
};

}  // namespace

int main() {
  const std::vector<Config> configs{
      {"single replica, no protection",
       {.replicas = 1, .partition_addresses = false, .tag_instructions = false}},
      {"2 identical replicas (no diversity)",
       {.replicas = 2, .partition_addresses = false, .tag_instructions = false}},
      {"2 replicas, partitioned addresses",
       {.replicas = 2, .partition_addresses = true, .tag_instructions = false}},
      {"2 replicas, tagged instructions",
       {.replicas = 2, .partition_addresses = false, .tag_instructions = true}},
      {"2 replicas, partitioned + tagged", {.replicas = 2}},
      {"3 replicas, partitioned + tagged", {.replicas = 3}},
  };

  util::Table table{
      "E7. N-variant process replicas vs memory attacks on the vulnerable "
      "server (100 benign requests + the two attack payloads per config)"};
  table.header({"configuration", "benign ok", "false alarms",
                "abs-address attack", "code injection"});

  for (const auto& config : configs) {
    techniques::ProcessReplicas replicas{
        vm::vulnerable_server(), config.options,
        [](vm::Vm& machine, std::size_t base) {
          (void)machine.poke(base + vm::ServerLayout::secret,
                             vm::kSecretValue);
        }};
    const std::size_t base0 = replicas.partitions()[0].base;

    std::size_t benign_ok = 0, false_alarms = 0;
    for (int i = 0; i < 100; ++i) {
      replicas.reset();
      auto out = replicas.serve(vm::benign_request(i, i * 3));
      if (out.has_value() && out.value().ret == i + i * 3) {
        ++benign_ok;
      } else {
        ++false_alarms;
      }
    }

    auto judge = [&](const vm::Request& attack) -> std::string {
      replicas.reset();
      auto out = replicas.serve(attack);
      if (!out.has_value() &&
          out.error().kind == core::FailureKind::detected_attack) {
        return "DETECTED";
      }
      if (out.has_value() && out.value().ret == vm::kSecretValue) {
        return "secret leaked";
      }
      return "crashed";
    };
    const std::string abs = judge(vm::absolute_address_attack(base0));
    // Attacker guesses the first replica's tag (best case for the attacker).
    const std::string inj = judge(vm::code_injection_attack(
        base0, config.options.tag_instructions ? 1 : 0));

    table.row({config.name, util::Table::count(benign_ok),
               util::Table::count(false_alarms), abs, inj});
  }
  table.print(std::cout);
  std::cout << "Shape check: no configuration flags benign traffic; plain\n"
               "replication leaks the secret in unison (undetected);\n"
               "partitioning alone stops the absolute-address attack,\n"
               "tagging alone stops code injection, and the combined\n"
               "deployment stops both — the two Cox diversifications are\n"
               "complementary, and secretless (detection needs no keys).\n";
  return 0;
}
