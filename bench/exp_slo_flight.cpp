// E23: live SLO engine + crash flight recorder gating experiment.
//
// Three gates, all on the real production pipeline (SloTracker ->
// snapshot_jsonl -> tracetool loaders; FlightRecorder -> crash handler ->
// tracetool loaders):
//
//   A. Reaction: under an injected fault burst, the windowed p99 and the
//      multi-window burn rate must react within ONE window rotation (the
//      page-level fast_burn rule fires, the class goes failing, a synthetic
//      rejected verdict is emitted) while the cumulative p99 stays flat —
//      the whole point of windowing over cumulative-since-boot metrics.
//   B. Black box: a forked child installs the crash handler, leaves
//      breadcrumbs, and dies on SIGSEGV. The parent must find an appended
//      dump that tracetool parses, holding exactly one ring of the newest
//      crumbs. Runs FIRST, before any threads exist in this process.
//   C. Overhead: slo.observe() + flight record() on a request-shaped
//      workload (~10 us bodies — an order of magnitude below the cheapest
//      gateway route) must cost < 5%, with the rotation thread running.
//
// Also emits BENCH_exp_slo_flight.json (bench_compare.py schema) with
// tight-loop throughput series for the three new hot-path primitives, plus
// the slo_snapshot.jsonl / flight_crash.dump.jsonl artifacts.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "obs/windowed.hpp"
#include "tracetool/trace_model.hpp"

using namespace redundancy;

namespace {

constexpr std::uint64_t kSec = 1'000'000'000ull;
constexpr std::uint64_t kMs = 1'000'000ull;
constexpr double kBudgetPct = 5.0;

// ---------------------------------------------------------------- Part B --

constexpr const char* kCrashDump = "flight_crash.dump.jsonl";

/// Fork a child that breadcrumbs then SIGSEGVs; parse what the crash
/// handler appended. Must run before this process spawns any threads.
bool run_crash_box(std::string& detail) {
  std::remove(kCrashDump);
  const pid_t pid = fork();
  if (pid < 0) {
    detail = "fork failed";
    return false;
  }
  if (pid == 0) {
    auto& fr = obs::FlightRecorder::instance();
    fr.enable(256);
    fr.install_crash_handler(kCrashDump);
    for (std::uint64_t i = 0; i < 1000; ++i) {
      fr.record(obs::FlightKind::mark, "crumb", 0, i, 0, true);
    }
    volatile int* boom = nullptr;
    *boom = 1;  // SIGSEGV -> handler appends dump -> re-raise
    _exit(0);   // not reached
  }

  int status = 0;
  if (waitpid(pid, &status, 0) != pid || !WIFSIGNALED(status) ||
      WTERMSIG(status) != SIGSEGV) {
    detail = "child did not die by SIGSEGV";
    return false;
  }
  std::ifstream in{kCrashDump};
  if (!in.is_open()) {
    detail = "no dump file appeared";
    return false;
  }
  tracetool::FlightDump dump;
  tracetool::load_flight(in, dump);
  std::size_t crumbs = 0;
  std::uint64_t max_a = 0;
  for (const auto& e : dump.events) {
    if (e.kind == "mark" && e.name == "crumb") {
      ++crumbs;
      if (e.a > max_a) max_a = e.a;
    }
  }
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%zu crumbs (ring %llu), newest payload %llu, "
                "%zu malformed line(s)",
                crumbs,
                static_cast<unsigned long long>(dump.records_per_thread),
                static_cast<unsigned long long>(max_a), dump.malformed_lines);
  detail = buf;
  // The child wrote 1000 crumbs into a 256-slot ring: the dump must hold
  // exactly one ring of the newest ones. Torn records are tolerated but a
  // crash dump of a quiesced child should not produce any.
  return crumbs == dump.records_per_thread && max_a == 999 &&
         dump.malformed_lines == 0;
}

// ---------------------------------------------------------------- Part A --

struct ReactionResult {
  bool pass = false;
  double windowed_p99_before_ms = 0, windowed_p99_after_ms = 0;
  double cumulative_p99_after_ms = 0;
  double burn_10s = 0;
  std::string state_after;
  std::vector<std::string> firing;
  bool verdict_rejected = false;
  int breaches = 0;
};

const tracetool::SloWindowRow* find_window(const tracetool::SloSnapshot& snap,
                                           const std::string& window) {
  for (const auto& w : snap.windows) {
    if (w.window == window) return &w;
  }
  return nullptr;
}

tracetool::SloSnapshot parse_snapshot(obs::SloTracker& slo,
                                      std::uint64_t now) {
  std::istringstream in{slo.snapshot_jsonl(now)};
  tracetool::SloSnapshot snap;
  tracetool::load_slo_snapshot(in, snap);
  return snap;
}

/// 10 minutes of healthy 1000 req/s at 1 ms, then one epoch where every
/// request fails slow (20 ms) — all with synthetic 1 s epochs.
ReactionResult run_reaction() {
  ReactionResult r;
  obs::SloTracker::Options options;
  options.epoch_ns = kSec;
  options.slots = 3700;
  obs::SloTracker slo{options};
  slo.register_class("api", {5 * kMs, 0.999});

  bool last_accepted = true;
  slo.set_verdict_callback([&last_accepted](const obs::AdjudicationEvent& v) {
    last_accepted = v.accepted;
  });
  slo.set_breach_callback(
      [&r](const std::string&, const std::string&) { ++r.breaches; });

  std::uint64_t now = 0;
  for (int epoch = 1; epoch <= 600; ++epoch) {
    for (int i = 0; i < 1000; ++i) slo.observe("api", 1 * kMs, true);
    now = std::uint64_t(epoch) * kSec;
    slo.tick(now);
  }
  const tracetool::SloSnapshot before = parse_snapshot(slo, now);
  if (const auto* w = find_window(before, "10s")) {
    r.windowed_p99_before_ms = w->p99_ns / 1e6;
  }

  // The burst: one epoch of total outage, then ONE rotation.
  for (int i = 0; i < 1000; ++i) slo.observe("api", 20 * kMs, false);
  now += kSec;
  slo.tick(now);

  const tracetool::SloSnapshot after = parse_snapshot(slo, now);
  const auto* w10 = find_window(after, "10s");
  if (w10 != nullptr) {
    r.windowed_p99_after_ms = w10->p99_ns / 1e6;
    r.burn_10s = w10->burn_rate;
  }
  if (!after.classes.empty()) {
    r.state_after = after.classes[0].state;
    r.firing = after.classes[0].firing;
  }
  r.verdict_rejected = !last_accepted;
  // Cumulative view over the same metric: 601k samples, 1k of them slow.
  const obs::HistogramSnapshot cumulative =
      obs::MetricsRegistry::instance()
          .histogram("slo.latency_ns", "api")
          .snapshot();
  r.cumulative_p99_after_ms = cumulative.percentile(99.0) / 1e6;

  bool fast_burn_firing = false;
  for (const auto& f : r.firing) fast_burn_firing |= (f == "fast_burn");
  r.pass = r.windowed_p99_after_ms > 10.0 &&       // window sees the burst
           r.cumulative_p99_after_ms < 3.0 &&      // cumulative does not
           r.burn_10s > obs::default_burn_rules()[0].threshold &&
           r.state_after == "failing" && fast_burn_firing &&
           r.verdict_rejected && r.breaches == 1;
  return r;
}

// ---------------------------------------------------------------- Part C --

/// ~10 us of real work: the floor of a request body behind the gateway.
int busy_request(int x) {
  const std::uint64_t t0 = obs::now_ns();
  int acc = x;
  while (obs::now_ns() - t0 < 10'000) {
    acc = acc * 1664525 + 1013904223;
  }
  return acc >= 0 ? x + 1 : x + 1;
}

constexpr std::size_t kRequests = 5'000;
constexpr std::size_t kWarmup = 500;
constexpr int kRounds = 5;

template <typename Fn>
double measure(Fn&& per_request) {
  double best = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < kWarmup; ++i) per_request(int(i));
    const std::uint64_t t0 = obs::now_ns();
    for (std::size_t i = 0; i < kRequests; ++i) per_request(int(i));
    const double mean = double(obs::now_ns() - t0) / double(kRequests);
    if (round == 0 || mean < best) best = mean;
  }
  return best;
}

struct OverheadResult {
  double base_ns = 0, instrumented_ns = 0, pct = 0;
  bool pass = false;
};

OverheadResult run_overhead() {
  OverheadResult r;
  r.base_ns = measure([](int x) { (void)busy_request(x); });

  obs::SloTracker slo;                     // production cadence options
  slo.register_class("bench", {5 * kMs, 0.999});
  slo.start(100 * kMs);                    // rotation thread, 100 ms epochs
  obs::FlightRecorder::instance().enable(1024);
  const std::string cls = "bench";         // gateway passes a stored string
  r.instrumented_ns = measure([&slo, &cls](int x) {
    const std::uint64_t t0 = obs::now_ns();
    (void)busy_request(x);
    const std::uint64_t latency = obs::now_ns() - t0;
    slo.observe(cls, latency, true);
    obs::FlightRecorder::instance().record(obs::FlightKind::gateway, cls, 0,
                                           200, latency, true);
  });
  slo.stop();
  obs::FlightRecorder::instance().disable();

  r.pct = r.base_ns > 0.0
              ? (r.instrumented_ns - r.base_ns) / r.base_ns * 100.0
              : 0.0;
  r.pass = r.pct < kBudgetPct;
  return r;
}

// ------------------------------------------------------- throughput series --

struct Series {
  std::string name;
  double ops_per_sec = 0, mean_ns = 0;
  std::size_t repetitions = 0;
};

template <typename Fn>
Series time_series(const std::string& name, std::size_t reps, Fn&& op) {
  Series s;
  s.name = name;
  s.repetitions = reps;
  double best_total = 0.0;
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t t0 = obs::now_ns();
    for (std::size_t i = 0; i < reps; ++i) op(i);
    const double total = double(obs::now_ns() - t0);
    if (round == 0 || total < best_total) best_total = total;
  }
  s.mean_ns = best_total / double(reps);
  s.ops_per_sec = s.mean_ns > 0.0 ? 1e9 / s.mean_ns : 0.0;
  return s;
}

std::vector<Series> run_series() {
  std::vector<Series> all;

  obs::SloTracker::Options options;
  options.epoch_ns = kSec;
  options.slots = 361;
  obs::SloTracker slo{options};
  slo.register_class("series", {5 * kMs, 0.999});
  const std::string cls = "series";
  all.push_back(time_series("slo_observe", 1'000'000, [&slo, &cls](size_t i) {
    slo.observe(cls, (i & 1023) * 1000, true);
  }));

  auto& fr = obs::FlightRecorder::instance();
  fr.enable(1024);
  all.push_back(time_series("flight_record", 1'000'000, [&fr](std::size_t i) {
    fr.record(obs::FlightKind::mark, "series", 0, i, 0, true);
  }));
  fr.disable();

  // Window query over a fully-populated 1m window of 1 s epochs: the /slo
  // read path (merge K epoch deltas + live partial, then percentile).
  obs::Histogram hist;
  obs::WindowedHistogram wh{hist, {kSec, 361}};
  for (std::uint64_t epoch = 1; epoch <= 361; ++epoch) {
    for (int i = 0; i < 100; ++i) hist.record((i + 1) * 1000);
    wh.rotate(epoch * kSec);
  }
  all.push_back(time_series("window_query_1m", 100'000, [&wh](std::size_t) {
    const obs::HistogramSnapshot w = wh.window(60 * kSec, 361 * kSec);
    if (w.percentile(99.0) < 0.0) std::abort();  // keep the work observable
  }));
  return all;
}

void write_json(const std::vector<Series>& all) {
  const char* path = "BENCH_exp_slo_flight.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "exp_slo_flight: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"binary\": \"exp_slo_flight\",\n");
  std::fprintf(f, "  \"benchmarks\": [\n");
  bool first = true;
  for (const auto& s : all) {
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"ops_per_sec\": %.3f, "
                 "\"latency_ns_mean\": %.1f, \"repetitions\": %zu, "
                 "\"threads\": 1}",
                 first ? "" : ",\n", s.name.c_str(), s.ops_per_sec, s.mean_ns,
                 s.repetitions);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  std::printf("E23. Live SLO engine + crash flight recorder\n\n");

  // B first: fork before any thread exists in this process.
  std::string crash_detail;
  const bool crash_ok = run_crash_box(crash_detail);
  std::printf("B. crash black box: %s -> %s\n", crash_detail.c_str(),
              crash_ok ? "PASS" : "FAIL");

  const ReactionResult reaction = run_reaction();
  std::printf(
      "A. fault-burst reaction (1 s epochs, 600 healthy + 1 outage):\n");
  std::printf("   windowed p99(10s)  %8.2f ms -> %8.2f ms\n",
              reaction.windowed_p99_before_ms, reaction.windowed_p99_after_ms);
  std::printf("   cumulative p99     %8.2f ms (must stay flat)\n",
              reaction.cumulative_p99_after_ms);
  std::printf("   burn(10s) %.1f, state '%s', rejected verdict %s, "
              "breach callbacks %d -> %s\n",
              reaction.burn_10s, reaction.state_after.c_str(),
              reaction.verdict_rejected ? "yes" : "no", reaction.breaches,
              reaction.pass ? "PASS" : "FAIL");

  const OverheadResult overhead = run_overhead();
  std::printf("C. observe+record overhead on %zu x ~10 us requests "
              "(best of %d):\n", kRequests, kRounds);
  std::printf("   %10.1f ns -> %10.1f ns  (%+.2f%%, budget < %.1f%%) -> %s\n",
              overhead.base_ns, overhead.instrumented_ns, overhead.pct,
              kBudgetPct, overhead.pass ? "PASS" : "FAIL");

  const std::vector<Series> series = run_series();
  for (const auto& s : series) {
    std::printf("   %-18s %12.0f ops/s  (%.1f ns/op)\n", s.name.c_str(),
                s.ops_per_sec, s.mean_ns);
  }
  write_json(series);

  // Artifact: the snapshot the /slo route would serve for this process.
  {
    obs::SloTracker slo;
    slo.register_class("artifact", {5 * kMs, 0.999});
    for (int i = 0; i < 100; ++i) slo.observe("artifact", 1 * kMs, true);
    slo.tick(obs::now_ns());
    std::ofstream out{"slo_snapshot.jsonl"};
    out << slo.snapshot_jsonl(obs::now_ns());
    std::printf("wrote slo_snapshot.jsonl and %s\n", kCrashDump);
  }

  const bool pass = crash_ok && reaction.pass && overhead.pass;
  std::printf("\noverall: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
