// B7 — microbenchmark: failure-free overhead and recovery latency of the
// rollback-recovery protocols — the survey's other axis: what a protocol
// costs when nothing goes wrong, and how fast it recovers when something
// does.
#include <benchmark/benchmark.h>

#include "rollback/distsim.hpp"

using namespace redundancy;
using rollback::Protocol;
using rollback::Simulation;

namespace {

Simulation::Config cfg(Protocol protocol) {
  Simulation::Config config;
  config.processes = 6;
  config.protocol = protocol;
  config.checkpoint_every = 25;
  config.send_probability = 0.5;
  config.seed = 3;
  return config;
}

void failure_free(benchmark::State& state, Protocol protocol) {
  for (auto _ : state) {
    Simulation sim{cfg(protocol)};
    sim.run(500);
    benchmark::DoNotOptimize(sim.total_work());
  }
  state.SetItemsProcessed(state.iterations() * 500);
}

void BM_FailureFreeUncoordinated(benchmark::State& state) {
  failure_free(state, Protocol::uncoordinated);
}
BENCHMARK(BM_FailureFreeUncoordinated);

void BM_FailureFreeCoordinated(benchmark::State& state) {
  failure_free(state, Protocol::coordinated);
}
BENCHMARK(BM_FailureFreeCoordinated);

void BM_FailureFreeMessageLogging(benchmark::State& state) {
  failure_free(state, Protocol::message_logging);
}
BENCHMARK(BM_FailureFreeMessageLogging);

void recovery(benchmark::State& state, Protocol protocol) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim{cfg(protocol)};
    sim.run(500);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.crash_and_recover(0));
  }
}

void BM_RecoveryUncoordinated(benchmark::State& state) {
  recovery(state, Protocol::uncoordinated);
}
BENCHMARK(BM_RecoveryUncoordinated);

void BM_RecoveryCoordinated(benchmark::State& state) {
  recovery(state, Protocol::coordinated);
}
BENCHMARK(BM_RecoveryCoordinated);

void BM_RecoveryMessageLogging(benchmark::State& state) {
  recovery(state, Protocol::message_logging);
}
BENCHMARK(BM_RecoveryMessageLogging);

}  // namespace
