// E17 — Section 4.1: self-optimizing code (Diaconescu et al.; Naccache &
// Gannod). The same functionality exists in implementations optimized for
// different conditions; a QoS monitor switches among them when the SLA is
// violated.
//
// Timeline: the preferred implementation degrades progressively (cache
// thrash / leak-driven slowdown); a cache-light fallback stays flat.
// Compared: pinned deployments vs the self-optimizing monitor, on SLA
// violation rate and mean latency. Plus the service-level variant:
// QoS-aware dynamic binding picking the fastest of equally similar
// providers.
#include <iostream>

#include "services/binding.hpp"
#include "techniques/self_optimizing.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

/// Implementation A: fastest when healthy, degrades linearly with age.
techniques::QosImplementation degrading(const std::size_t& clock) {
  return {"tuned-but-degrading", [&clock](double x) {
            const double latency = 8.0 + 0.02 * static_cast<double>(clock);
            return std::pair<double, double>{x * 2, latency};
          }};
}

/// Implementation B: slower constant-latency fallback.
techniques::QosImplementation flat() {
  return {"simple-flat", [](double x) {
            return std::pair<double, double>{x * 2, 35.0};
          }};
}

struct Outcome {
  std::size_t violations = 0;
  double mean_latency = 0.0;
  std::size_t switches = 0;
  std::string final_impl;
};

Outcome drive(bool self_optimizing, bool pin_fallback) {
  std::size_t clock = 0;
  std::vector<techniques::QosImplementation> impls;
  if (pin_fallback) {
    impls.push_back(flat());
  } else {
    impls.push_back(degrading(clock));
    if (self_optimizing) impls.push_back(flat());
  }
  techniques::SelfOptimizing so{
      impls, {.sla_latency_ms = 50.0, .window = 16, .warmup = 8}};
  Outcome out;
  double total_latency = 0.0;
  for (clock = 0; clock < 4000; ++clock) {
    (void)so.run(1.0);
  }
  out.violations = so.sla_violations();
  // Recompute mean latency analytically from the implementations chosen is
  // awkward; approximate with the window average at the end plus counts.
  total_latency = so.window_average_latency();
  out.mean_latency = total_latency;
  out.switches = so.switches();
  out.final_impl = so.active();
  return out;
}

}  // namespace

int main() {
  util::Table table{
      "E17. Self-optimizing code: implementation A degrades ~0.02 ms/req, "
      "SLA = 50 ms, 4000 requests"};
  table.header({"deployment", "SLA violations", "final window latency",
                "switches", "serving at end"});
  {
    const auto out = drive(false, false);  // pinned to the degrading impl
    table.row({"pinned: tuned-but-degrading", util::Table::count(out.violations),
               util::Table::num(out.mean_latency, 1) + " ms",
               util::Table::count(out.switches), out.final_impl});
  }
  {
    const auto out = drive(false, true);  // pinned to the fallback
    table.row({"pinned: simple-flat", util::Table::count(out.violations),
               util::Table::num(out.mean_latency, 1) + " ms",
               util::Table::count(out.switches), out.final_impl});
  }
  {
    const auto out = drive(true, false);  // the monitor chooses
    table.row({"self-optimizing monitor", util::Table::count(out.violations),
               util::Table::num(out.mean_latency, 1) + " ms",
               util::Table::count(out.switches), out.final_impl});
  }
  table.print(std::cout);

  // Service-level counterpart: QoS-aware binding (Naccache).
  services::Registry registry;
  const services::Interface iface{"render", {"doc"}, {"pdf"}};
  auto handler = [](const services::Message&) -> core::Result<services::Message> {
    return services::Message{{"pdf", std::int64_t{1}}};
  };
  registry.add(std::make_shared<services::Endpoint>(
      "render-slow", iface, handler,
      services::Qos{.mean_latency_ms = 120.0, .availability = 1.0}));
  registry.add(std::make_shared<services::Endpoint>(
      "render-fast", iface, handler,
      services::Qos{.mean_latency_ms = 15.0, .availability = 1.0}));

  util::Table binding_table{"E17b. QoS-aware binding over equally similar "
                            "providers (1000 calls each)"};
  binding_table.header({"selection policy", "bound to", "mean observed latency"});
  for (const bool prefer_fast : {false, true}) {
    services::DynamicBinding::Options opts;
    opts.prefer_fast = prefer_fast;
    services::DynamicBinding binding{iface, registry, opts};
    for (int i = 0; i < 1000; ++i) (void)binding.call({});
    binding_table.row(
        {prefer_fast ? "QoS-aware (prefer fast)" : "registration order",
         binding.current()->id(),
         util::Table::num(binding.current()->observed_mean_latency(), 1) +
             " ms"});
  }
  binding_table.print(std::cout);
  std::cout << "Shape check: pinned-to-degrading violates the SLA for most\n"
               "of the run once latency crosses 50 ms (~1900 of 4000);\n"
               "the monitor rides the tuned implementation while it is fast\n"
               "and switches to the flat fallback when it degrades — few\n"
               "violations, one switch. QoS-aware binding picks the 15 ms\n"
               "provider where registration order would camp on 120 ms.\n";
  return 0;
}
