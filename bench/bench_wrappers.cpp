// B5 — microbenchmark: the preventive wrappers' interposition cost — what a
// heap write pays for the healer's bounds check, and what a component call
// pays for protector preconditions. Fetzer & Xiao argue healer overhead is
// negligible; this measures our equivalent.
#include <benchmark/benchmark.h>

#include "techniques/robust_data.hpp"
#include "techniques/wrappers.hpp"

using namespace redundancy;

namespace {

void BM_HeapWriteRaw(benchmark::State& state) {
  env::HeapModel heap{1 << 16};
  const auto id = heap.malloc(256).value();
  const std::vector<std::byte> data(128, std::byte{1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(heap.write_raw(id, 0, data));
  }
}
BENCHMARK(BM_HeapWriteRaw);

void BM_HeapWriteHealed(benchmark::State& state) {
  env::HeapModel heap{1 << 16};
  techniques::HeapHealer healer{heap};
  const auto id = healer.malloc(256).value();
  const std::vector<std::byte> data(128, std::byte{1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(healer.write(id, 0, data));
  }
}
BENCHMARK(BM_HeapWriteHealed);

void BM_ProtectorCall(benchmark::State& state) {
  techniques::ProtectorWrapper protector;
  protector.expose("op", [](const services::Message& m)
                             -> core::Result<services::Message> { return m; });
  protector.require("op", [](const services::Message& m) {
    return m.contains("n");
  });
  const services::Message request{{"n", std::int64_t{1}}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(protector.call("op", request));
  }
}
BENCHMARK(BM_ProtectorCall);

void BM_RobustListPushPop(benchmark::State& state) {
  techniques::RobustList list;
  for (auto _ : state) {
    list.push_back(1);
    benchmark::DoNotOptimize(list.pop_front());
  }
}
BENCHMARK(BM_RobustListPushPop);

void BM_RobustListAudit(benchmark::State& state) {
  techniques::RobustList list;
  for (int i = 0; i < state.range(0); ++i) list.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.audit());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RobustListAudit)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
