// E10 — Section 5.1: automatic workarounds (Carzaniga, Gorla, Pezzè). A
// stateful container API with intrinsic redundancy (bulk ops ≡ sequences of
// elementary ops and vice versa); Bohrbugs are seeded into individual
// operations; the engine rewrites failing sequences using the equivalence
// rules, trying candidates in likelihood order.
//
// Shape: healing rate is high when the faulty operation has equivalent
// compositions, the first workaround is found after few candidates (the
// ranking works), and faults in operations with no equivalent remain
// unhealed.
#include <iostream>

#include <set>

#include "techniques/workarounds.hpp"
#include "util/table.hpp"

using namespace redundancy;
using techniques::Action;
using techniques::RewriteRule;
using techniques::Sequence;

namespace {

// The component: an integer set with elementary and bulk operations. The
// `broken` set simulates seeded Bohrbugs: those operations always fail.
core::Status run_sequence(const Sequence& seq,
                          const std::set<std::string>& broken,
                          const std::multiset<int>& expected) {
  std::multiset<int> state;
  for (const Action& op : seq) {
    if (broken.contains(op)) {
      return core::failure(core::FailureKind::crash, op + " is broken",
                           core::FaultClass::bohrbug);
    }
    if (op == "add(1)") state.insert(1);
    else if (op == "add(2)") state.insert(2);
    else if (op == "add(3)") state.insert(3);
    else if (op == "addAll(1,2)") { state.insert(1); state.insert(2); }
    else if (op == "addAll(2,3)") { state.insert(2); state.insert(3); }
    else if (op == "addTwice(1)") { state.insert(1); state.insert(1); }
    else if (op == "clear") state.clear();
    else return core::failure(core::FailureKind::crash, "unknown op " + op);
  }
  if (state != expected) {
    return core::failure(core::FailureKind::acceptance_failed, "wrong state");
  }
  return core::ok_status();
}

std::vector<RewriteRule> rules() {
  return {
      {"bulk12->singles", {"addAll(1,2)"}, {"add(1)", "add(2)"}},
      {"singles->bulk12", {"add(1)", "add(2)"}, {"addAll(1,2)"}},
      {"bulk23->singles", {"addAll(2,3)"}, {"add(2)", "add(3)"}},
      {"singles->bulk23", {"add(2)", "add(3)"}, {"addAll(2,3)"}},
      {"twice->singles", {"addTwice(1)"}, {"add(1)", "add(1)"}},
      {"singles->twice", {"add(1)", "add(1)"}, {"addTwice(1)"}},
  };
}

struct Scenario {
  std::string name;
  Sequence failing;
  std::multiset<int> intended;
  std::set<std::string> broken;
};

}  // namespace

int main() {
  const std::vector<Scenario> scenarios{
      {"bulk insert broken", {"addAll(1,2)"}, {1, 2}, {"addAll(1,2)"}},
      {"elementary add broken", {"add(1)", "add(2)"}, {1, 2}, {"add(1)"}},
      {"nested bulk chain broken",
       {"addAll(1,2)", "add(3)"},
       {1, 2, 3},
       {"addAll(1,2)"}},
      {"duplicate insert broken",
       {"addTwice(1)"},
       {1, 1},
       {"addTwice(1)"}},
      {"both bulk ops broken (two rewrites needed)",
       {"addAll(1,2)", "addAll(2,3)"},
       {1, 2, 2, 3},
       {"addAll(1,2)", "addAll(2,3)"}},
      {"no equivalent exists", {"add(3)"}, {3}, {"add(3)"}},
  };

  util::Table table{
      "E10. Automatic workarounds over an intrinsically redundant container "
      "API (equivalence rules: bulk ops <-> elementary sequences)"};
  table.header({"scenario", "healed", "candidates tried", "workaround"});

  std::size_t healed_total = 0;
  for (const auto& scenario : scenarios) {
    auto executor = [&scenario](const Sequence& seq) {
      return run_sequence(seq, scenario.broken, scenario.intended);
    };
    // Sanity: the original sequence must actually fail.
    if (executor(scenario.failing).has_value()) {
      std::cerr << "scenario '" << scenario.name << "' does not fail\n";
      return 1;
    }
    techniques::AutomaticWorkarounds healer{rules(), executor,
                                            {.max_depth = 4,
                                             .max_candidates = 128}};
    auto out = healer.heal(scenario.failing);
    std::string workaround = "-";
    if (out.has_value()) {
      ++healed_total;
      workaround.clear();
      for (const auto& op : out.value()) {
        if (!workaround.empty()) workaround += "; ";
        workaround += op;
      }
    }
    table.row({scenario.name, out.has_value() ? "yes" : "NO",
               util::Table::count(healer.candidates_tried()), workaround});
  }
  table.print(std::cout);
  std::cout << "Healed " << healed_total << "/" << scenarios.size()
            << " scenarios.\n"
            << "Shape check: every fault with an equivalent composition is\n"
               "healed, usually with the very first ranked candidate; the\n"
               "deep scenario needs a multi-step rewrite (more candidates);\n"
               "the operation with no intrinsic redundancy stays unhealed —\n"
               "opportunistic redundancy only works where it latently exists.\n";
  return 0;
}
