// B4 — microbenchmark: VM interpreter throughput, and the runtime price of
// the two replica diversifications (tag checks, partition bounds checks) —
// Cox et al. report single-digit-percent overheads; the shape to match is
// "diversification is nearly free".
#include <benchmark/benchmark.h>

#include "vm/assembler.hpp"
#include "vm/attacks.hpp"
#include "vm/vm.hpp"

using namespace redundancy;

namespace {

vm::Program loop_program() {
  // Memory-resident countdown loop: ~6 instructions per iteration.
  return vm::assemble("loop", R"(
    arg 0
    store 200
  loop:
    load 200
    jz done
    load 200
    push 1
    sub
    store 200
    jmp loop
  done:
    load 200
    halt
  )")
      .take();
}

void run_loop(benchmark::State& state, vm::VmConfig cfg, std::size_t base) {
  vm::Vm machine{cfg};
  machine.load(loop_program(), base, cfg.expected_tag);
  const std::int64_t args[] = {1000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.run(base, args));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}

void BM_VmPlain(benchmark::State& state) {
  vm::VmConfig cfg;
  cfg.max_steps = 100'000;
  run_loop(state, cfg, 0);
}
BENCHMARK(BM_VmPlain);

void BM_VmTagged(benchmark::State& state) {
  vm::VmConfig cfg;
  cfg.max_steps = 100'000;
  cfg.enforce_tags = true;
  cfg.expected_tag = 3;
  run_loop(state, cfg, 0);
}
BENCHMARK(BM_VmTagged);

void BM_VmPartitioned(benchmark::State& state) {
  vm::VmConfig cfg;
  cfg.max_steps = 100'000;
  cfg.region_base = 2048;
  cfg.region_words = 2048;
  run_loop(state, cfg, 2048);
}
BENCHMARK(BM_VmPartitioned);

void BM_VmTaggedAndPartitioned(benchmark::State& state) {
  vm::VmConfig cfg;
  cfg.max_steps = 100'000;
  cfg.enforce_tags = true;
  cfg.expected_tag = 2;
  cfg.region_base = 2048;
  cfg.region_words = 2048;
  run_loop(state, cfg, 2048);
}
BENCHMARK(BM_VmTaggedAndPartitioned);

void BM_VulnerableServerRequest(benchmark::State& state) {
  vm::Vm machine{vm::VmConfig{.memory_words = 1024}};
  const auto server = vm::vulnerable_server();
  const auto request = vm::benign_request(7, 35);
  for (auto _ : state) {
    machine.reset();
    machine.load(server, 0, 0);
    benchmark::DoNotOptimize(machine.run(0, request));
  }
}
BENCHMARK(BM_VulnerableServerRequest);

void BM_Assembler(benchmark::State& state) {
  const std::string source = vm::format(loop_program());
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm::assemble("p", source));
  }
}
BENCHMARK(BM_Assembler);

}  // namespace
