// E1 — Section 4.1: "in order to tolerate k failures, a system must consist
// of 2k+1 versions", and the Brilliant–Knight–Leveson caveat that
// correlated faults erode the gain.
//
// Sweep: N in {1,3,5,7,9} x per-version fault probability p x correlation
// regime (independent failure regions vs a shared one). Reported: system
// reliability (correct answers / requests) and safety (no silent wrong
// answer). Shape to reproduce: reliability climbs steeply with N for
// independent faults and stays flat for fully correlated ones.
#include <iostream>
#include <memory>

#include "campaign_runner.hpp"
#include "core/live_telemetry.hpp"
#include "faults/campaign.hpp"
#include "faults/fault.hpp"
#include "techniques/nvp.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

int golden(const int& x) { return x * 13 - 5; }

std::vector<core::Variant<int, int>> versions(std::size_t n, double p,
                                              bool correlated) {
  std::vector<core::Variant<int, int>> out;
  for (std::size_t i = 0; i < n; ++i) {
    faults::FaultInjector<int, int> v{"v" + std::to_string(i), golden};
    const std::uint64_t salt = correlated ? 7777 : 4000 + i;
    v.add(faults::bohrbug<int, int>(
        "bug", p, salt, core::FailureKind::wrong_output,
        faults::skewed<int, int>(static_cast<int>(i) + 1)));
    out.push_back(v.as_variant());
  }
  return out;
}

}  // namespace

int main() {
  auto telemetry = core::start_live_telemetry_from_env();
  constexpr std::size_t kRequests = 30'000;
  util::Table table{
      "E1. N-version programming: reliability vs N, fault rate, and "
      "inter-version correlation (majority voting, 30k requests)"};
  table.header({"regime", "p/version", "N=1", "N=3", "N=5", "N=7", "N=9"});

  for (const bool correlated : {false, true}) {
    for (const double p : {0.02, 0.10, 0.30}) {
      std::vector<std::string> cells{
          correlated ? "correlated (shared region)" : "independent regions",
          util::Table::pct(p, 0)};
      for (const std::size_t n : {1u, 3u, 5u, 7u, 9u}) {
        using Nvp = techniques::NVersionProgramming<int, int>;
        auto cell = bench::run_sharded<int, int>(
            "nvp", kRequests,
            [](std::size_t i, util::Rng&) { return static_cast<int>(i); },
            [&] { return std::make_shared<Nvp>(versions(n, p, correlated)); },
            [](Nvp& nvp, const int& x) { return nvp.run(x); }, golden);
        cells.push_back(util::Table::pct(cell.report.reliability_value(), 2));
      }
      table.row(std::move(cells));
    }
    table.separator();
  }
  table.print(std::cout);

  // The 2k+1 bound, demonstrated exactly: force f simultaneous distinct
  // wrong answers against 2k+1 versions.
  util::Table bound{"E1b. The 2k+1 bound: f simultaneous faulty versions"};
  bound.header({"N=2k+1", "tolerates", "f=1", "f=2", "f=3", "f=4"});
  for (const std::size_t k : {1u, 2u, 3u}) {
    const std::size_t n = 2 * k + 1;
    std::vector<std::string> cells{util::Table::count(n),
                                   "k=" + std::to_string(k)};
    for (std::size_t f = 1; f <= 4; ++f) {
      std::vector<core::Variant<int, int>> vs;
      for (std::size_t i = 0; i < n; ++i) {
        const bool faulty = i < std::min(f, n);
        faults::FaultInjector<int, int> v{"v" + std::to_string(i), golden};
        if (faulty) {
          v.add(faults::bohrbug<int, int>(
              "always", 1.0, 1, core::FailureKind::wrong_output,
              faults::skewed<int, int>(static_cast<int>(i) + 1)));
        }
        vs.push_back(v.as_variant());
      }
      techniques::NVersionProgramming<int, int> nvp{std::move(vs)};
      auto out = nvp.run(42);
      const bool masked = out.has_value() && out.value() == golden(42);
      cells.push_back(masked ? "masked" : "fails");
    }
    bound.row(std::move(cells));
  }
  bound.print(std::cout);
  std::cout << "Shape check: independent regions -> reliability rises with N\n"
               "(approx. P[>=majority correct]); shared region -> flat at\n"
               "~(1-p): voting cannot help when versions fail together. The\n"
               "2k+1 table masks exactly f<=k.\n";
  if (telemetry) core::linger_from_env();
  return 0;
}
