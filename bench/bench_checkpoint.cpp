// B3 — microbenchmark: checkpoint capture and restore cost vs state size —
// the overhead side of the checkpoint-interval trade-off in E11b.
#include <benchmark/benchmark.h>

#include "env/checkpoint.hpp"

using namespace redundancy;

namespace {

/// Subject whose serialized state is `size` bytes.
class Blob final : public env::Checkpointable {
 public:
  explicit Blob(std::size_t size) : data_(size, std::byte{0x5a}) {}
  [[nodiscard]] util::ByteBuffer snapshot() const override {
    util::ByteBuffer buf;
    buf.put(static_cast<std::uint32_t>(data_.size()));
    auto bytes = buf.bytes();
    bytes.insert(bytes.end(), data_.begin(), data_.end());
    return util::ByteBuffer{std::move(bytes)};
  }
  void restore(const util::ByteBuffer& state) override {
    auto r = state.reader();
    data_.assign(r.get<std::uint32_t>(), std::byte{0});
  }

 private:
  std::vector<std::byte> data_;
};

void BM_CheckpointCapture(benchmark::State& state) {
  Blob blob{static_cast<std::size_t>(state.range(0))};
  env::CheckpointStore store{2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.capture(blob));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CheckpointCapture)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_CheckpointRestore(benchmark::State& state) {
  Blob blob{static_cast<std::size_t>(state.range(0))};
  env::CheckpointStore store{2};
  store.capture(blob);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.restore_latest(blob));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CheckpointRestore)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_CheckpointRingTurnover(benchmark::State& state) {
  Blob blob{4096};
  env::CheckpointStore store{4};
  for (auto _ : state) {
    // Steady-state: every capture evicts the oldest of 4 retained.
    benchmark::DoNotOptimize(store.capture(blob));
  }
}
BENCHMARK(BM_CheckpointRingTurnover);

}  // namespace
