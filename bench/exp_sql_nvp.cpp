// E15 — §4.1's service-level NVP case study (Gashi et al.): N-version
// programming over diverse SQL engines. A seeded OLTP-ish workload runs
// against (a) each single engine with injected faults, and (b) the
// replicated deployment voting over 3 diverse engines, one of them faulty.
//
// Shape: the vote masks the faulty engine's wrong reads per-statement; the
// state-digest reconciliation catches its silently lost updates (which the
// per-statement vote *cannot* see); the replicated deployment's observed
// behaviour matches a fault-free reference throughout.
#include <iostream>

#include "sql/chaos.hpp"
#include "techniques/sql_nvp.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace redundancy;
using sql::Condition;
using sql::Row;

namespace {

struct WorkloadResult {
  std::size_t statements = 0;
  std::size_t wrong = 0;       ///< outputs differing from the reference
  std::size_t failed = 0;      ///< statements the system refused
  std::uint64_t final_digest = 0;
};

/// Replay the same seeded workload against `subject` and a fault-free
/// reference engine, comparing every output.
WorkloadResult drive(sql::SqlStore& subject, std::uint64_t seed,
                     std::size_t statements) {
  auto reference = sql::make_btree_store();
  (void)reference->create_table("acct", {"id", "balance"});
  (void)subject.create_table("acct", {"id", "balance"});
  util::Rng rng{seed};
  WorkloadResult result;
  for (std::size_t s = 0; s < statements; ++s) {
    ++result.statements;
    const auto roll = rng.below(10);
    if (roll < 3) {
      Row row{rng.between(0, 200), rng.between(0, 1000)};
      auto expect = reference->insert("acct", row);
      auto got = subject.insert("acct", row);
      if (expect.has_value() != got.has_value()) ++result.wrong;
    } else if (roll < 6) {
      Condition cond{"id", Condition::Op::eq, rng.between(0, 200)};
      const auto delta = rng.between(0, 1000);
      auto expect = reference->update("acct", cond, "balance", delta);
      auto got = subject.update("acct", cond, "balance", delta);
      if (!got.has_value()) {
        ++result.failed;
      } else if (!expect.has_value() || expect.value() != got.value()) {
        ++result.wrong;
      }
    } else {
      Condition cond{"balance", Condition::Op::gt, rng.between(0, 900)};
      auto expect = reference->select("acct", cond);
      auto got = subject.select("acct", cond);
      if (!got.has_value()) {
        ++result.failed;
      } else if (!(expect.value() == got.value())) {
        ++result.wrong;
      }
    }
  }
  // Final state fidelity: does the subject hold the reference's state?
  result.final_digest = subject.state_digest().value_or(0) ^
                        reference->state_digest().value_or(1);
  return result;
}

sql::StorePtr faulty_engine(std::uint64_t seed) {
  return sql::make_chaotic_store(
      sql::make_log_store(),
      {.lose_mutation_probability = 0.05, .corrupt_read_probability = 0.05,
       .seed = seed});
}

}  // namespace

int main() {
  constexpr std::size_t kStatements = 4000;
  util::Table table{
      "E15. NVP over diverse SQL engines (Gashi): 4000-statement seeded "
      "workload; faulty engine: 5% lost updates + 5% corrupted reads"};
  table.header({"deployment", "wrong outputs", "refused", "state == reference",
                "divergences masked", "replicas left"});

  {  // Single healthy engine (sanity reference).
    auto healthy = sql::make_vector_store();
    auto r = drive(*healthy, 42, kStatements);
    table.row({"single engine (healthy)", util::Table::count(r.wrong),
               util::Table::count(r.failed),
               r.final_digest == 0 ? "yes" : "NO", "-", "-"});
  }
  {  // Single faulty engine: the unprotected baseline.
    auto chaotic = faulty_engine(7);
    auto r = drive(*chaotic, 42, kStatements);
    table.row({"single engine (faulty)", util::Table::count(r.wrong),
               util::Table::count(r.failed),
               r.final_digest == 0 ? "yes" : "NO", "-", "-"});
  }
  {  // The replicated deployment: 3 diverse engines, one faulty.
    std::vector<sql::StorePtr> replicas;
    replicas.push_back(sql::make_vector_store());
    replicas.push_back(sql::make_btree_store());
    replicas.push_back(faulty_engine(7));
    techniques::ReplicatedSqlServer server{std::move(replicas),
                                           {.reconcile_every = 16}};
    auto r = drive(server, 42, kStatements);
    table.row({"NVP over 3 diverse engines", util::Table::count(r.wrong),
               util::Table::count(r.failed),
               r.final_digest == 0 ? "yes" : "NO",
               util::Table::count(server.divergences_masked()),
               util::Table::count(server.replicas_in_service())});
  }
  table.print(std::cout);
  std::cout << "Shape check: the faulty engine alone emits hundreds of wrong\n"
               "outputs and ends in a diverged state; behind the 3-way vote\n"
               "with periodic state reconciliation the same engine is caught\n"
               "(wrong reads outvoted per statement, lost updates exposed by\n"
               "digest comparison and evicted) and the deployment's outputs\n"
               "and final state match the fault-free reference exactly —\n"
               "Gashi's case for SQL-level design diversity.\n";
  return 0;
}
