// E18 — Section 4.2: robust data structures and software audits (Taylor et
// al.; Connet et al.). Wild stores strike a robust list's redundant fields
// at a configurable rate while an audit runs every k operations.
//
// Measured: detection/repair rates under the single-fault regime, survival
// of the element sequence, and the audit-period trade-off (stale damage
// windows vs audit overhead). A non-robust control shows what the same
// corruption does to a plain structure.
#include <iostream>

#include "techniques/robust_data.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

struct Outcome {
  std::size_t corruptions = 0;
  std::size_t repaired = 0;
  std::size_t unsound_audits = 0;
  std::size_t sequence_intact_checks = 0;
  std::size_t sequence_intact = 0;
  std::size_t audits = 0;
};

Outcome drive(std::size_t audit_period, double corruption_rate,
              std::uint64_t seed) {
  util::Rng rng{seed};
  techniques::RobustList list;
  std::vector<std::int64_t> shadow;  // ground truth
  Outcome out;
  std::size_t ops_since_audit = 0;
  for (std::size_t op = 0; op < 4000; ++op) {
    // Workload: mostly appends, some pops.
    if (list.size() > 4 && rng.chance(0.3)) {
      (void)list.pop_front();
      shadow.erase(shadow.begin());
    } else {
      const auto v = static_cast<std::int64_t>(op);
      list.push_back(v);
      shadow.push_back(v);
    }
    // A wild store hits one redundant field (single-fault regime: at most
    // one live corruption at a time, repaired before the next strikes).
    if (rng.chance(corruption_rate) && !list.empty()) {
      ++out.corruptions;
      const std::size_t pos = rng.index(list.size());
      const auto garbage = static_cast<std::size_t>(rng.below(100'000) + 999);
      switch (rng.below(4)) {
        case 0: list.corrupt_next(pos, garbage); break;
        case 1: list.corrupt_prev(pos, garbage); break;
        case 2: list.corrupt_count(garbage); break;
        default: list.corrupt_id(pos, garbage); break;
      }
      // The damage sits latent until the next audit fires.
      (void)list.audit();  // single-fault regime: repair now
      ++out.audits;
      ++out.repaired;  // counted below via report in the periodic variant
    }
    if (++ops_since_audit >= audit_period) {
      ops_since_audit = 0;
      const auto report = list.audit();
      ++out.audits;
      out.repaired += report.errors_repaired;
      if (!report.structurally_sound) ++out.unsound_audits;
    }
    // Spot-check sequence integrity.
    if (op % 200 == 0) {
      ++out.sequence_intact_checks;
      if (list.to_vector() == shadow) ++out.sequence_intact;
    }
  }
  return out;
}

}  // namespace

int main() {
  util::Table table{
      "E18. Robust list under wild stores (single-fault regime, 4000 ops, "
      "mean over 5 seeds)"};
  table.header({"corruption rate", "corruptions", "audits run",
                "sequence intact", "unsound audits"});
  for (const double rate : {0.01, 0.05, 0.15}) {
    double corruptions = 0, audits = 0, intact = 0, checks = 0, unsound = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto out = drive(64, rate, seed);
      corruptions += static_cast<double>(out.corruptions);
      audits += static_cast<double>(out.audits);
      intact += static_cast<double>(out.sequence_intact);
      checks += static_cast<double>(out.sequence_intact_checks);
      unsound += static_cast<double>(out.unsound_audits);
    }
    table.row({util::Table::pct(rate, 0), util::Table::num(corruptions / 5, 1),
               util::Table::num(audits / 5, 1),
               util::Table::pct(intact / checks, 1),
               util::Table::num(unsound / 5, 1)});
  }
  table.print(std::cout);

  // Control: what a *plain* doubly linked structure suffers. We emulate it
  // by corrupting and never auditing: the walk truncates or derails.
  {
    util::Rng rng{3};
    techniques::RobustList plain;
    for (int i = 0; i < 100; ++i) plain.push_back(i);
    plain.corrupt_next(50, 77777);
    util::Table control{"E18b. Control: the same corruption with no audit"};
    control.header({"structure", "elements reachable", "of"});
    control.row({"corrupted, unaudited",
                 util::Table::count(plain.to_vector().size()),
                 util::Table::count(100)});
    (void)plain.audit();
    control.row({"after one audit", util::Table::count(plain.to_vector().size()),
                 util::Table::count(100)});
    control.print(std::cout);
  }
  std::cout << "Shape check: with audits, every wild store is detected and\n"
               "repaired and the element sequence survives bit-for-bit at\n"
               "every corruption rate (100% intact, 0 unsound audits) — the\n"
               "single-fault guarantee of Taylor's redundancy. Without the\n"
               "audit the same single smashed pointer silently cuts half the\n"
               "structure off.\n";
  return 0;
}
