// E8 — Section 5.1: dynamic service substitution. A pool of independently
// operated providers implements the same logical service (some behind
// merely similar interfaces). Providers degrade and die over time; we
// compare a statically bound client against the self-healing binding, at
// growing substitute-pool sizes.
//
// Shape: static binding availability collapses with its provider; the
// dynamic binding's availability grows with the size of the redundant pool
// and survives on similar-interface providers through converters.
#include <iostream>

#include "services/binding.hpp"
#include "services/registry.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace redundancy;
using services::Endpoint;
using services::Interface;
using services::Message;

namespace {

Interface canonical() {
  return Interface{"geocode", {"address"}, {"lat", "lon"}};
}

services::EndpointPtr provider(std::string id, bool similar_interface,
                               std::uint64_t seed) {
  const Interface iface =
      similar_interface
          ? Interface{"geocode", {"addr"}, {"latitude", "longitude"}}
          : canonical();
  return std::make_shared<Endpoint>(
      std::move(id), iface,
      [](const Message&) -> core::Result<Message> {
        return Message{{"lat", std::int64_t{46}}, {"lon", std::int64_t{9}},
                       {"latitude", std::int64_t{46}},
                       {"longitude", std::int64_t{9}}};
      },
      services::Qos{}, seed);
}

}  // namespace

int main() {
  constexpr std::size_t kRequests = 4000;

  util::Table table{
      "E8. Dynamic service substitution: provider pool with failures every "
      "500 requests (provider k dies at t=500(k+1)); 4000 requests"};
  table.header({"client", "pool", "served", "availability", "rebinds",
                "via converter"});

  for (const std::size_t pool_size : {1u, 2u, 4u, 8u}) {
    // Build a fresh pool: even-indexed providers expose the canonical
    // interface, odd-indexed only a similar one (converter required).
    services::Registry registry;
    std::vector<services::EndpointPtr> pool;
    for (std::size_t k = 0; k < pool_size; ++k) {
      pool.push_back(provider("geo-" + std::to_string(k), k % 2 == 1, 10 + k));
      registry.add(pool.back());
    }

    services::DynamicBinding binding{canonical(), registry};
    std::size_t dynamic_served = 0;
    std::size_t static_served = 0;
    for (std::size_t t = 0; t < kRequests; ++t) {
      // Degradation schedule: provider k dies at t = 500*(k+1).
      for (std::size_t k = 0; k < pool.size(); ++k) {
        if (t == 500 * (k + 1)) pool[k]->kill();
      }
      const Message request{{"address", std::string{"via Buffi 13"}}};
      if (binding.call(request).has_value()) ++dynamic_served;
      // The static client is pinned to provider 0 forever.
      if (pool[0]->call(request).has_value()) ++static_served;
    }
    table.row({"static (pinned)", util::Table::count(pool_size),
               util::Table::count(static_served),
               util::Table::pct(static_served / double(kRequests), 1), "-",
               "-"});
    table.row({"dynamic binding", util::Table::count(pool_size),
               util::Table::count(dynamic_served),
               util::Table::pct(dynamic_served / double(kRequests), 1),
               util::Table::count(binding.rebinds()),
               util::Table::count(binding.converted_rebinds())});
    table.separator();
  }
  table.print(std::cout);
  std::cout << "Shape check: the static client dies with its provider at\n"
               "t=500 (~12.5% availability) regardless of pool size; the\n"
               "dynamic binding rides the pool, availability growing with\n"
               "pool size (500(k+1) deaths -> pool of 8 serves until 4000),\n"
               "with roughly half the rebinds crossing a converter.\n";
  return 0;
}
