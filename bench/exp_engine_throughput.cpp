// E20. Acceptance experiment for the lock-free execution engine: the
// Chase–Lev pool + batched submission must beat the PR-4 mutex engine by
// >= 2x on an overhead-bound campaign workload. The baseline engine is a
// self-contained copy of the PR-4 pool (mutex+deque per worker,
// round-robin external post, global broadcast sleep_cv, one lock + one
// notify per task); the candidate is util::ThreadPool (lock-free
// Chase–Lev deques, injector, per-worker parking, batched submission).
//
// Part A (the gate) — fine-grained campaign throughput. A campaign
// driver, external to both pools, pushes short tasks (~10 ns of mixing —
// far under the 1 us bound, so engine bookkeeping dominates) in waves,
// waiting for pool quiescence between waves. The PR-4 engine submits the
// way PR-4 could: one post — queue lock, counter, notify — per task. The
// new engine submits the whole wave through submit_batch: one injector
// splice, one pending epoch, one wake-up. Every slot is checked after
// the run, so a dropped task or lost wake-up fails loudly. Gate:
// new/old throughput >= 2x.
//
// Part B (reported) — pattern fan-out latency. The Fig-1 serving shape:
// one shard per worker, each request fanning out 3 variants through
// run_all/BatchRunner and majority-voting the outputs through the
// word-wise voter. Shows the per-request barrier cost trajectory; no
// gate (the fan-out is barrier-bound, not submission-bound).
//
// Part C (reported) — steal latency. One owner thread feeds a
// ChaseLevDeque while three thieves spin stealing; each successful steal
// is timed around the steal() call itself. Reported as p50/p95/p99.
//
// Part D (the PR-6 gate) — contended external submission. Eight submitter
// threads hammer post() concurrently; the single-lane shape (injector_lanes
// = 1, the PR-5 centralized injector) is measured against the sharded
// default. Per-post latency is sampled inside the submitters, throughput
// from the wall clock. Gate: sharded/single >= 1.3x — enforced only when
// hardware_concurrency >= 4 (on fewer cores the submitters are serialized
// by the scheduler and the lock is not the bottleneck; reported otherwise).
//
// Part E (reported) — steal distribution. One external submitter feeds its
// single home lane in batches while every worker must pull the backlog out
// through lane drains + topology-ordered steal sweeps; reported as task/s.
//
// Part F (reported) — metric shard throughput. All threads hammer one
// obs::Counter and one obs::Histogram; totals are checked exactly (the
// sharding must never lose an increment).
//
// Emits BENCH_exp_engine_throughput.json in the bench_json_main schema
// (percentiles are exact order statistics over the recorded samples).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <optional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/variant.hpp"
#include "core/voters.hpp"
#include "obs/obs.hpp"
#include "util/chase_lev_deque.hpp"
#include "util/thread_pool.hpp"
#include "util/unique_function.hpp"

using namespace redundancy;

namespace {

constexpr std::size_t kCampaignTasks = 200'000;  // Part A, per engine/round
constexpr std::size_t kWave = 2048;              // bounded backlog per wave
constexpr std::size_t kRequests = 200'000;       // Part B, per engine/round
constexpr int kRounds = 3;                  // best-of, sheds scheduler noise
constexpr std::size_t kVariants = 3;
constexpr double kSpeedupGate = 2.0;

constexpr std::size_t kStealItems = 400'000;
constexpr std::size_t kThieves = 3;

constexpr std::size_t kSubmitters = 8;       // Part D contended submitters
constexpr std::size_t kSubmitTasks = 8'000;  // per submitter per round
constexpr double kShardGate = 1.3;           // Part D gate (>= 4 cores only)

constexpr std::size_t kFanoutTasks = 100'000;  // Part E, per round
constexpr std::size_t kMetricOps = 200'000;    // Part F, per thread per round

std::uint64_t splitmix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// A fine-grained campaign task: ~10 ns of integer mixing. Short enough
/// that the engine's submit/claim bookkeeping dominates the measurement.
int campaign_body(int request) {
  std::uint64_t s = static_cast<std::uint64_t>(request) * 0x9E3779B97F4A7C15ull;
  return request ^ static_cast<int>(splitmix(s) & 0xFF);
}

/// A short variant body: a few dozen ns of integer mixing. Short enough
/// that scheduling cost dominates, long enough not to be folded away.
int variant_body(int request, int salt) {
  std::uint64_t s = static_cast<std::uint64_t>(request) * 0x9E3779B97F4A7C15ull;
  std::uint64_t acc = 0;
  for (int i = 0; i < 8; ++i) acc ^= splitmix(s);
  // Same output for every salt: the 3 ballots agree and the vote succeeds.
  (void)salt;
  return request ^ static_cast<int>(acc & 0x7);
}

// ---------------------------------------------------------------------------
// The PR-4 engine, embedded verbatim in miniature: per-worker mutex+deque,
// round-robin external post, one global broadcast condvar, one post (lock +
// counter + notify) per task. Kept here so the gate always measures against
// the real predecessor regardless of what util::ThreadPool becomes.
// ---------------------------------------------------------------------------
class MutexPool {
 public:
  using Task = util::UniqueFunction<void()>;

  explicit MutexPool(std::size_t threads) {
    queues_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      queues_.push_back(std::make_unique<WorkerQueue>());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~MutexPool() {
    {
      std::lock_guard lock(sleep_mutex_);
      stopping_.store(true, std::memory_order_release);
    }
    sleep_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void post(Task task) {
    std::size_t qi;
    if (tls_pool == this) {
      qi = tls_index;
    } else {
      qi = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    }
    {
      std::lock_guard lock(queues_[qi]->m);
      queues_[qi]->q.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_release);
    sleep_cv_.notify_one();
  }

  bool try_run_one() {
    Task task;
    const std::size_t start = tls_pool == this ? tls_index : 0;
    const std::size_t n = queues_.size();
    bool got = false;
    for (std::size_t offset = 0; offset < n && !got; ++offset) {
      WorkerQueue& victim = *queues_[(start + offset) % n];
      std::lock_guard lock(victim.m);
      if (!victim.q.empty()) {
        task = std::move(victim.q.front());
        victim.q.pop_front();
        active_.fetch_add(1, std::memory_order_release);
        pending_.fetch_sub(1, std::memory_order_release);
        got = true;
      }
    }
    if (!got) return false;
    task();
    active_.fetch_sub(1, std::memory_order_release);
    return true;
  }

  void run_all(std::vector<Task> tasks) {
    if (tasks.empty()) return;
    struct State {
      std::mutex m;
      std::condition_variable cv;
      std::size_t remaining;
    };
    State st;
    st.remaining = tasks.size();
    for (auto& t : tasks) {
      post(Task{[st_ptr = &st, task = &t] {
        (*task)();
        std::lock_guard lock(st_ptr->m);
        --st_ptr->remaining;
        st_ptr->cv.notify_all();
      }});
    }
    const bool helper = tls_pool == this;
    std::unique_lock lock(st.m);
    while (st.remaining != 0) {
      if (helper) {
        lock.unlock();
        const bool ran = try_run_one();
        lock.lock();
        if (st.remaining == 0) break;
        if (ran) continue;
      }
      st.cv.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Quiescence probe, mirroring util::ThreadPool::idle(): claims raise
  /// active_ before dropping pending_, so this never reads true while a
  /// task is queued or running.
  [[nodiscard]] bool idle() const noexcept {
    return pending_.load(std::memory_order_acquire) == 0 &&
           active_.load(std::memory_order_acquire) == 0;
  }

 private:
  struct WorkerQueue {
    std::mutex m;
    std::deque<Task> q;
  };

  void worker_loop(std::size_t self) {
    tls_pool = this;
    tls_index = self;
    for (;;) {
      Task task;
      if (try_pop(self, task)) {
        task();
        active_.fetch_sub(1, std::memory_order_release);
        continue;
      }
      if (stopping_.load(std::memory_order_acquire) &&
          pending_.load(std::memory_order_acquire) == 0) {
        return;
      }
      std::unique_lock lock(sleep_mutex_);
      sleep_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
        return stopping_.load(std::memory_order_acquire) ||
               pending_.load(std::memory_order_acquire) > 0;
      });
    }
  }

  bool try_pop(std::size_t self, Task& out) {
    {
      WorkerQueue& mine = *queues_[self];
      std::lock_guard lock(mine.m);
      if (!mine.q.empty()) {
        out = std::move(mine.q.back());
        mine.q.pop_back();
        active_.fetch_add(1, std::memory_order_release);
        pending_.fetch_sub(1, std::memory_order_release);
        return true;
      }
    }
    const std::size_t n = queues_.size();
    for (std::size_t offset = 1; offset < n; ++offset) {
      WorkerQueue& victim = *queues_[(self + offset) % n];
      std::lock_guard lock(victim.m);
      if (!victim.q.empty()) {
        out = std::move(victim.q.front());
        victim.q.pop_front();
        active_.fetch_add(1, std::memory_order_release);
        pending_.fetch_sub(1, std::memory_order_release);
        return true;
      }
    }
    return false;
  }

  static thread_local MutexPool* tls_pool;
  static thread_local std::size_t tls_index;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> active_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stopping_{false};
};

thread_local MutexPool* MutexPool::tls_pool = nullptr;
thread_local std::size_t MutexPool::tls_index = 0;

// ---------------------------------------------------------------------------

struct Series {
  std::vector<double> latency_ns;
  double mean_ns = 0.0;
  [[nodiscard]] double ops_per_sec() const {
    return mean_ns > 0.0 ? 1e9 / mean_ns : 0.0;
  }
  [[nodiscard]] double percentile(double q) const {
    if (latency_ns.empty()) return 0.0;
    std::vector<double> sorted = latency_ns;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = std::min(
        sorted.size() - 1, std::size_t(q / 100.0 * double(sorted.size())));
    return sorted[idx];
  }
};

// --------------------------------------------------------------------------
// Part A: fine-grained campaign (the gate)
// --------------------------------------------------------------------------

/// Drives kCampaignTasks short tasks through an engine in waves of kWave,
/// waiting for quiescence between waves (bounded backlog; every wave also
/// exercises the full sleep/wake cycle). `submit_wave(base, end)` is the
/// engine-specific submission hook. Mean ns/task comes from the wall
/// clock over all waves; the percentile spread from per-wave means.
template <typename SubmitWave, typename Idle>
Series run_fine_campaign(SubmitWave submit_wave, Idle idle) {
  Series s;
  s.latency_ns.reserve(kCampaignTasks / kWave + 1);
  const std::uint64_t t0 = obs::now_ns();
  for (std::size_t base = 0; base < kCampaignTasks; base += kWave) {
    const std::size_t end = std::min(base + kWave, kCampaignTasks);
    const std::uint64_t w0 = obs::now_ns();
    submit_wave(base, end);
    while (!idle()) std::this_thread::yield();
    s.latency_ns.push_back(double(obs::now_ns() - w0) / double(end - base));
  }
  s.mean_ns = double(obs::now_ns() - t0) / double(kCampaignTasks);
  return s;
}

/// Every slot must hold its task's output — a dropped task or lost
/// wake-up fails the experiment, it does not just skew it.
void check_campaign(const std::vector<int>& out, const char* engine) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] != campaign_body(int(i))) {
      std::fprintf(stderr, "exp_engine_throughput: %s dropped task %zu\n",
                   engine, i);
      std::exit(2);
    }
  }
}

Series bench_mutex_campaign(std::size_t threads) {
  Series best;
  for (int r = 0; r < kRounds; ++r) {
    MutexPool pool{threads};
    std::vector<int> out(kCampaignTasks, -1);
    Series s = run_fine_campaign(
        [&pool, &out](std::size_t base, std::size_t end) {
          // The PR-4 submission interface: one post — one queue lock, one
          // counter bump, one notify — per task.
          for (std::size_t i = base; i < end; ++i) {
            pool.post(MutexPool::Task{
                [&out, i] { out[i] = campaign_body(int(i)); }});
          }
        },
        [&pool] { return pool.idle(); });
    check_campaign(out, "mutex engine");
    if (r == 0 || s.mean_ns < best.mean_ns) best = std::move(s);
  }
  return best;
}

Series bench_lockfree_campaign(std::size_t threads) {
  Series best;
  for (int r = 0; r < kRounds; ++r) {
    util::ThreadPool pool{threads};
    std::vector<int> out(kCampaignTasks, -1);
    std::vector<util::ThreadPool::Task> wave;
    wave.reserve(kWave);
    Series s = run_fine_campaign(
        [&pool, &out, &wave](std::size_t base, std::size_t end) {
          // The PR-5 interface: the whole wave in one submit_batch — one
          // injector splice, one pending epoch, one wake-up.
          wave.clear();
          for (std::size_t i = base; i < end; ++i) {
            wave.emplace_back([&out, i] { out[i] = campaign_body(int(i)); });
          }
          pool.submit_batch(wave);
        },
        [&pool] { return pool.idle(); });
    check_campaign(out, "lock-free engine");
    if (r == 0 || s.mean_ns < best.mean_ns) best = std::move(s);
  }
  return best;
}

// --------------------------------------------------------------------------
// Part B: pattern fan-out latency (reported)
// --------------------------------------------------------------------------

/// Reusable per-shard ballot set: names and indices are fixed, only the
/// Result payload is rewritten per request. Keeps the common (non-engine)
/// cost of a request low so the engines' bookkeeping difference is what
/// the gate actually measures. Identical for both engines.
struct RequestScratch {
  std::vector<core::Ballot<int>> ballots;
  RequestScratch() {
    ballots.reserve(kVariants);
    for (std::size_t v = 0; v < kVariants; ++v) {
      ballots.push_back(core::Ballot<int>{v, "v", 0});
    }
  }
};

/// One request on the PR-4 engine: per-task post of the fan-out, barrier,
/// word-wise majority vote — the PR-4 ParallelEvaluation shape.
int serve_request_mutex(MutexPool& pool, int request,
                        const core::Voter<int>& voter, RequestScratch& rs) {
  std::vector<MutexPool::Task> tasks;
  tasks.reserve(kVariants);
  for (std::size_t v = 0; v < kVariants; ++v) {
    tasks.emplace_back([&rs, v, request] {
      rs.ballots[v].result = variant_body(request, int(v));
    });
  }
  pool.run_all(std::move(tasks));
  auto verdict = voter(rs.ballots);
  return verdict.has_value() ? verdict.value() : -1;
}

/// One request on the lock-free engine: the same fan-out through the
/// reusable BatchRunner (one submission epoch), same barrier, same voter.
int serve_request_lockfree(util::BatchRunner& batch, int request,
                           const core::Voter<int>& voter, RequestScratch& rs) {
  for (std::size_t v = 0; v < kVariants; ++v) {
    batch.add([&rs, v, request] {
      rs.ballots[v].result = variant_body(request, int(v));
    });
  }
  batch.run_and_wait();
  auto verdict = voter(rs.ballots);
  return verdict.has_value() ? verdict.value() : -1;
}

/// Sharded serving loop: one shard per worker, requests split evenly,
/// each shard timing its own requests. `serve` is the per-request hook.
template <typename SubmitShards, typename Serve>
Series run_pattern_shards(std::size_t shards, SubmitShards submit_shards,
                    Serve serve) {
  std::vector<std::vector<double>> lat(shards);
  std::vector<util::UniqueFunction<void()>> shard_tasks;
  shard_tasks.reserve(shards);
  const std::size_t chunk = kRequests / shards;
  const std::size_t extra = kRequests % shards;
  std::size_t begin = 0;
  std::int64_t checksum = 0;
  std::mutex checksum_m;
  for (std::size_t w = 0; w < shards; ++w) {
    const std::size_t end = begin + chunk + (w < extra ? 1 : 0);
    lat[w].reserve((end - begin) / 16 + 1);
    shard_tasks.emplace_back([w, begin, end, &lat, &serve, &checksum,
                              &checksum_m] {
      std::int64_t local = 0;
      for (std::size_t i = begin; i < end; ++i) {
        // Time every 16th request: percentiles stay exact over the sampled
        // set while the clock calls stop inflating the common path (the
        // mean comes from the wall clock, not these samples).
        const bool timed = (i & 0xF) == 0;
        const std::uint64_t t0 = timed ? obs::now_ns() : 0;
        local += serve(w, int(i));
        if (timed) lat[w].push_back(double(obs::now_ns() - t0));
      }
      std::lock_guard lock(checksum_m);
      checksum += local;
    });
    begin = end;
  }
  const std::uint64_t t0 = obs::now_ns();
  submit_shards(std::move(shard_tasks));
  const std::uint64_t wall = obs::now_ns() - t0;
  if (checksum == 0x7FFFFFFF) std::printf(" ");  // keep the work observable
  Series s;
  for (auto& v : lat) {
    s.latency_ns.insert(s.latency_ns.end(), v.begin(), v.end());
  }
  s.mean_ns = double(wall) / double(kRequests);
  return s;
}

Series bench_mutex_patterns(std::size_t threads) {
  Series best;
  for (int r = 0; r < kRounds; ++r) {
    MutexPool pool{threads};
    const auto voter = core::majority_voter<int>();
    Series s = run_pattern_shards(
        threads,
        [&pool](std::vector<util::UniqueFunction<void()>> shard_tasks) {
          std::vector<MutexPool::Task> tasks;
          for (auto& t : shard_tasks) tasks.emplace_back(std::move(t));
          pool.run_all(std::move(tasks));
        },
        [&pool, &voter](std::size_t, int request) {
          thread_local RequestScratch rs;
          return serve_request_mutex(pool, request, voter, rs);
        });
    if (r == 0 || s.mean_ns < best.mean_ns) best = std::move(s);
  }
  return best;
}

Series bench_lockfree_patterns(std::size_t threads) {
  Series best;
  for (int r = 0; r < kRounds; ++r) {
    util::ThreadPool pool{threads};
    const auto voter = core::majority_voter<int>();
    Series s = run_pattern_shards(
        threads,
        [&pool](std::vector<util::UniqueFunction<void()>> shard_tasks) {
          pool.run_all(std::move(shard_tasks),
                       util::ThreadPool::ExceptionPolicy::forward);
        },
        [&pool, &voter](std::size_t, int request) {
          // One BatchRunner per shard thread, bound to the bench pool:
          // steady-state fan-out reuses its buffer, like the patterns do.
          thread_local util::BatchRunner batch{&pool};
          thread_local RequestScratch rs;
          return serve_request_lockfree(batch, request, voter, rs);
        });
    if (r == 0 || s.mean_ns < best.mean_ns) best = std::move(s);
  }
  return best;
}

/// Raw steal latency under contention: an owner feeding its deque, three
/// thieves timing each successful steal() end to end.
Series bench_steal_latency() {
  util::ChaseLevDeque<std::uintptr_t> deque;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::vector<double>> samples(kThieves);
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      auto& mine = samples[t];
      mine.reserve(kStealItems / kThieves);
      while (!done.load(std::memory_order_acquire)) {
        std::uintptr_t item = 0;
        const std::uint64_t t0 = obs::now_ns();
        if (deque.steal(item)) {
          mine.push_back(double(obs::now_ns() - t0));
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Owner: feed in bursts, popping a share itself like a real worker.
  std::size_t produced = 0;
  std::uint64_t popped = 0;
  while (produced < kStealItems) {
    for (int i = 0; i < 64 && produced < kStealItems; ++i) {
      deque.push(static_cast<std::uintptr_t>(++produced));
    }
    std::uintptr_t item = 0;
    for (int i = 0; i < 16; ++i) {
      if (deque.pop(item)) ++popped;
    }
  }
  while (consumed.load(std::memory_order_acquire) + popped < kStealItems) {
    std::uintptr_t item = 0;
    if (deque.pop(item)) ++popped;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  Series s;
  double total = 0.0;
  for (auto& v : samples) {
    for (double d : v) total += d;
    s.latency_ns.insert(s.latency_ns.end(), v.begin(), v.end());
  }
  s.mean_ns = s.latency_ns.empty() ? 0.0 : total / double(s.latency_ns.size());
  return s;
}

// --------------------------------------------------------------------------
// Part D: contended external submission (the PR-6 gate)
// --------------------------------------------------------------------------

/// kSubmitters external threads hammer post() concurrently into a pool
/// built with `lanes` injector lanes (1 = the PR-5 centralized injector,
/// 0 = the sharded default). Throughput comes from the wall clock over
/// submit+drain; the latency distribution from sampling every 32nd post()
/// call inside the submitters — that is the operation the lane sharding
/// exists to de-serialize.
Series bench_contended_submission(std::size_t threads, std::size_t lanes) {
  Series best;
  for (int r = 0; r < kRounds; ++r) {
    util::ThreadPool pool{threads, lanes};
    std::atomic<std::size_t> executed{0};
    std::atomic<bool> go{false};
    std::vector<std::vector<double>> samples(kSubmitters);
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (std::size_t t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        auto& mine = samples[t];
        mine.reserve(kSubmitTasks / 32 + 1);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (std::size_t i = 0; i < kSubmitTasks; ++i) {
          const bool sampled = i % 32 == 0;
          const std::uint64_t p0 = sampled ? obs::now_ns() : 0;
          pool.post(util::ThreadPool::Task{[&executed] {
            executed.fetch_add(1, std::memory_order_relaxed);
          }});
          if (sampled) mine.push_back(double(obs::now_ns() - p0));
        }
      });
    }
    const std::uint64_t t0 = obs::now_ns();
    go.store(true, std::memory_order_release);
    for (auto& t : submitters) t.join();
    pool.wait_idle();
    const std::uint64_t wall = obs::now_ns() - t0;
    if (executed.load() != kSubmitters * kSubmitTasks) {
      std::fprintf(stderr,
                   "exp_engine_throughput: %zu-lane pool lost submissions\n",
                   pool.injector_lanes());
      std::exit(2);
    }
    Series s;
    s.mean_ns = double(wall) / double(kSubmitters * kSubmitTasks);
    for (auto& v : samples) {
      s.latency_ns.insert(s.latency_ns.end(), v.begin(), v.end());
    }
    if (best.mean_ns == 0.0 || s.mean_ns < best.mean_ns) best = std::move(s);
  }
  return best;
}

// --------------------------------------------------------------------------
// Part E: steal distribution (reported)
// --------------------------------------------------------------------------

/// One external submitter's whole backlog chains into its single home lane;
/// the workers must spread it across themselves through lane drains and
/// topology-ordered steal sweeps. Measures how fast a lopsided backlog is
/// redistributed, wave by wave.
Series bench_steal_distribution(std::size_t threads) {
  Series best;
  for (int r = 0; r < kRounds; ++r) {
    util::ThreadPool pool{threads};
    std::atomic<std::size_t> executed{0};
    Series s;
    s.latency_ns.reserve(kFanoutTasks / kWave + 1);
    const std::uint64_t t0 = obs::now_ns();
    for (std::size_t base = 0; base < kFanoutTasks; base += kWave) {
      const std::size_t end = std::min(base + kWave, kFanoutTasks);
      const std::uint64_t w0 = obs::now_ns();
      std::vector<util::ThreadPool::Task> batch;
      batch.reserve(end - base);
      for (std::size_t i = base; i < end; ++i) {
        batch.emplace_back([&executed, i] {
          executed.fetch_add(
              std::size_t(1) + std::size_t(campaign_body(int(i)) & 0),
              std::memory_order_relaxed);
        });
      }
      pool.submit_batch(batch);
      while (!pool.idle()) std::this_thread::yield();
      s.latency_ns.push_back(double(obs::now_ns() - w0) / double(end - base));
    }
    s.mean_ns = double(obs::now_ns() - t0) / double(kFanoutTasks);
    if (executed.load() != kFanoutTasks) {
      std::fprintf(stderr, "exp_engine_throughput: fan-out lost tasks\n");
      std::exit(2);
    }
    if (best.mean_ns == 0.0 || s.mean_ns < best.mean_ns) best = std::move(s);
  }
  return best;
}

// --------------------------------------------------------------------------
// Part F: metric shard throughput (reported)
// --------------------------------------------------------------------------

/// All threads hammer one obs::Counter and one obs::Histogram — the single
/// hottest metric pattern in the engine hot path. The sharding must never
/// lose an increment: totals are checked exactly after every round.
Series bench_metric_shards(std::size_t threads) {
  Series best;
  for (int r = 0; r < kRounds; ++r) {
    obs::Counter counter;
    obs::Histogram histogram;
    std::atomic<bool> go{false};
    std::vector<double> per_thread_ns(threads, 0.0);
    std::vector<std::thread> hammers;
    hammers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      hammers.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        const std::uint64_t h0 = obs::now_ns();
        for (std::size_t i = 0; i < kMetricOps; ++i) {
          counter.add(1);
          histogram.record(i & 0xFFF);
        }
        per_thread_ns[t] = double(obs::now_ns() - h0) / double(kMetricOps);
      });
    }
    const std::uint64_t t0 = obs::now_ns();
    go.store(true, std::memory_order_release);
    for (auto& t : hammers) t.join();
    const std::uint64_t wall = obs::now_ns() - t0;
    if (counter.total() != threads * kMetricOps ||
        histogram.count() != threads * kMetricOps) {
      std::fprintf(stderr, "exp_engine_throughput: metric shards lost ops\n");
      std::exit(2);
    }
    Series s;
    s.latency_ns = per_thread_ns;  // per-thread mean ns per add+record pair
    s.mean_ns = double(wall) / double(threads * kMetricOps);
    if (best.mean_ns == 0.0 || s.mean_ns < best.mean_ns) best = std::move(s);
  }
  return best;
}

void write_json(const std::vector<std::pair<std::string, Series>>& all,
                std::size_t threads) {
  const char* path = "BENCH_exp_engine_throughput.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "exp_engine_throughput: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"binary\": \"exp_engine_throughput\",\n");
  std::fprintf(f, "  \"pool_threads\": %zu,\n", threads);
  std::fprintf(f, "  \"benchmarks\": [\n");
  bool first = true;
  for (const auto& [name, s] : all) {
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"ops_per_sec\": %.3f, "
                 "\"latency_ns_mean\": %.1f, \"latency_ns_p50\": %.1f, "
                 "\"latency_ns_p95\": %.1f, \"latency_ns_p99\": %.1f, "
                 "\"repetitions\": %zu, \"threads\": %zu}",
                 first ? "" : ",\n", name.c_str(), s.ops_per_sec(), s.mean_ns,
                 s.percentile(50.0), s.percentile(95.0), s.percentile(99.0),
                 s.latency_ns.size(), threads);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  const std::size_t threads =
      std::clamp<std::size_t>(std::thread::hardware_concurrency(), 2, 8);

  std::printf("E20. Lock-free engine vs the PR-4 mutex engine\n\n");

  std::printf("Part A: fine-grained campaign, %zu tasks (~10 ns each) in "
              "waves of %zu, external driver, best of %d\n",
              kCampaignTasks, kWave, kRounds);
  const Series mutex_campaign = bench_mutex_campaign(threads);
  const Series lockfree_campaign = bench_lockfree_campaign(threads);
  const double speedup =
      lockfree_campaign.mean_ns > 0.0
          ? mutex_campaign.mean_ns / lockfree_campaign.mean_ns
          : 0.0;
  std::printf("  %-28s %10.1f ns/task %12.0f task/s  p99/wave %6.0f ns\n",
              "mutex engine (PR-4)", mutex_campaign.mean_ns,
              mutex_campaign.ops_per_sec(), mutex_campaign.percentile(99.0));
  std::printf("  %-28s %10.1f ns/task %12.0f task/s  p99/wave %6.0f ns\n",
              "lock-free engine", lockfree_campaign.mean_ns,
              lockfree_campaign.ops_per_sec(),
              lockfree_campaign.percentile(99.0));
  const bool pass = speedup >= kSpeedupGate;
  std::printf("  speedup %.2fx (gate >= %.1fx) -> %s\n\n", speedup,
              kSpeedupGate, pass ? "PASS" : "FAIL");

  std::printf("Part B: %zu-shard pattern serving, %zu requests x %zu "
              "variants, majority vote, best of %d (reported, no gate)\n",
              threads, kRequests, kVariants, kRounds);
  const Series mutex_patterns = bench_mutex_patterns(threads);
  const Series lockfree_patterns = bench_lockfree_patterns(threads);
  const double pattern_speedup =
      lockfree_patterns.mean_ns > 0.0
          ? mutex_patterns.mean_ns / lockfree_patterns.mean_ns
          : 0.0;
  std::printf("  %-28s %10.1f ns/req  %12.0f req/s   p99 %8.0f ns\n",
              "mutex engine (PR-4)", mutex_patterns.mean_ns,
              mutex_patterns.ops_per_sec(), mutex_patterns.percentile(99.0));
  std::printf("  %-28s %10.1f ns/req  %12.0f req/s   p99 %8.0f ns\n",
              "lock-free engine", lockfree_patterns.mean_ns,
              lockfree_patterns.ops_per_sec(),
              lockfree_patterns.percentile(99.0));
  std::printf("  speedup %.2fx\n\n", pattern_speedup);

  const Series steal = bench_steal_latency();
  std::printf("Part C: Chase-Lev steal latency, 1 owner vs %zu thieves, "
              "%zu items\n",
              kThieves, kStealItems);
  std::printf("  %zu successful steals: p50 %.0f ns  p95 %.0f ns  "
              "p99 %.0f ns\n\n",
              steal.latency_ns.size(), steal.percentile(50.0),
              steal.percentile(95.0), steal.percentile(99.0));

  std::printf("Part D: contended external submission, %zu submitters x %zu "
              "post()s, single lane vs sharded default, best of %d\n",
              kSubmitters, kSubmitTasks, kRounds);
  const Series submit_single = bench_contended_submission(threads, 1);
  const Series submit_sharded = bench_contended_submission(threads, 0);
  const double shard_speedup = submit_sharded.mean_ns > 0.0
                                   ? submit_single.mean_ns /
                                         submit_sharded.mean_ns
                                   : 0.0;
  std::printf("  %-28s %10.1f ns/task %12.0f task/s  p99 post %6.0f ns\n",
              "single injector (PR-5)", submit_single.mean_ns,
              submit_single.ops_per_sec(), submit_single.percentile(99.0));
  std::printf("  %-28s %10.1f ns/task %12.0f task/s  p99 post %6.0f ns\n",
              "sharded injector", submit_sharded.mean_ns,
              submit_sharded.ops_per_sec(), submit_sharded.percentile(99.0));
  const bool shard_gate_active = std::thread::hardware_concurrency() >= 4;
  const bool shard_pass = !shard_gate_active || shard_speedup >= kShardGate;
  if (shard_gate_active) {
    std::printf("  speedup %.2fx (gate >= %.1fx) -> %s\n\n", shard_speedup,
                kShardGate, shard_pass ? "PASS" : "FAIL");
  } else {
    std::printf("  speedup %.2fx (gate >= %.1fx skipped: < 4 cores, "
                "submitters are time-sliced so the lane lock is not the "
                "bottleneck)\n\n",
                shard_speedup, kShardGate);
  }

  const Series fanout = bench_steal_distribution(threads);
  std::printf("Part E: steal distribution, 1 submitter's lane fanned out to "
              "%zu workers, %zu tasks (reported, no gate)\n",
              threads, kFanoutTasks);
  std::printf("  %10.1f ns/task %12.0f task/s  p99/wave %6.0f ns\n\n",
              fanout.mean_ns, fanout.ops_per_sec(), fanout.percentile(99.0));

  const Series metric = bench_metric_shards(threads);
  std::printf("Part F: metric shard throughput, %zu threads x %zu "
              "Counter::add + Histogram::record pairs (reported, no gate)\n",
              threads, kMetricOps);
  std::printf("  %10.1f ns/pair %12.0f pair/s  worst thread %6.0f ns/pair\n\n",
              metric.mean_ns, metric.ops_per_sec(), metric.percentile(99.0));

  write_json({{"engine_mutex_campaign", mutex_campaign},
              {"engine_lockfree_campaign", lockfree_campaign},
              {"pattern_mutex_serve", mutex_patterns},
              {"pattern_lockfree_serve", lockfree_patterns},
              {"steal_latency", steal},
              {"submit_single_lane", submit_single},
              {"submit_sharded", submit_sharded},
              {"steal_distribution", fanout},
              {"obs_metric_shards", metric}},
             threads);

  return pass && shard_pass ? 0 : 1;
}
