// Custom google-benchmark main for every bench_* binary: runs the registered
// benchmarks with the usual console output, then writes BENCH_<binary>.json
// next to the working directory so the perf trajectory can be tracked across
// PRs by machines, not eyeballs. Schema documented in EXPERIMENTS.md.
//
// Per benchmark we record ops/sec and per-iteration latency. Each
// per-repetition sample feeds an obs::Histogram, and p50/p95/p99 are that
// histogram's deterministic log-linear percentile estimates; with the
// default single repetition they collapse to the one measured bucket (pass
// --benchmark_repetitions=N for real percentiles).
//
// Live telemetry is opt-in via the REDUNDANCY_OBS_* environment: with
// REDUNDANCY_OBS_HTTP_PORT set, every bench binary exposes /metrics,
// /healthz and /traces while it runs (and lingers REDUNDANCY_OBS_HTTP_
// LINGER_MS afterwards); REDUNDANCY_OBS_TRACE_FILE records a JSONL trace
// for tools/tracetool.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/live_telemetry.hpp"
#include "obs/histogram.hpp"
#include "util/thread_pool.hpp"

namespace {

/// Console output plus a per-repetition latency sample per benchmark.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Series {
    std::vector<double> latency_ns;  // per-iteration real time, one entry
                                     // per repetition
    std::int64_t threads = 1;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      Series& s = series_[run.benchmark_name()];
      s.latency_ns.push_back(run.real_accumulated_time * 1e9 / iters);
      s.threads = run.threads;
    }
  }

  [[nodiscard]] const std::map<std::string, Series>& series() const {
    return series_;
  }

 private:
  std::map<std::string, Series> series_;
};

/// Snapshot of the latency samples through the same log2 histogram the
/// runtime metrics use, so BENCH_*.json percentiles and metrics_*.prom
/// agree on bucketing and estimation.
redundancy::obs::HistogramSnapshot to_histogram(
    const std::vector<double>& latency_ns) {
  redundancy::obs::Histogram hist;
  for (double x : latency_ns) {
    hist.record(x <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(x)));
  }
  return hist.snapshot();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string basename_of(const char* path) {
  std::string s{path};
  const auto slash = s.find_last_of('/');
  if (slash != std::string::npos) s = s.substr(slash + 1);
  return s;
}

void write_json(const std::string& binary,
                const std::map<std::string, CollectingReporter::Series>& all) {
  const std::string path = "BENCH_" + binary + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json_main: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"binary\": \"%s\",\n", json_escape(binary).c_str());
  std::fprintf(f, "  \"pool_threads\": %zu,\n",
               redundancy::util::ThreadPool::shared_size_from_env());
  std::fprintf(f, "  \"benchmarks\": [\n");
  bool first = true;
  for (const auto& [name, s] : all) {
    double mean = 0.0;
    for (double x : s.latency_ns) mean += x;
    mean /= s.latency_ns.empty() ? 1.0 : double(s.latency_ns.size());
    const double ops = mean > 0.0 ? 1e9 / mean : 0.0;
    const auto snap = to_histogram(s.latency_ns);
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"ops_per_sec\": %.3f, "
                 "\"latency_ns_mean\": %.1f, \"latency_ns_p50\": %.1f, "
                 "\"latency_ns_p95\": %.1f, \"latency_ns_p99\": %.1f, "
                 "\"repetitions\": %zu, \"threads\": %lld}",
                 first ? "" : ",\n", json_escape(name).c_str(), ops, mean,
                 snap.percentile(50.0), snap.percentile(95.0),
                 snap.percentile(99.0), s.latency_ns.size(),
                 static_cast<long long>(s.threads));
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto telemetry = redundancy::core::start_live_telemetry_from_env();
  const std::string binary = basename_of(argv[0]);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  write_json(binary, reporter.series());
  if (telemetry) redundancy::core::linger_from_env();
  benchmark::Shutdown();
  return 0;
}
