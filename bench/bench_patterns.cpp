// B1 — microbenchmark: per-request overhead of the three Figure-1 patterns
// over a trivial variant body, as a function of N. Measures the framework's
// own cost (dispatch, ballot collection, adjudication) rather than variant
// work.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "core/parallel_evaluation.hpp"
#include "core/parallel_selection.hpp"
#include "core/sequential_alternatives.hpp"
#include "util/thread_pool.hpp"

using namespace redundancy;

namespace {

std::vector<core::Variant<int, int>> pool(std::size_t n) {
  std::vector<core::Variant<int, int>> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(core::make_variant<int, int>(
        "v" + std::to_string(i),
        [](const int& x) -> core::Result<int> { return x + 1; }));
  }
  return out;
}

void BM_SingleVariant(benchmark::State& state) {
  auto v = pool(1)[0];
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v(++x));
  }
}
BENCHMARK(BM_SingleVariant);

void BM_ParallelEvaluation(benchmark::State& state) {
  core::ParallelEvaluation<int, int> pe{
      pool(static_cast<std::size_t>(state.range(0))),
      core::majority_voter<int>()};
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pe.run(++x));
  }
}
BENCHMARK(BM_ParallelEvaluation)->Arg(3)->Arg(5)->Arg(9);

void BM_ParallelEvaluationThreaded(benchmark::State& state) {
  core::ParallelEvaluation<int, int> pe{
      pool(static_cast<std::size_t>(state.range(0))),
      core::majority_voter<int>(), core::Concurrency::threaded};
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pe.run(++x));
  }
}
BENCHMARK(BM_ParallelEvaluationThreaded)->Arg(3)->Arg(9);

void BM_ParallelSelection(benchmark::State& state) {
  using PS = core::ParallelSelection<int, int>;
  std::vector<PS::Checked> comps;
  for (auto& v : pool(static_cast<std::size_t>(state.range(0)))) {
    comps.push_back(PS::Checked{std::move(v), core::accept_all<int, int>()});
  }
  PS ps{std::move(comps)};
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ps.run(++x));
  }
}
BENCHMARK(BM_ParallelSelection)->Arg(3)->Arg(5)->Arg(9);

void BM_SequentialAlternativesHealthy(benchmark::State& state) {
  core::SequentialAlternatives<int, int> sa{
      pool(static_cast<std::size_t>(state.range(0))),
      core::accept_all<int, int>()};
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.run(++x));
  }
}
BENCHMARK(BM_SequentialAlternativesHealthy)->Arg(3)->Arg(9);

void BM_SequentialAlternativesAllFailing(benchmark::State& state) {
  std::vector<core::Variant<int, int>> failing;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    failing.push_back(core::make_variant<int, int>(
        "f", [](const int&) -> core::Result<int> {
          return core::failure(core::FailureKind::crash);
        }));
  }
  core::SequentialAlternatives<int, int> sa{std::move(failing),
                                            core::accept_all<int, int>()};
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.run(++x));
  }
}
BENCHMARK(BM_SequentialAlternativesAllFailing)->Arg(3)->Arg(9);

// --- latency-skewed variants: what the engine rewrite buys -----------------
//
// Five agreeing variants whose completion times are skewed by 10ms steps
// (variant i sleeps (i+1)*10ms), the model of replicas with different
// response times. join_all pays the slowest variant (~50ms). Incremental
// adjudication returns once the strict majority exists (3rd arrival,
// ~30ms). First-wins selection returns on the first accepted ballot
// (~10ms) — ≥2x the join_all throughput.
//
// Early-return modes leave sleeping stragglers behind; back-to-back timed
// iterations would queue behind them and measure pool saturation instead of
// pattern latency, so each iteration drains the shared pool outside timing.

std::vector<core::Variant<int, int>> skewed_pool(std::size_t n) {
  std::vector<core::Variant<int, int>> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(core::make_variant<int, int>(
        "v" + std::to_string(i), [i](const int& x) -> core::Result<int> {
          std::this_thread::sleep_for(std::chrono::milliseconds(10 * (i + 1)));
          return x + 1;
        }));
  }
  return out;
}

void BM_SkewedThreadedJoinAll(benchmark::State& state) {
  core::ParallelEvaluation<int, int> pe{skewed_pool(5),
                                        core::majority_voter<int>(),
                                        core::Concurrency::threaded};
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pe.run(++x));
    state.PauseTiming();
    util::ThreadPool::shared().wait_idle();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_SkewedThreadedJoinAll)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SkewedThreadedIncremental(benchmark::State& state) {
  core::ParallelEvaluation<int, int> pe{
      skewed_pool(5), core::majority_voter<int>(), core::Concurrency::threaded,
      core::Adjudication::incremental};
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pe.run(++x));
    state.PauseTiming();
    util::ThreadPool::shared().wait_idle();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_SkewedThreadedIncremental)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SkewedFirstWinsSelection(benchmark::State& state) {
  using PS = core::ParallelSelection<int, int>;
  std::vector<PS::Checked> comps;
  for (auto& v : skewed_pool(5)) {
    comps.push_back(PS::Checked{std::move(v), core::accept_all<int, int>()});
  }
  PS ps{std::move(comps),
        typename PS::Options{.disable_on_failure = false,
                             .lazy = true,
                             .concurrency = core::Concurrency::threaded}};
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ps.run(++x));
    state.PauseTiming();
    util::ThreadPool::shared().wait_idle();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_SkewedFirstWinsSelection)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
