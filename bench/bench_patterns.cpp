// B1 — microbenchmark: per-request overhead of the three Figure-1 patterns
// over a trivial variant body, as a function of N. Measures the framework's
// own cost (dispatch, ballot collection, adjudication) rather than variant
// work.
#include <benchmark/benchmark.h>

#include "core/parallel_evaluation.hpp"
#include "core/parallel_selection.hpp"
#include "core/sequential_alternatives.hpp"

using namespace redundancy;

namespace {

std::vector<core::Variant<int, int>> pool(std::size_t n) {
  std::vector<core::Variant<int, int>> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(core::make_variant<int, int>(
        "v" + std::to_string(i),
        [](const int& x) -> core::Result<int> { return x + 1; }));
  }
  return out;
}

void BM_SingleVariant(benchmark::State& state) {
  auto v = pool(1)[0];
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v(++x));
  }
}
BENCHMARK(BM_SingleVariant);

void BM_ParallelEvaluation(benchmark::State& state) {
  core::ParallelEvaluation<int, int> pe{
      pool(static_cast<std::size_t>(state.range(0))),
      core::majority_voter<int>()};
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pe.run(++x));
  }
}
BENCHMARK(BM_ParallelEvaluation)->Arg(3)->Arg(5)->Arg(9);

void BM_ParallelEvaluationThreaded(benchmark::State& state) {
  core::ParallelEvaluation<int, int> pe{
      pool(static_cast<std::size_t>(state.range(0))),
      core::majority_voter<int>(), core::Concurrency::threaded};
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pe.run(++x));
  }
}
BENCHMARK(BM_ParallelEvaluationThreaded)->Arg(3)->Arg(9);

void BM_ParallelSelection(benchmark::State& state) {
  using PS = core::ParallelSelection<int, int>;
  std::vector<PS::Checked> comps;
  for (auto& v : pool(static_cast<std::size_t>(state.range(0)))) {
    comps.push_back(PS::Checked{std::move(v), core::accept_all<int, int>()});
  }
  PS ps{std::move(comps)};
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ps.run(++x));
  }
}
BENCHMARK(BM_ParallelSelection)->Arg(3)->Arg(5)->Arg(9);

void BM_SequentialAlternativesHealthy(benchmark::State& state) {
  core::SequentialAlternatives<int, int> sa{
      pool(static_cast<std::size_t>(state.range(0))),
      core::accept_all<int, int>()};
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.run(++x));
  }
}
BENCHMARK(BM_SequentialAlternativesHealthy)->Arg(3)->Arg(9);

void BM_SequentialAlternativesAllFailing(benchmark::State& state) {
  std::vector<core::Variant<int, int>> failing;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    failing.push_back(core::make_variant<int, int>(
        "f", [](const int&) -> core::Result<int> {
          return core::failure(core::FailureKind::crash);
        }));
  }
  core::SequentialAlternatives<int, int> sa{std::move(failing),
                                            core::accept_all<int, int>()};
  int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa.run(++x));
  }
}
BENCHMARK(BM_SequentialAlternativesAllFailing)->Arg(3)->Arg(9);

}  // namespace
