// Regenerates Table 1 of the paper: the taxonomy dimensions for
// redundancy-based mechanisms.
#include <iostream>

#include "core/taxonomy.hpp"
#include "util/table.hpp"

int main() {
  using namespace redundancy;
  const auto dims = core::table1_dimensions();
  util::Table table{"Table 1. Taxonomy for redundancy based mechanisms"};
  table.header({"Dimension", "Values"});
  auto join = [](const std::vector<std::string>& values) {
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out += "; ";
      out += values[i];
    }
    return out;
  };
  table.row({"Intention", join(dims.intentions)});
  table.row({"Type", join(dims.types)});
  table.row({"Triggers and adjudicators", join(dims.adjudicators)});
  table.row({"Faults addressed", join(dims.faults)});
  table.print(std::cout);
  return 0;
}
