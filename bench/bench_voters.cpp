// B2 — microbenchmark: adjudicator cost per ballot set, by voter family
// and width. The paper calls the implicit vote "inexpensive"; this pins a
// number on it.
#include <benchmark/benchmark.h>

#include "core/voters.hpp"
#include "util/rng.hpp"

using namespace redundancy;

namespace {

std::vector<core::Ballot<std::int64_t>> ballots(std::size_t n,
                                                bool agreeing) {
  std::vector<core::Ballot<std::int64_t>> out;
  util::Rng rng{99};
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t v =
        agreeing ? 42 : static_cast<std::int64_t>(rng.below(4));
    out.push_back({i, "v", core::Result<std::int64_t>{v}});
  }
  return out;
}

void BM_MajorityVoterAgreeing(benchmark::State& state) {
  auto voter = core::majority_voter<std::int64_t>();
  auto bs = ballots(static_cast<std::size_t>(state.range(0)), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(voter(bs));
  }
}
BENCHMARK(BM_MajorityVoterAgreeing)->Arg(3)->Arg(9)->Arg(33);

void BM_MajorityVoterScattered(benchmark::State& state) {
  auto voter = core::majority_voter<std::int64_t>();
  auto bs = ballots(static_cast<std::size_t>(state.range(0)), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(voter(bs));
  }
}
BENCHMARK(BM_MajorityVoterScattered)->Arg(3)->Arg(9)->Arg(33);

void BM_PluralityVoter(benchmark::State& state) {
  auto voter = core::plurality_voter<std::int64_t>();
  auto bs = ballots(static_cast<std::size_t>(state.range(0)), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(voter(bs));
  }
}
BENCHMARK(BM_PluralityVoter)->Arg(3)->Arg(9)->Arg(33);

void BM_UnanimityVoter(benchmark::State& state) {
  auto voter = core::unanimity_voter<std::int64_t>();
  auto bs = ballots(static_cast<std::size_t>(state.range(0)), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(voter(bs));
  }
}
BENCHMARK(BM_UnanimityVoter)->Arg(3)->Arg(9)->Arg(33);

void BM_MedianVoter(benchmark::State& state) {
  auto voter = core::median_voter<std::int64_t>();
  auto bs = ballots(static_cast<std::size_t>(state.range(0)), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(voter(bs));
  }
}
BENCHMARK(BM_MedianVoter)->Arg(3)->Arg(9)->Arg(33);

void BM_WeightedVoter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto voter =
      core::weighted_voter<std::int64_t>(std::vector<double>(n, 1.0));
  auto bs = ballots(n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(voter(bs));
  }
}
BENCHMARK(BM_WeightedVoter)->Arg(3)->Arg(9)->Arg(33);

}  // namespace
