// E22 + E24 + E25. Acceptance experiment for the net::Gateway front door:
// real loopback sockets through the event loop, batched into the lock-free
// engine, redundancy patterns on the serving path, completions over the
// wakeup fd — sharded across SO_REUSEPORT reactor loops, with an
// epoll-vs-io_uring backend comparison.
//
// Part A (closed loop) — request latency. A handful of keep-alive client
// threads each issue serial requests against the hedged-and-cached /fast
// route and the 3-variant majority-voted /vote route; every round trip is
// timed on the client side, so the numbers include the loop, the engine
// hop, the pattern, and both socket crossings.
//
// Part B (open loop) — burst throughput. Each connection writes a pipelined
// burst of requests back to back, then drains the responses: the arrival
// process does not wait for completions, which is what an external load
// balancer does to a server under load.
//
// Part C (the gate) — concurrent connection scale. Opener threads establish
// as many simultaneous keep-alive connections as the fd budget allows, each
// proving it is actually admitted (one served request) and then staying
// open; with the whole population parked, /metrics and /healthz are probed
// through the same front door and must answer. Gate: >= 10k concurrent
// connections — enforced only on >= 4 cores (below that the box cannot
// host 2x10k sockets' worth of loop + client work; reported otherwise,
// scaled to the RLIMIT_NOFILE budget).
//
// Part D (E24, the scaling gate) — multi-reactor loop sweep. A fresh
// gateway per loop count in {1, 2, 4} runs the same open-loop pipelined
// workload; each count is its own benchmark series (gateway_scaling_loopsN)
// so bench_compare gates each independently. Gate: 4 loops >= 2.5x the
// 1-loop throughput — enforced only on >= 4 cores (below that the reactors
// share a core and the sweep is report-only).
//
// Part B additionally derives sends_per_response from the gateway.sends /
// gateway.responses counter deltas (summed over loop labels): with vectored
// sendmsg coalescing, pipelined bursts must average strictly fewer than one
// syscall per response. Gated unconditionally.
//
// Part E (E25) — completion-backend comparison. The same open-loop
// pipelined workload against two fresh single-loop gateways, one pinned to
// Backend::epoll and one to Backend::uring (multishot accept, provided
// buffers, linked sendmsg chains, batched io_uring_enter). Gates, enforced
// only when the uring probe passes AND >= 4 cores (the backend-vs-backend
// ratio needs the loop and the clients on separate cores to mean
// anything): uring throughput >= 1.3x epoll, and io_uring_enter calls per
// response < 0.5 (from the gateway.enters / gateway.responses deltas).
// When the probe falls back both numbers are report-only and the uring
// series is omitted from the JSON.
//
// Environment knobs (all optional):
//   REDUNDANCY_GATEWAY_CONNS        Part C target population
//   REDUNDANCY_GATEWAY_DURATION_MS  Part A per-route duration (default 1500)
//   REDUNDANCY_GATEWAY_QPS          Part B pipelined burst size (default 64)
//   REDUNDANCY_GATEWAY_PORT         fixed listen port (default ephemeral)
//   REDUNDANCY_GATEWAY_LOOPS        reactor count of the Part A-C gateway
//   REDUNDANCY_GATEWAY_BACKEND      loop backend of the Part A-D gateways
//                                   (Part E pins its backends explicitly)
//
// Emits BENCH_exp_gateway.json in the bench_json_main schema.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "net/gateway.hpp"
#include "net/loopback_client.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/obs.hpp"

using namespace redundancy;

namespace {

constexpr std::size_t kConnScaleGate = 10'000;
constexpr std::size_t kClosedLoopClients = 4;
constexpr std::size_t kOpenLoopConns = 8;
constexpr std::size_t kOpenLoopBursts = 32;
constexpr std::size_t kPipelineDepth = 32;  ///< conn.max_pipeline everywhere
constexpr double kScalingGate = 2.5;        ///< 4-loop vs 1-loop throughput
constexpr double kUringSpeedupGate = 1.3;   ///< uring vs epoll throughput
constexpr double kEntersGate = 0.5;         ///< io_uring_enter per response

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(raw, nullptr, 10));
}

struct Series {
  std::vector<double> latency_ns;
  double mean_ns = 0.0;
  [[nodiscard]] double ops_per_sec() const {
    return mean_ns > 0.0 ? 1e9 / mean_ns : 0.0;
  }
  [[nodiscard]] double percentile(double q) const {
    if (latency_ns.empty()) return 0.0;
    std::vector<double> sorted = latency_ns;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = std::min(
        sorted.size() - 1, std::size_t(q / 100.0 * double(sorted.size())));
    return sorted[idx];
  }
};

/// Sum every counter series of one family across its loop-label shards
/// (counter_totals keys are the raw names: "gateway.sends" or
/// "gateway.sends{loop=\"N\"}" — prefix-match both).
std::uint64_t counter_family_total(const std::string& family) {
  std::uint64_t total = 0;
  for (const auto& [key, value] :
       obs::MetricsRegistry::instance().counter_totals()) {
    if (key == family || key.rfind(family + "{", 0) == 0) total += value;
  }
  return total;
}

/// Raise RLIMIT_NOFILE to its hard cap; returns the resulting soft limit.
std::size_t raise_fd_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1024;
  lim.rlim_cur = lim.rlim_max;
  (void)::setrlimit(RLIMIT_NOFILE, &lim);
  (void)::getrlimit(RLIMIT_NOFILE, &lim);
  return static_cast<std::size_t>(lim.rlim_cur);
}

// --------------------------------------------------------------------------
// Part A: closed-loop latency per route
// --------------------------------------------------------------------------

Series closed_loop(std::uint16_t port, const std::string& route,
                   std::size_t duration_ms) {
  std::vector<std::vector<double>> samples(kClosedLoopClients);
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  clients.reserve(kClosedLoopClients);
  for (std::size_t c = 0; c < kClosedLoopClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = net::loopback::connect_loopback(port);
      if (fd < 0) return;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const std::uint64_t deadline =
          obs::now_ns() + duration_ms * 1'000'000ull;
      std::uint64_t x = c * 1'000'000;
      while (obs::now_ns() < deadline) {
        const std::string request =
            "GET " + route + "?x=" + std::to_string(x++) + " HTTP/1.1\r\n\r\n";
        const std::uint64_t t0 = obs::now_ns();
        if (!net::loopback::send_all(fd, request)) break;
        const net::loopback::Reply reply = net::loopback::read_response(fd);
        if (!reply.complete || reply.status != 200) break;
        samples[c].push_back(double(obs::now_ns() - t0));
      }
      ::close(fd);
    });
  }
  const std::uint64_t t0 = obs::now_ns();
  go.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const std::uint64_t wall = obs::now_ns() - t0;
  Series s;
  for (auto& part : samples) {
    s.latency_ns.insert(s.latency_ns.end(), part.begin(), part.end());
  }
  if (s.latency_ns.empty()) return s;
  s.mean_ns = double(wall) / double(s.latency_ns.size());
  return s;
}

// --------------------------------------------------------------------------
// Part B: open-loop pipelined bursts
// --------------------------------------------------------------------------

Series open_loop(std::uint16_t port, std::size_t burst) {
  std::vector<std::vector<double>> samples(kOpenLoopConns);
  std::atomic<std::size_t> failures{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  clients.reserve(kOpenLoopConns);
  for (std::size_t c = 0; c < kOpenLoopConns; ++c) {
    clients.emplace_back([&, c] {
      const int fd = net::loopback::connect_loopback(port);
      if (fd < 0) {
        failures.fetch_add(burst * kOpenLoopBursts);
        return;
      }
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t round = 0; round < kOpenLoopBursts; ++round) {
        std::string wire;
        for (std::size_t i = 0; i < burst; ++i) {
          wire += "GET /echo?x=" + std::to_string(c * 10'000 + i) +
                  " HTTP/1.1\r\n\r\n";
        }
        const std::uint64_t t0 = obs::now_ns();
        if (!net::loopback::send_all(fd, wire)) {
          failures.fetch_add(burst);
          break;
        }
        bool ok = true;
        for (std::size_t i = 0; i < burst; ++i) {
          const net::loopback::Reply reply = net::loopback::read_response(fd);
          if (!reply.complete || reply.status != 200) {
            ok = false;
            break;
          }
        }
        if (!ok) {
          failures.fetch_add(1);
          break;
        }
        // Amortized per-request latency inside the burst.
        samples[c].push_back(double(obs::now_ns() - t0) / double(burst));
      }
      ::close(fd);
    });
  }
  const std::uint64_t t0 = obs::now_ns();
  go.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const std::uint64_t wall = obs::now_ns() - t0;
  Series s;
  std::size_t requests = 0;
  for (auto& part : samples) {
    requests += part.size() * burst;
    s.latency_ns.insert(s.latency_ns.end(), part.begin(), part.end());
  }
  if (failures.load() != 0) {
    std::fprintf(stderr, "exp_gateway: open loop lost %zu requests\n",
                 failures.load());
    std::exit(2);
  }
  if (requests > 0) s.mean_ns = double(wall) / double(requests);
  return s;
}

// --------------------------------------------------------------------------
// Part C: concurrent connection scale (the gate)
// --------------------------------------------------------------------------

struct ScaleResult {
  Series series;          // per-connection establish+first-request latency
  std::size_t admitted = 0;
  bool metrics_ok = false;
  bool healthz_ok = false;
};

ScaleResult conn_scale(std::uint16_t port, std::size_t target) {
  constexpr std::size_t kOpeners = 4;
  std::vector<std::vector<int>> held(kOpeners);
  std::vector<std::vector<double>> samples(kOpeners);
  std::vector<std::thread> openers;
  openers.reserve(kOpeners);
  const std::uint64_t t0 = obs::now_ns();
  for (std::size_t o = 0; o < kOpeners; ++o) {
    openers.emplace_back([&, o] {
      const std::size_t share =
          target / kOpeners + (o < target % kOpeners ? 1 : 0);
      held[o].reserve(share);
      for (std::size_t i = 0; i < share; ++i) {
        const std::uint64_t c0 = obs::now_ns();
        const int fd = net::loopback::connect_loopback(port);
        if (fd < 0) return;  // fd budget or backlog exhausted: stop here
        // Prove admission: the connection must actually be served once
        // while everything opened before it stays parked.
        if (!net::loopback::send_all(
                fd, "GET /echo?x=" + std::to_string(o) + " HTTP/1.1\r\n\r\n")) {
          ::close(fd);
          return;
        }
        const net::loopback::Reply reply = net::loopback::read_response(fd);
        if (!reply.complete || reply.status != 200) {
          ::close(fd);
          return;
        }
        held[o].push_back(fd);
        samples[o].push_back(double(obs::now_ns() - c0));
      }
    });
  }
  for (auto& t : openers) t.join();
  const std::uint64_t wall = obs::now_ns() - t0;

  ScaleResult result;
  for (auto& part : held) result.admitted += part.size();
  for (auto& part : samples) {
    result.series.latency_ns.insert(result.series.latency_ns.end(),
                                    part.begin(), part.end());
  }
  if (result.admitted > 0) {
    result.series.mean_ns = double(wall) / double(result.admitted);
  }

  // With the whole population parked, the operational endpoints must still
  // answer through the same front door.
  const net::loopback::Reply metrics = net::loopback::http_get(port, "/metrics");
  result.metrics_ok =
      metrics.status == 200 &&
      metrics.body.find("gateway_requests") != std::string::npos &&
      metrics.body.find("gateway_accepted") != std::string::npos;
  const net::loopback::Reply healthz = net::loopback::http_get(port, "/healthz");
  result.healthz_ok = healthz.status == 200;

  for (auto& part : held) {
    for (const int fd : part) ::close(fd);
  }
  return result;
}

// --------------------------------------------------------------------------
// Part D (E24): multi-reactor loop-scaling sweep
// --------------------------------------------------------------------------

/// One sweep point: a fresh gateway with exactly `loops` reactors serving
/// the open-loop pipelined workload. Returns the amortized-latency series
/// (ops_per_sec is the scaling measure).
Series loop_scaling_point(std::size_t loops, std::size_t burst) {
  net::Gateway::Options options;
  options.loops = loops;
  options.conn.max_pipeline = kPipelineDepth;
  options.conn.max_inflight = 4096;
  net::Gateway gateway{options};
  net::install_demo_routes(gateway);
  if (!gateway.start()) {
    std::fprintf(stderr, "exp_gateway: sweep gateway (%zu loops) failed\n",
                 loops);
    std::exit(2);
  }
  Series s = open_loop(gateway.port(), burst);
  gateway.stop();
  if (gateway.jobs_inflight() != 0) {
    std::fprintf(stderr, "exp_gateway: sweep (%zu loops) leaked jobs\n",
                 loops);
    std::exit(2);
  }
  return s;
}

// --------------------------------------------------------------------------
// Part E (E25): epoll vs io_uring backend comparison
// --------------------------------------------------------------------------

struct BackendPoint {
  Series series;
  /// io_uring_enter syscalls per served response (0 on the epoll backend —
  /// its loop never touches the ring, so the counter does not move).
  double enters_per_response = 0.0;
};

/// One comparison point: a fresh single-loop gateway pinned to `backend`
/// serving the open-loop pipelined workload.
BackendPoint backend_point(net::EventLoop::Backend backend,
                           std::size_t burst) {
  net::Gateway::Options options;
  options.loops = 1;
  options.loop.backend = backend;
  options.conn.max_pipeline = kPipelineDepth;
  options.conn.max_inflight = 4096;
  net::Gateway gateway{options};
  net::install_demo_routes(gateway);
  if (!gateway.start()) {
    std::fprintf(stderr, "exp_gateway: %s-backend gateway failed to start\n",
                 net::EventLoop::backend_name(backend));
    std::exit(2);
  }
  const std::uint64_t enters_before = counter_family_total("gateway.enters");
  const std::uint64_t responses_before =
      counter_family_total("gateway.responses");
  BackendPoint point;
  point.series = open_loop(gateway.port(), burst);
  const std::uint64_t enters =
      counter_family_total("gateway.enters") - enters_before;
  const std::uint64_t responses =
      counter_family_total("gateway.responses") - responses_before;
  if (responses > 0) {
    point.enters_per_response = double(enters) / double(responses);
  }
  gateway.stop();
  if (gateway.jobs_inflight() != 0) {
    std::fprintf(stderr, "exp_gateway: %s-backend gateway leaked jobs\n",
                 net::EventLoop::backend_name(backend));
    std::exit(2);
  }
  return point;
}

void write_json(const std::vector<std::pair<std::string, Series>>& all,
                std::size_t threads, double sends_per_response,
                bool have_uring, double enters_per_response) {
  const char* path = "BENCH_exp_gateway.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "exp_gateway: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"binary\": \"exp_gateway\",\n");
  std::fprintf(f, "  \"pool_threads\": %zu,\n", threads);
  std::fprintf(f, "  \"benchmarks\": [\n");
  bool first = true;
  for (const auto& [name, s] : all) {
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"ops_per_sec\": %.3f, "
                 "\"latency_ns_mean\": %.1f, \"latency_ns_p50\": %.1f, "
                 "\"latency_ns_p95\": %.1f, \"latency_ns_p99\": %.1f, "
                 "\"repetitions\": %zu, \"threads\": %zu}",
                 first ? "" : ",\n", name.c_str(), s.ops_per_sec(), s.mean_ns,
                 s.percentile(50.0), s.percentile(95.0), s.percentile(99.0),
                 s.latency_ns.size(), threads);
    first = false;
  }
  // Syscall-batching efficiency of the pipelined part: sendmsg calls per
  // response (lower is better; < 1.0 means coalescing is working).
  std::fprintf(f,
               ",\n    {\"name\": \"gateway_send_batching\", "
               "\"sends_per_response\": %.4f, \"threads\": %zu}",
               sends_per_response, threads);
  // Submission-batching efficiency of the uring backend: io_uring_enter
  // syscalls per response (lower is better; < 0.5 is the E25 gate).
  // Omitted when the probe fell back — a zero here would read as "perfect
  // batching" on a machine that never touched the ring.
  if (have_uring) {
    std::fprintf(f,
                 ",\n    {\"name\": \"gateway_uring_batching\", "
                 "\"enters_per_response\": %.4f, \"threads\": %zu}",
                 enters_per_response, threads);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  const std::size_t cores = std::thread::hardware_concurrency();
  const std::size_t fd_budget = raise_fd_limit();
  // Each loopback connection costs two fds in this process (client + server
  // side); leave headroom for the pool, the loop, and stdio.
  const std::size_t fd_conn_cap = fd_budget > 512 ? (fd_budget - 256) / 2 : 64;
  const std::size_t conn_target = std::min(
      env_or("REDUNDANCY_GATEWAY_CONNS", kConnScaleGate), fd_conn_cap);
  const std::size_t duration_ms =
      env_or("REDUNDANCY_GATEWAY_DURATION_MS", 1500);
  const std::size_t burst = env_or("REDUNDANCY_GATEWAY_QPS", 64);

  net::Gateway::Options options;
  options.conn.port =
      static_cast<std::uint16_t>(env_or("REDUNDANCY_GATEWAY_PORT", 0));
  options.conn.max_connections = conn_target + 64;
  options.conn.max_inflight = 4096;
  options.conn.max_pipeline = kPipelineDepth;
  options.conn.idle_timeout_ms = 120'000;  // parked population must survive
  net::Gateway gateway{options};
  net::install_demo_routes(gateway);
  if (!gateway.start()) {
    std::fprintf(stderr, "exp_gateway: gateway failed to start\n");
    return 2;
  }
  std::printf(
      "E22+E24+E25. Gateway front door: multi-reactor loops -> submit_batch "
      "-> completions\n\n");
  std::printf("port %u, fd budget %zu, %zu cores, %zu loops, backend %s\n\n",
              gateway.port(), fd_budget, cores, gateway.loops(),
              net::EventLoop::backend_name(gateway.backend()));

  std::printf("Part A: closed loop, %zu keep-alive clients, %zu ms/route\n",
              kClosedLoopClients, duration_ms);
  const Series fast = closed_loop(gateway.port(), "/fast", duration_ms);
  const Series vote = closed_loop(gateway.port(), "/vote", duration_ms);
  std::printf("  /fast (hedged + cached)   %10.0f req/s  p50 %.0f us  "
              "p99 %.0f us\n",
              fast.ops_per_sec(), fast.percentile(50.0) / 1e3,
              fast.percentile(99.0) / 1e3);
  std::printf("  /vote (3-variant voted)   %10.0f req/s  p50 %.0f us  "
              "p99 %.0f us\n\n",
              vote.ops_per_sec(), vote.percentile(50.0) / 1e3,
              vote.percentile(99.0) / 1e3);

  std::printf("Part B: open loop, %zu conns x %zu bursts of %zu pipelined\n",
              kOpenLoopConns, kOpenLoopBursts, burst);
  const std::uint64_t sends_before = counter_family_total("gateway.sends");
  const std::uint64_t responses_before =
      counter_family_total("gateway.responses");
  const Series pipelined = open_loop(gateway.port(), burst);
  const std::uint64_t sends_delta =
      counter_family_total("gateway.sends") - sends_before;
  const std::uint64_t responses_delta =
      counter_family_total("gateway.responses") - responses_before;
  const double sends_per_response =
      responses_delta > 0 ? double(sends_delta) / double(responses_delta) : 1.0;
  std::printf("  /echo pipelined           %10.0f req/s  p50 %.1f us "
              "amortized\n",
              pipelined.ops_per_sec(), pipelined.percentile(50.0) / 1e3);
  const bool batching_ok = sends_per_response < 1.0;
  std::printf("  sendmsg per response      %10.4f  (%llu sends / %llu "
              "responses)  gate < 1.0 -> %s\n\n",
              sends_per_response,
              static_cast<unsigned long long>(sends_delta),
              static_cast<unsigned long long>(responses_delta),
              batching_ok ? "PASS" : "FAIL");

  std::printf("Part C: concurrent connection scale, target %zu\n",
              conn_target);
  const ScaleResult scale = conn_scale(gateway.port(), conn_target);
  std::printf("  admitted + served         %10zu connections\n",
              scale.admitted);
  std::printf("  /metrics under load       %s\n",
              scale.metrics_ok ? "ok" : "FAILED");
  std::printf("  /healthz under load       %s\n",
              scale.healthz_ok ? "ok" : "FAILED");

  const bool gate_active = cores >= 4;
  bool pass = batching_ok && scale.metrics_ok && scale.healthz_ok &&
              scale.admitted == conn_target;
  if (gate_active) {
    pass = pass && scale.admitted >= kConnScaleGate;
    std::printf("  scale gate >= %zu -> %s\n\n", kConnScaleGate,
                pass ? "PASS" : "FAIL");
  } else {
    std::printf("  scale gate >= %zu skipped: < 4 cores, fd-budget target "
                "%zu -> %s\n\n",
                kConnScaleGate, conn_target, pass ? "ok" : "FAIL");
  }

  gateway.stop();
  if (gateway.jobs_inflight() != 0) {
    std::fprintf(stderr, "exp_gateway: jobs leaked past stop()\n");
    return 2;
  }

  std::printf("Part D: loop-scaling sweep, same open-loop workload per "
              "reactor count\n");
  std::vector<std::pair<std::string, Series>> sweep;
  for (const std::size_t loops : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
    Series s = loop_scaling_point(loops, burst);
    std::printf("  %zu loop%s                   %10.0f req/s  p50 %.1f us "
                "amortized\n",
                loops, loops == 1 ? " " : "s", s.ops_per_sec(),
                s.percentile(50.0) / 1e3);
    sweep.emplace_back("gateway_scaling_loops" + std::to_string(loops),
                       std::move(s));
  }
  const double scaling =
      sweep.front().second.ops_per_sec() > 0.0
          ? sweep.back().second.ops_per_sec() /
                sweep.front().second.ops_per_sec()
          : 0.0;
  if (gate_active) {
    const bool scaling_ok = scaling >= kScalingGate;
    pass = pass && scaling_ok;
    std::printf("  4-loop / 1-loop           %10.2fx  gate >= %.1fx -> %s\n\n",
                scaling, kScalingGate, scaling_ok ? "PASS" : "FAIL");
  } else {
    std::printf("  4-loop / 1-loop           %10.2fx  gate >= %.1fx skipped: "
                "< 4 cores (report only)\n\n",
                scaling, kScalingGate);
  }

  std::printf("Part E (E25): completion-backend comparison, 1 loop, same "
              "open-loop workload\n");
  const bool uring_ok = net::EventLoop::uring_supported();
  const BackendPoint epoll_point =
      backend_point(net::EventLoop::Backend::epoll, burst);
  std::printf("  epoll backend             %10.0f req/s  p50 %.1f us "
              "amortized\n",
              epoll_point.series.ops_per_sec(),
              epoll_point.series.percentile(50.0) / 1e3);
  BackendPoint uring_point;
  double uring_speedup = 0.0;
  if (uring_ok) {
    uring_point = backend_point(net::EventLoop::Backend::uring, burst);
    uring_speedup = epoll_point.series.ops_per_sec() > 0.0
                        ? uring_point.series.ops_per_sec() /
                              epoll_point.series.ops_per_sec()
                        : 0.0;
    std::printf("  uring backend             %10.0f req/s  p50 %.1f us "
                "amortized\n",
                uring_point.series.ops_per_sec(),
                uring_point.series.percentile(50.0) / 1e3);
    if (gate_active) {
      const bool speedup_ok = uring_speedup >= kUringSpeedupGate;
      const bool enters_ok = uring_point.enters_per_response < kEntersGate;
      pass = pass && speedup_ok && enters_ok;
      std::printf("  uring / epoll             %10.2fx  gate >= %.1fx -> %s\n",
                  uring_speedup, kUringSpeedupGate,
                  speedup_ok ? "PASS" : "FAIL");
      std::printf("  io_uring_enter / response %10.4f  gate < %.1f -> %s\n\n",
                  uring_point.enters_per_response, kEntersGate,
                  enters_ok ? "PASS" : "FAIL");
    } else {
      std::printf("  uring / epoll             %10.2fx  gate >= %.1fx "
                  "skipped: < 4 cores (report only)\n",
                  uring_speedup, kUringSpeedupGate);
      std::printf("  io_uring_enter / response %10.4f  gate < %.1f skipped: "
                  "< 4 cores (report only)\n\n",
                  uring_point.enters_per_response, kEntersGate);
    }
  } else {
    std::printf("  uring backend             probe fell back (kernel/seccomp)"
                " — epoll numbers only, gates skipped\n\n");
  }

  std::vector<std::pair<std::string, Series>> all = {
      {"gateway_fast_closed", fast},
      {"gateway_vote_closed", vote},
      {"gateway_echo_pipelined", pipelined},
      {"gateway_conn_scale", scale.series}};
  for (auto& point : sweep) all.push_back(std::move(point));
  all.emplace_back("gateway_echo_epoll", epoll_point.series);
  if (uring_ok) all.emplace_back("gateway_echo_uring", uring_point.series);
  write_json(all, std::clamp<std::size_t>(cores, 2, 8), sends_per_response,
             uring_ok, uring_point.enters_per_response);
  return pass ? 0 : 1;
}
