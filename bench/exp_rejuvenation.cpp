// E5 — Section 4.3: software rejuvenation (Huang et al.) and the
// checkpoint+rejuvenation completion-time result (Garg et al.).
//
// Part 1: a request server with an aging hazard; rejuvenation period sweep.
// Shape: crashes fall monotonically with rejuvenation aggressiveness, but
// availability has an interior optimum (too-frequent planned downtime
// costs more than the crashes it prevents).
//
// Part 2: Garg's completion-time model — a long-running program with
// checkpoints; rejuvenation period sweep minimizes expected completion
// time at an interior value.
#include <iostream>

#include "techniques/rejuvenation.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace redundancy;

int main() {
  env::AgingConfig aging;
  aging.capacity = 2000.0;
  aging.mean_leak = 4.0;
  aging.hazard_scale = 0.06;
  aging.hazard_exponent = 3.0;
  aging.reboot_time = 300.0;

  {
    util::Table table{
        "E5a. Rejuvenation period sweep: 20k requests, crash reboot = 300, "
        "planned restart = 60 (mean of 10 seeded runs)"};
    table.header({"policy", "crashes", "rejuvenations", "goodput",
                  "availability"});
    auto sweep = [&](const techniques::RejuvenationPolicy& policy) {
      util::Accumulator crashes, rejuv, goodput, avail;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto run =
            techniques::serve_with_rejuvenation(aging, policy, 20'000, seed);
        crashes.add(static_cast<double>(run.crashes));
        rejuv.add(static_cast<double>(run.rejuvenations));
        goodput.add(run.goodput());
        avail.add(run.availability());
      }
      table.row({policy.describe(), util::Table::num(crashes.mean(), 1),
                 util::Table::num(rejuv.mean(), 1),
                 util::Table::pct(goodput.mean(), 2),
                 util::Table::pct(avail.mean(), 2)});
    };
    sweep(techniques::RejuvenationPolicy::none());
    for (const std::uint64_t period : {50u, 100u, 200u, 400u, 800u}) {
      sweep(techniques::RejuvenationPolicy::periodic(period, 60.0));
    }
    for (const double age : {0.3, 0.5, 0.7}) {
      sweep(techniques::RejuvenationPolicy::threshold(age, 60.0));
    }
    table.print(std::cout);
  }

  {
    util::Table table{
        "E5b. Garg et al.: completion time of a 10k-unit program under "
        "checkpointing (every 200, cost 5) + rejuvenation period sweep "
        "(mean of 10 seeded runs)"};
    table.header({"rejuvenate every", "completion time", "crashes",
                  "rejuvenations"});
    env::AgingConfig prog_aging = aging;
    prog_aging.hazard_scale = 0.04;
    for (const double period : {0.0, 100.0, 250.0, 500.0, 1000.0, 2000.0}) {
      util::Accumulator time, crashes, rejuv;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        env::CompletionConfig cfg;
        cfg.total_work = 10'000.0;
        cfg.checkpoint_every = 200.0;
        cfg.checkpoint_cost = 5.0;
        cfg.rejuvenate_every = period;
        cfg.rejuvenation_time = 60.0;
        const auto run = env::simulate_completion(prog_aging, cfg, seed);
        time.add(run.total_time);
        crashes.add(static_cast<double>(run.crashes));
        rejuv.add(static_cast<double>(run.rejuvenations));
      }
      table.row({period == 0.0 ? "never" : util::Table::num(period, 0),
                 util::Table::num(time.mean(), 0),
                 util::Table::num(crashes.mean(), 1),
                 util::Table::num(rejuv.mean(), 1)});
    }
    table.print(std::cout);
  }
  std::cout << "Shape check: E5a crashes decrease monotonically with\n"
               "rejuvenation aggressiveness while availability peaks at an\n"
               "interior period; E5b completion time is minimized at an\n"
               "interior rejuvenation period (Garg's result), with 'never'\n"
               "paying crash downtime and 'too often' paying planned\n"
               "downtime.\n";
  return 0;
}
