// E2 — Section 4.1 cost discussion: recovery blocks trade N-version's high
// execution cost for adjudicator design cost. Same faulty version pool,
// two deployments: NVP (all versions, implicit vote) vs recovery blocks
// (sequential, explicit acceptance test of varying quality).
//
// Shape to reproduce: RB consumes ~1 execution/request at equal or better
// reliability when the acceptance test is strong, and silently degrades as
// the acceptance test weakens — the vote needs no such trust.
#include <iostream>
#include <memory>

#include "campaign_runner.hpp"
#include "core/live_telemetry.hpp"
#include "faults/campaign.hpp"
#include "faults/fault.hpp"
#include "techniques/nvp.hpp"
#include "techniques/recovery_blocks.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

int golden(const int& x) { return x * 17 + 3; }

std::vector<core::Variant<int, int>> versions(std::size_t n, double p) {
  std::vector<core::Variant<int, int>> out;
  for (std::size_t i = 0; i < n; ++i) {
    faults::FaultInjector<int, int> v{"v" + std::to_string(i), golden};
    v.add(faults::bohrbug<int, int>(
        "bug", p, 6000 + i, core::FailureKind::wrong_output,
        faults::skewed<int, int>(static_cast<int>(i) + 1)));
    out.push_back(v.as_variant());
  }
  return out;
}

/// Acceptance test that catches a wrong output with probability q
/// (deterministic per input): q = 1 is the oracle, q = 0 is vacuous.
core::AcceptanceTest<int, int> detector(double q) {
  return [q](const int& x, const int& out) {
    if (out == golden(x)) return true;  // never rejects correct results
    return faults::input_position(x, 31337) >= q;  // miss with prob 1-q
  };
}

}  // namespace

int main() {
  auto telemetry = core::start_live_telemetry_from_env();
  constexpr std::size_t kRequests = 30'000;
  constexpr double kFaultRate = 0.10;
  constexpr std::size_t kN = 3;

  auto workload = [](std::size_t i, util::Rng&) { return static_cast<int>(i); };

  util::Table table{
      "E2. Recovery blocks vs N-version programming: reliability and "
      "execution cost (3 versions, 10% per-version fault rate)"};
  table.header({"configuration", "adjudicator", "reliability", "safety",
                "execs/req"});

  {
    using Nvp = techniques::NVersionProgramming<int, int>;
    auto cell = bench::run_sharded<int, int>(
        "nvp", kRequests, workload,
        [] { return std::make_shared<Nvp>(versions(kN, kFaultRate)); },
        [](Nvp& nvp, const int& x) { return nvp.run(x); }, golden);
    table.row({"N-version programming", "implicit majority vote",
               util::Table::pct(cell.report.reliability_value(), 2),
               util::Table::pct(cell.report.safety_value(), 2),
               util::Table::num(cell.metrics.executions_per_request(), 2)});
  }
  table.separator();
  for (const double q : {1.0, 0.9, 0.5, 0.0}) {
    using Rb = techniques::RecoveryBlocks<int, int>;
    auto cell = bench::run_sharded<int, int>(
        "rb", kRequests, workload,
        [&] {
          return std::make_shared<Rb>(versions(kN, kFaultRate), detector(q));
        },
        [](Rb& rb, const int& x) { return rb.run(x); }, golden);
    table.row({"recovery blocks",
               "explicit test, " + util::Table::pct(q, 0) + " detection",
               util::Table::pct(cell.report.reliability_value(), 2),
               util::Table::pct(cell.report.safety_value(), 2),
               util::Table::num(cell.metrics.executions_per_request(), 2)});
  }
  table.print(std::cout);
  std::cout << "Shape check: with an oracle acceptance test, recovery blocks\n"
               "match or beat NVP's reliability at ~1/3 of its execution\n"
               "cost; as the explicit adjudicator weakens, wrong results\n"
               "slip through (safety drops) while NVP's implicit vote is\n"
               "immune to adjudicator quality — the paper's design-cost vs\n"
               "execution-cost trade-off.\n";
  if (telemetry) core::linger_from_env();
  return 0;
}
