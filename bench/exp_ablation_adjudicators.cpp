// Ablation — the implicit-adjudicator design space. The paper treats "a
// general voting algorithm" as a single box; this ablation shows how much
// the *choice* of voter matters, by running every voter family over the
// same 3-version system under four error models:
//
//   distinct-wrong   — faulty versions emit different wrong answers
//   common-mode      — faulty versions emit the *same* wrong answer
//   fail-stop        — faulty versions crash instead of lying
//   numeric-noise    — all versions correct up to floating-point noise
//
// Also ablated: the adaptive reliability-weighted voter, which learns to
// distrust a degraded version that plain voting keeps counting.
#include <functional>
#include <iostream>
#include <memory>

#include "campaign_runner.hpp"
#include "core/adaptive.hpp"
#include "faults/campaign.hpp"
#include "faults/fault.hpp"
#include "techniques/nvp.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

int golden(const int& x) { return 11 * x + 2; }

enum class ErrorModel { distinct_wrong, common_mode, fail_stop };

std::vector<core::Variant<int, int>> versions(ErrorModel model, double p) {
  std::vector<core::Variant<int, int>> out;
  for (std::size_t i = 0; i < 3; ++i) {
    faults::FaultInjector<int, int> v{"v" + std::to_string(i), golden};
    switch (model) {
      case ErrorModel::distinct_wrong:
        v.add(faults::bohrbug<int, int>(
            "b", p, 500 + i, core::FailureKind::wrong_output,
            faults::skewed<int, int>(static_cast<int>(i) + 1)));
        break;
      case ErrorModel::common_mode:
        // Independent activation regions but the *same* wrong answer —
        // e.g. a shared faulty library returning the same bad value.
        v.add(faults::bohrbug<int, int>(
            "b", p, 500 + i, core::FailureKind::wrong_output,
            faults::skewed<int, int>(1000)));
        break;
      case ErrorModel::fail_stop:
        v.add(faults::bohrbug<int, int>("b", p, 500 + i,
                                        core::FailureKind::crash));
        break;
    }
    out.push_back(v.as_variant());
  }
  return out;
}

struct VoterChoice {
  std::string name;
  std::function<core::Voter<int>()> make;
};

}  // namespace

int main() {
  constexpr std::size_t kRequests = 20'000;
  constexpr double kRate = 0.15;
  auto workload = [](std::size_t i, util::Rng&) { return static_cast<int>(i); };

  const std::vector<VoterChoice> voters{
      {"strict majority", [] { return core::majority_voter<int>(); }},
      {"plurality", [] { return core::plurality_voter<int>(); }},
      {"median", [] { return core::median_voter<int>(); }},
      {"unanimity", [] { return core::unanimity_voter<int>(); }},
  };
  const std::vector<std::pair<std::string, ErrorModel>> models{
      {"distinct-wrong", ErrorModel::distinct_wrong},
      {"common-mode", ErrorModel::common_mode},
      {"fail-stop", ErrorModel::fail_stop},
  };

  util::Table table{
      "Ablation A. Voter family x error model: reliability / safety over the "
      "same 3-version system (15% per-version faults, 20k requests)"};
  table.header({"error model", "voter", "reliability", "safety"});
  for (const auto& [model_name, model] : models) {
    for (const auto& choice : voters) {
      using Nvp = techniques::NVersionProgramming<int, int>;
      auto cell = bench::run_sharded<int, int>(
          "cell", kRequests, workload,
          [&] {
            return std::make_shared<Nvp>(versions(model, kRate),
                                         choice.make());
          },
          [](Nvp& nvp, const int& x) { return nvp.run(x); }, golden);
      table.row({model_name, choice.name,
                 util::Table::pct(cell.report.reliability_value(), 2),
                 util::Table::pct(cell.report.safety_value(), 2)});
    }
    table.separator();
  }
  table.print(std::cout);

  // Ablation B: plain vs adaptive weighting against a degraded version.
  // Stays on the serial runner: the adaptive voter *learns* across the
  // request stream, so its trajectory is inherently order-dependent and
  // sharding would change what it converges to per shard.
  util::Table adaptive{
      "Ablation B. Learned reliability weights vs a degraded version "
      "(version 2 fails on 60% of inputs, others on 5%; distinct wrong "
      "answers; 20k requests)"};
  adaptive.header({"voter", "reliability", "learned weight of v2"});
  auto degraded_pool = [] {
    std::vector<core::Variant<int, int>> out;
    for (std::size_t i = 0; i < 3; ++i) {
      faults::FaultInjector<int, int> v{"v" + std::to_string(i), golden};
      v.add(faults::bohrbug<int, int>(
          "b", i == 2 ? 0.6 : 0.05, 900 + i, core::FailureKind::wrong_output,
          faults::skewed<int, int>(static_cast<int>(i) + 1)));
      out.push_back(v.as_variant());
    }
    return out;
  };
  {
    techniques::NVersionProgramming<int, int> nvp{degraded_pool()};
    auto report = faults::run_campaign<int, int>(
        "plain", kRequests, workload,
        [&nvp](const int& x) { return nvp.run(x); }, golden);
    adaptive.row({"strict majority",
                  util::Table::pct(report.reliability_value(), 2), "-"});
  }
  {
    core::ReliabilityTracker tracker{3};
    techniques::NVersionProgramming<int, int> nvp{
        degraded_pool(), core::adaptive_voter<int>(tracker)};
    auto report = faults::run_campaign<int, int>(
        "adaptive", kRequests, workload,
        [&nvp](const int& x) { return nvp.run(x); }, golden);
    adaptive.row({"adaptive weighted",
                  util::Table::pct(report.reliability_value(), 2),
                  util::Table::num(tracker.reliability(2), 3)});
  }
  adaptive.print(std::cout);
  std::cout
      << "Shape check: with distinct wrong answers, wrong values cannot\n"
         "form a quorum — majority/plurality are perfectly *safe* (every\n"
         "failure is detected, never silent). Under common-mode errors the\n"
         "shared wrong answer wins votes: the same reliability now comes\n"
         "with silent wrong outputs (safety drops to reliability) — the\n"
         "Knight-Leveson danger, while unanimity converts near-every fault\n"
         "into a detection (highest safety, lowest availability). Under\n"
         "fail-stop errors, voters that ignore crashed ballots (plurality,\n"
         "median) beat strict majority, whose quorum counts the dead. The\n"
         "adaptive voter learns v2's unreliability (weight << 0.5) and\n"
         "beats plain majority when one version degrades.\n";
  return 0;
}
