// B6 — microbenchmark: the runtime price of design diversity at the
// database tier. The three engines trade differently (vector: O(n) scans;
// b-tree: indexed point lookups; log: replay-on-read), and the replicated
// deployment pays roughly the sum of its members — the execution-cost side
// of Gashi's argument.
#include <benchmark/benchmark.h>

#include "sql/chaos.hpp"
#include "techniques/sql_nvp.hpp"
#include "util/rng.hpp"

using namespace redundancy;
using sql::Condition;
using sql::Row;

namespace {

void fill(sql::SqlStore& store, std::int64_t rows) {
  (void)store.create_table("t", {"id", "v"});
  for (std::int64_t i = 0; i < rows; ++i) {
    (void)store.insert("t", {i, i * 7});
  }
}

template <typename Factory>
void point_lookup(benchmark::State& state, Factory factory) {
  auto store = factory();
  const auto rows = state.range(0);
  fill(*store, rows);
  util::Rng rng{5};
  for (auto _ : state) {
    const Condition cond{"id", Condition::Op::eq,
                         rng.between(0, rows - 1)};
    benchmark::DoNotOptimize(store->select("t", cond));
  }
}

void BM_VectorPointLookup(benchmark::State& state) {
  point_lookup(state, &sql::make_vector_store);
}
BENCHMARK(BM_VectorPointLookup)->Arg(100)->Arg(1000);

void BM_BTreePointLookup(benchmark::State& state) {
  point_lookup(state, &sql::make_btree_store);
}
BENCHMARK(BM_BTreePointLookup)->Arg(100)->Arg(1000);

void BM_LogPointLookup(benchmark::State& state) {
  point_lookup(state, &sql::make_log_store);
}
BENCHMARK(BM_LogPointLookup)->Arg(100)->Arg(1000);

void BM_VectorInsert(benchmark::State& state) {
  auto store = sql::make_vector_store();
  (void)store->create_table("t", {"id", "v"});
  std::int64_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->insert("t", {next++, 1}));
  }
}
// Fixed iteration count: the table grows with every insert (the duplicate
// check is O(n) in the vector engine), so open-ended timing would quadratically
// inflate the run.
BENCHMARK(BM_VectorInsert)->Iterations(5000);

void BM_BTreeInsert(benchmark::State& state) {
  auto store = sql::make_btree_store();
  (void)store->create_table("t", {"id", "v"});
  std::int64_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->insert("t", {next++, 1}));
  }
}
BENCHMARK(BM_BTreeInsert)->Iterations(50000);

void BM_StateDigest(benchmark::State& state) {
  auto store = sql::make_btree_store();
  fill(*store, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->state_digest());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StateDigest)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ReplicatedPointLookup(benchmark::State& state) {
  std::vector<sql::StorePtr> replicas;
  replicas.push_back(sql::make_vector_store());
  replicas.push_back(sql::make_btree_store());
  replicas.push_back(sql::make_log_store());
  techniques::ReplicatedSqlServer server{std::move(replicas),
                                         {.reconcile_every = 0}};
  fill(server, state.range(0));
  util::Rng rng{5};
  for (auto _ : state) {
    const Condition cond{"id", Condition::Op::eq,
                         rng.between(0, state.range(0) - 1)};
    benchmark::DoNotOptimize(server.select("t", cond));
  }
}
BENCHMARK(BM_ReplicatedPointLookup)->Arg(100)->Arg(1000);

}  // namespace
