// E11 — Section 5.2: checkpoint-recovery "is effective in dealing with
// Heisenbugs that depend on temporary execution conditions, but does not
// work for Bohrbugs". Mixed fault injection over a checkpointed subject,
// with a checkpoint-interval sweep showing the classic overhead/loss
// trade-off.
#include <iostream>

#include <memory>

#include "faults/fault.hpp"
#include "techniques/checkpoint_recovery.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

class Store final : public env::Checkpointable {
 public:
  std::int64_t committed = 0;
  [[nodiscard]] util::ByteBuffer snapshot() const override {
    util::ByteBuffer buf;
    buf.put(committed);
    return buf;
  }
  void restore(const util::ByteBuffer& state) override {
    committed = state.reader().get<std::int64_t>();
  }
};

}  // namespace

int main() {
  constexpr std::size_t kOps = 20'000;

  {
    util::Table table{
        "E11a. Checkpoint-recovery by fault class (20k operations, 5% fault "
        "activation, 4 retries)"};
    table.header({"fault class", "activated", "recovered", "unrecovered",
                  "survival"});
    for (const bool deterministic : {false, true}) {
      Store store;
      techniques::CheckpointRecovery cr{
          store, {.checkpoint_every = 1, .max_retries = 4}};
      auto rng = std::make_shared<util::Rng>(7);
      std::size_t activated = 0;
      std::size_t survived = 0;
      for (std::size_t i = 0; i < kOps; ++i) {
        // A Bohrbug fires deterministically per operation index; a
        // Heisenbug re-rolls on every (re-)execution.
        const bool bohr_fires = faults::input_position(i, 99) < 0.05;
        bool counted = false;
        auto status = cr.run([&]() -> core::Status {
          store.committed += 1;
          const bool fires =
              deterministic ? bohr_fires : rng->chance(0.05);
          if (fires) {
            if (!counted) {
              ++activated;
              counted = true;
            }
            return core::failure(
                core::FailureKind::crash, "fault",
                deterministic ? core::FaultClass::bohrbug
                              : core::FaultClass::heisenbug);
          }
          return core::ok_status();
        });
        if (status.has_value()) ++survived;
      }
      table.row({deterministic ? "Bohrbug" : "Heisenbug",
                 util::Table::count(activated),
                 util::Table::count(cr.recoveries()),
                 util::Table::count(cr.unrecovered()),
                 util::Table::pct(survived / double(kOps), 2)});
    }
    table.print(std::cout);
  }

  {
    util::Table table{
        "E11b. Checkpoint-interval sweep: overhead (checkpoints taken) vs "
        "work lost per failure (Heisenbug rate 2%, 20k ops)"};
    table.header({"checkpoint every", "checkpoints", "rollbacks",
                  "final state", "lost work"});
    for (const std::size_t interval : {1u, 8u, 64u, 512u}) {
      Store store;
      techniques::CheckpointRecovery cr{
          store,
          {.checkpoint_every = interval, .max_retries = 4, .retained = 4}};
      auto rng = std::make_shared<util::Rng>(11);
      std::int64_t attempted = 0;
      for (std::size_t i = 0; i < kOps; ++i) {
        (void)cr.run([&]() -> core::Status {
          store.committed += 1;
          ++attempted;
          if (rng->chance(0.02)) {
            return core::failure(core::FailureKind::crash, "heisen",
                                 core::FaultClass::heisenbug);
          }
          return core::ok_status();
        });
      }
      // Work lost = successful increments rolled away because they shared a
      // checkpoint window with a later failure.
      table.row({util::Table::count(interval),
                 util::Table::count(cr.checkpoints_taken()),
                 util::Table::count(cr.rollbacks()),
                 util::Table::count(static_cast<std::size_t>(store.committed)),
                 util::Table::count(static_cast<std::size_t>(
                     attempted - store.committed))});
    }
    table.print(std::cout);
  }
  std::cout << "Shape check: Heisenbugs are almost fully recovered (retry\n"
               "re-rolls the transient condition) while Bohrbugs defeat\n"
               "every retry (survival ~= 1 - activation rate). In the\n"
               "interval sweep, frequent checkpoints cost many captures but\n"
               "lose little work per failure; sparse checkpoints invert the\n"
               "trade-off.\n";
  return 0;
}
