// E4 — Section 4.2: data diversity (Ammann & Knight). A numeric kernel
// fails on an input-dependent fault region; exact re-expressions slide the
// computation off the region. Compared: plain execution, retry blocks
// (sequential re-expression) and N-copy programming (parallel + vote), at
// growing fault-region sizes.
//
// Shape: both deployments recover nearly everything while the region is
// small relative to the re-expression displacement, and the gain shrinks
// as the region grows (a re-expressed point lands back inside it).
#include <iostream>
#include <memory>

#include "campaign_runner.hpp"
#include "faults/campaign.hpp"
#include "faults/fault.hpp"
#include "techniques/data_diversity.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

// Kernel: integer polynomial with a Bohrbug on a hash-selected region of
// the input domain (the model of a corner-case fault).
std::int64_t golden(const std::int64_t& x) { return x * x - 3 * x + 11; }

std::function<core::Result<std::int64_t>(const std::int64_t&)> kernel(
    double region) {
  return [region](const std::int64_t& x) -> core::Result<std::int64_t> {
    if (faults::input_position(x, 555) < region) {
      return core::failure(core::FailureKind::crash, "corner case",
                           core::FaultClass::bohrbug);
    }
    return golden(x);
  };
}

// Exact re-expression: golden(x) can be recovered from golden(x+d) because
// golden(x) = golden(x+d) - (2xd + d^2 + ... ). We use the algebraic
// identity directly: compute on x+d, recover with the closed form.
techniques::ReExpression<std::int64_t, std::int64_t> shift(std::int64_t d) {
  return {"shift+" + std::to_string(d),
          [d](const std::int64_t& x) { return x + d; },
          [d](const std::int64_t& x, const std::int64_t& out) {
            return out - (2 * x * d + d * d - 3 * d);
          }};
}

}  // namespace

int main() {
  constexpr std::size_t kRequests = 30'000;
  auto workload = [](std::size_t i, util::Rng& rng) {
    (void)i;
    return static_cast<std::int64_t>(rng.below(1'000'000));
  };

  util::Table table{
      "E4. Data diversity on an input-region Bohrbug: plain vs retry block "
      "vs N-copy (exact re-expressions x+1, x+2; 30k random inputs)"};
  table.header({"fault region", "plain", "retry block", "N-copy(3)",
                "retry execs/req"});

  for (const double region : {0.01, 0.05, 0.20, 0.50}) {
    auto program = kernel(region);
    // Plain, unprotected run: the kernel is a pure function, so one shared
    // system serves every shard.
    auto plain = faults::run_campaign_parallel<std::int64_t, std::int64_t>(
        "plain", kRequests, workload, program, golden, 1,
        bench::kCampaignWorkers);
    // Retry block with identity + two exact re-expressions.
    using Retry = techniques::RetryBlock<std::int64_t, std::int64_t>;
    auto rb = bench::run_sharded<std::int64_t, std::int64_t>(
        "retry", kRequests, workload,
        [&] {
          return std::make_shared<Retry>(
              program,
              std::vector<techniques::ReExpression<std::int64_t, std::int64_t>>{
                  techniques::identity_reexpression<std::int64_t,
                                                    std::int64_t>(),
                  shift(1), shift(2)},
              [](const std::int64_t&, const std::int64_t&) { return true; });
        },
        [](Retry& retry, const std::int64_t& x) { return retry.run(x); },
        golden);
    // N-copy programming over the same re-expressions.
    using NCopy = techniques::NCopyProgramming<std::int64_t, std::int64_t>;
    auto nc = bench::run_sharded<std::int64_t, std::int64_t>(
        "ncopy", kRequests, workload,
        [&] {
          return std::make_shared<NCopy>(
              program,
              std::vector<techniques::ReExpression<std::int64_t, std::int64_t>>{
                  techniques::identity_reexpression<std::int64_t,
                                                    std::int64_t>(),
                  shift(1), shift(2)},
              core::plurality_voter<std::int64_t>());
        },
        [](NCopy& ncopy, const std::int64_t& x) { return ncopy.run(x); },
        golden);

    table.row({util::Table::pct(region, 0),
               util::Table::pct(plain.reliability_value(), 2),
               util::Table::pct(rb.report.reliability_value(), 2),
               util::Table::pct(nc.report.reliability_value(), 2),
               util::Table::num(rb.metrics.executions_per_request(), 2)});
  }
  table.print(std::cout);
  std::cout << "Shape check: plain reliability is 1-region. Re-expression\n"
               "lifts both deployments to ~1-region^3 (three independent\n"
               "chances to miss the region), so the gain is dramatic for\n"
               "small regions and fades as the region grows. The retry\n"
               "block's execution cost stays near 1 for small regions.\n";
  return 0;
}
