// E3 — Section 4.1: self-checking programming runs acting + hot-spare
// components in parallel; a failed acting component is discarded and the
// spare takes over with no rollback, progressively consuming redundancy.
//
// Scenario: a fault burst hits the acting component partway through the
// run. Shape: availability stays high through the burst (instant
// switchover), the pool shrinks monotonically, and once the pool is dry the
// system goes down until redeployment.
#include <iostream>

#include "core/live_telemetry.hpp"
#include "faults/fault.hpp"
#include "techniques/self_checking.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

int golden(const int& x) { return 2 * x + 1; }

}  // namespace

int main() {
  auto telemetry = core::start_live_telemetry_from_env();
  using SC = techniques::SelfCheckingProgramming<int, int>;

  // Components fail permanently when their burst window opens.
  constexpr std::size_t kRequests = 1000;
  std::size_t clock = 0;
  auto component = [&clock](std::string name, std::size_t dies_at) {
    auto fn = [&clock, dies_at](const int& x) -> core::Result<int> {
      if (clock >= dies_at) {
        return core::failure(core::FailureKind::crash, "burst");
      }
      return golden(x);
    };
    return SC::checked(core::make_variant<int, int>(std::move(name), fn),
                       [](const int& x, const int& out) {
                         return out == golden(x);
                       });
  };

  SC sc{{component("acting", 200), component("spare-1", 500),
         component("spare-2", 800)}};

  util::Table table{
      "E3. Self-checking programming: staged fault bursts at t=200/500/800 "
      "(3 self-checking components, no rollback machinery)"};
  table.header({"window", "served", "failed", "in service", "acting",
                "rollbacks"});
  std::size_t served = 0, failed = 0;
  std::size_t window_start = 0;
  for (clock = 0; clock < kRequests; ++clock) {
    auto out = sc.run(static_cast<int>(clock));
    if (out.has_value() && out.value() == golden(static_cast<int>(clock))) {
      ++served;
    } else {
      ++failed;
    }
    if ((clock + 1) % 200 == 0) {
      table.row({std::to_string(window_start) + ".." + std::to_string(clock),
                 util::Table::count(served), util::Table::count(failed),
                 util::Table::count(sc.in_service()),
                 "component " + std::to_string(sc.acting()),
                 util::Table::count(sc.metrics().rollbacks)});
      window_start = clock + 1;
      served = failed = 0;
    }
  }
  table.print(std::cout);
  std::cout << "Shape check: each burst kills the acting component and the\n"
               "hot spare takes over within the same request (zero failed\n"
               "requests at t=200 and t=500); rollbacks stay 0 throughout —\n"
               "the defining contrast with recovery blocks. After t=800 the\n"
               "redundancy is fully consumed and the system is down.\n";
  if (telemetry) core::linger_from_env();
  return 0;
}
