// Regenerates Table 2 of the paper — "A taxonomy of redundancy for fault
// tolerance and self-managed systems" — from the TaxonomyEntry each
// implemented technique declares. The taxonomy test diffs this same data
// against the published table; this binary renders it.
#include <iostream>

#include "core/registry.hpp"
#include "util/table.hpp"

int main() {
  using namespace redundancy;
  core::register_all_techniques();
  util::Table table{
      "Table 2. A taxonomy of redundancy for fault tolerance and "
      "self-managed systems (generated from the implementations)"};
  table.header({"Technique", "Intention", "Type", "Adjudicator", "Faults",
                "Pattern (Fig. 1 / Sec. 2)"});
  for (const auto& entry : core::TechniqueRegistry::instance().entries()) {
    table.row({entry.name, std::string{core::to_string(entry.intention)},
               std::string{core::to_string(entry.type)},
               core::paper_cell(entry.adjudicator),
               core::paper_cell(entry.faults),
               std::string{core::to_string(entry.pattern)}});
  }
  table.print(std::cout);

  util::Table summaries{"Technique summaries (Section 3)"};
  summaries.header({"Technique", "Mechanism"});
  for (const auto& entry : core::TechniqueRegistry::instance().entries()) {
    summaries.row({entry.name, entry.summary});
  }
  summaries.print(std::cout);
  return 0;
}
