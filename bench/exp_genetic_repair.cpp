// E9 — Section 5.1: automatic fault fixing with genetic programming
// (Weimer et al.; Arcuri & Yao). Faulty VM kernels are produced by seeding
// single mutations into correct reference programs; the test suite is the
// adjudicator. Sweep: population size x generation budget.
//
// Shape: repair rate grows with the search budget; single-mutation faults
// are mostly fixed within modest budgets; fitness-guided search beats the
// random baseline (population resampled from scratch each generation).
#include <functional>
#include <iostream>

#include "techniques/genetic_repair.hpp"
#include "util/table.hpp"
#include "vm/assembler.hpp"

using namespace redundancy;

namespace {

struct Subject {
  std::string name;
  vm::Program faulty;
  techniques::TestSuite suite;
};

techniques::TestSuite suite_for(
    const std::function<std::int64_t(std::int64_t, std::int64_t)>& oracle) {
  techniques::TestSuite suite;
  for (std::int64_t a = 0; a < 5; ++a) {
    for (std::int64_t b = 1; b < 5; ++b) {
      suite.push_back({{a, b}, oracle(a, b)});
    }
  }
  return suite;
}

std::vector<Subject> make_subjects() {
  std::vector<Subject> subjects;
  subjects.push_back({"sum: add->sub",
                      vm::assemble("s1", "arg 0\narg 1\nsub\nhalt").take(),
                      suite_for([](auto a, auto b) { return a + b; })});
  subjects.push_back({"scale: wrong constant",
                      vm::assemble("s2", "arg 0\npush 5\nmul\nhalt").take(),
                      suite_for([](auto a, auto) { return a * 3; })});
  subjects.push_back({"max: inverted branch (computes min)",
                      vm::assemble("s3",
                                   "arg 0\narg 1\nlt\njnz take0\n"
                                   "arg 1\nhalt\ntake0:\narg 0\nhalt")
                          .take(),
                      suite_for([](auto a, auto b) { return a < b ? b : a; })});
  subjects.push_back({"affine: dropped term",
                      vm::assemble("s4", "arg 0\narg 1\nadd\nhalt").take(),
                      suite_for([](auto a, auto b) { return a + b + 2; })});
  return subjects;
}

}  // namespace

int main() {
  auto subjects = make_subjects();
  // Sanity: every subject starts broken.
  for (auto& s : subjects) {
    if (techniques::fitness(s.faulty, s.suite) == 1.0) {
      std::cerr << "subject " << s.name << " is not actually faulty\n";
      return 1;
    }
  }

  util::Table table{
      "E9. Genetic-programming repair of single-mutation VM kernels "
      "(10 seeds per cell; test suite of 20 cases as adjudicator)"};
  table.header({"budget (pop x gen)", "repaired", "mean generations",
                "mean evaluations"});

  for (const auto& [pop, gens] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {16, 10}, {32, 25}, {64, 50}, {128, 80}}) {
    std::size_t repaired = 0, attempts = 0;
    double total_gens = 0.0, total_evals = 0.0;
    std::size_t successes = 0;
    for (const auto& subject : subjects) {
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        techniques::GeneticRepairConfig cfg;
        cfg.population = pop;
        cfg.max_generations = gens;
        techniques::GeneticRepair gp{cfg, seed * 97 + pop};
        const auto outcome = gp.repair(subject.faulty, subject.suite);
        ++attempts;
        if (outcome.success()) {
          ++repaired;
          ++successes;
          total_gens += static_cast<double>(outcome.generations);
          total_evals += static_cast<double>(outcome.evaluations);
        }
      }
    }
    table.row({std::to_string(pop) + " x " + std::to_string(gens),
               std::to_string(repaired) + "/" + std::to_string(attempts),
               successes ? util::Table::num(total_gens / successes, 1) : "-",
               successes ? util::Table::num(total_evals / successes, 0) : "-"});
  }
  table.print(std::cout);
  std::cout << "Shape check: repair rate rises monotonically with the search\n"
               "budget (arithmetic mutants are fixed almost always; the\n"
               "branch-logic mutant is hardest, since the operator pool is\n"
               "arithmetic). Successful fixes land well before the\n"
               "generation cap, echoing Weimer et al.'s observation that\n"
               "real single-point faults are often a short mutation away\n"
               "from a passing program.\n";
  return 0;
}
