// Observability overhead budget check: the obs:: recorder must cost < 5%
// on the tier-1 pattern workload (3-variant parallel evaluation, ~1 µs
// variant bodies — the same shape bench_patterns measures).
//
// Three configurations of the SAME binary are timed:
//   off      — obs disabled. The only residual instrumentation cost is one
//              relaxed atomic load per site, i.e. what -DREDUNDANCY_OBS_NOOP
//              compiles away entirely; this is the no-op baseline.
//   sampled  — production config: recorder on, NullSink attached, root spans
//              sampled 1-in-64. Counters/histograms stay exact and always-on.
//   traced   — worst case: every request fully traced (sample_every=1).
//
// The budget applies to the production (sampled) config. Timings are
// best-of-R to shed scheduler noise. Also emits the artifact pair the
// tooling collects: metrics_observability.prom and observability.trace.jsonl.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/parallel_evaluation.hpp"
#include "core/voters.hpp"
#include "obs/http_exporter.hpp"
#include "obs/obs.hpp"

using namespace redundancy;

namespace {

constexpr std::size_t kRequests = 10'000;
constexpr std::size_t kWarmup = 1'000;
constexpr int kRounds = 7;
constexpr double kBudgetPct = 5.0;

/// ~1 µs of real work, like a small parser or checksum variant.
int busy_variant(const int& x) {
  const std::uint64_t t0 = obs::now_ns();
  int acc = x;
  while (obs::now_ns() - t0 < 1'000) {
    acc = acc * 1664525 + 1013904223;
  }
  return acc >= 0 ? x + 1 : x + 1;  // deterministic output, consumes acc
}

core::ParallelEvaluation<int, int> make_engine() {
  std::vector<core::Variant<int, int>> variants;
  for (int i = 0; i < 3; ++i) {
    variants.push_back(core::make_variant<int, int>(
        "v" + std::to_string(i), busy_variant, 1.0));
  }
  return core::ParallelEvaluation<int, int>(std::move(variants),
                                            core::majority_voter<int>());
}

/// Mean ns/request over kRequests, best of kRounds.
double measure() {
  double best = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    auto engine = make_engine();
    for (std::size_t i = 0; i < kWarmup; ++i) {
      (void)engine.run(static_cast<int>(i));
    }
    const std::uint64_t t0 = obs::now_ns();
    for (std::size_t i = 0; i < kRequests; ++i) {
      (void)engine.run(static_cast<int>(i));
    }
    const double mean =
        double(obs::now_ns() - t0) / double(kRequests);
    if (round == 0 || mean < best) best = mean;
  }
  return best;
}

double overhead_pct(double base, double mode) {
  return base > 0.0 ? (mode - base) / base * 100.0 : 0.0;
}

}  // namespace

int main() {
  auto& rec = obs::Recorder::instance();

  // off: disabled recorder, no sinks — the compiled-to-no-ops baseline.
  rec.set_enabled(false);
  rec.clear_sinks();
  const double off_ns = measure();

  // sampled: production config (NullSink, 1-in-64 root spans) with the HTTP
  // exporter thread running but idle — the deployment shape. An unscraped
  // exporter polls its listen socket a few times a second and must not eat
  // into the budget.
  obs::HttpExporter exporter;
  if (!exporter.start({})) {
    std::printf("warning: could not start idle http exporter\n");
  }
  auto null_sink = std::make_shared<obs::NullSink>();
  rec.add_sink(null_sink);
  rec.set_sample_every(64);
  rec.set_enabled(true);
  const double sampled_ns = measure();

  // traced: every request traced.
  rec.set_sample_every(1);
  const double traced_ns = measure();
  rec.flush();
  exporter.stop();

  const double sampled_pct = overhead_pct(off_ns, sampled_ns);
  const double traced_pct = overhead_pct(off_ns, traced_ns);
  const bool pass = sampled_pct < kBudgetPct;

  std::printf("E-obs. Recorder overhead on the tier-1 pattern workload\n");
  std::printf("(3-variant parallel evaluation, ~1us bodies, %zu requests, "
              "best of %d)\n\n", kRequests, kRounds);
  std::printf("  %-28s %10.1f ns/request\n", "off (no-op baseline)", off_ns);
  std::printf("  %-28s %10.1f ns/request  %+6.2f%%\n",
              "sampled 1/64 + idle exporter", sampled_ns, sampled_pct);
  std::printf("  %-28s %10.1f ns/request  %+6.2f%%\n",
              "traced 1/1 (worst case)", traced_ns, traced_pct);
  std::printf("\nbudget: sampled overhead < %.1f%% -> %s\n", kBudgetPct,
              pass ? "PASS" : "FAIL");

  // Artifact pair for scripts/bench.sh: exact metrics of the runs above,
  // plus a small fully-traced sample of the same workload.
  rec.clear_sinks();
  rec.add_sink(std::make_shared<obs::JsonlTraceSink>(
      std::string{"observability.trace.jsonl"}));
  rec.set_sample_every(1);
  {
    auto engine = make_engine();
    for (int i = 0; i < 8; ++i) (void)engine.run(i);
  }
  rec.flush();
  rec.set_enabled(false);
  rec.clear_sinks();
  if (obs::MetricsRegistry::instance().write_prometheus_file(
          "metrics_observability.prom")) {
    std::printf("wrote metrics_observability.prom and "
                "observability.trace.jsonl\n");
  }
  return pass ? 0 : 1;
}
