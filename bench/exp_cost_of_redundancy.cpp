// E14 — Section 4.1 "Costs and efficacy of code redundancy": the paper's
// qualitative cost comparison made quantitative. All code-redundancy
// deployments run over the same 3-version pool at the same fault rate;
// reported: reliability, execution cost (cost units per request, where one
// version execution = 1), adjudicator evaluations, and how the technique's
// redundancy is consumed.
#include <iostream>
#include <memory>

#include "campaign_runner.hpp"
#include "faults/campaign.hpp"
#include "faults/fault.hpp"
#include "techniques/nvp.hpp"
#include "techniques/recovery_blocks.hpp"
#include "techniques/self_checking.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

int golden(const int& x) { return 5 * x - 2; }

std::vector<core::Variant<int, int>> versions(std::size_t n) {
  std::vector<core::Variant<int, int>> out;
  for (std::size_t i = 0; i < n; ++i) {
    faults::FaultInjector<int, int> v{"v" + std::to_string(i), golden};
    v.add(faults::bohrbug<int, int>(
        "b", 0.08, 70 + i, core::FailureKind::wrong_output,
        faults::skewed<int, int>(static_cast<int>(i) + 1)));
    out.push_back(v.as_variant());
  }
  return out;
}

core::AcceptanceTest<int, int> oracle() {
  return [](const int& x, const int& out) { return out == golden(x); };
}

}  // namespace

int main() {
  constexpr std::size_t kRequests = 30'000;
  auto workload = [](std::size_t i, util::Rng&) { return static_cast<int>(i); };

  util::Table table{
      "E14. Cost of code redundancy at equal deployment (3 versions, 8% "
      "per-version faults, 30k requests)"};
  table.header({"technique", "reliability", "cost/req", "adjudications/req",
                "adjudicator design cost", "redundancy consumed"});

  {
    using Nvp = techniques::NVersionProgramming<int, int>;
    auto cell = bench::run_sharded<int, int>(
        "nvp", kRequests, workload,
        [] { return std::make_shared<Nvp>(versions(3)); },
        [](Nvp& nvp, const int& x) { return nvp.run(x); }, golden);
    table.row({"N-version programming",
               util::Table::pct(cell.report.reliability_value(), 2),
               util::Table::num(cell.metrics.cost_per_request(), 2),
               util::Table::num(double(cell.metrics.adjudications) /
                                    double(cell.metrics.requests),
                                2),
               "none (generic vote)", "none"});
  }
  {
    using Rb = techniques::RecoveryBlocks<int, int>;
    auto cell = bench::run_sharded<int, int>(
        "rb", kRequests, workload,
        [] { return std::make_shared<Rb>(versions(3), oracle()); },
        [](Rb& rb, const int& x) { return rb.run(x); }, golden);
    table.row({"Recovery blocks",
               util::Table::pct(cell.report.reliability_value(), 2),
               util::Table::num(cell.metrics.cost_per_request(), 2),
               util::Table::num(double(cell.metrics.adjudications) /
                                    double(cell.metrics.requests),
                                2),
               "high (acceptance test)", "none (retried per request)"});
  }
  {
    using SC = techniques::SelfCheckingProgramming<int, int>;
    // Failed components are discarded for good; operations redeploys the
    // pool whenever it is down to its last component — the paper's point
    // that execution *consumes* explicit redundancy, made operational.
    // Each shard runs its own pool, so consumption happens per shard.
    auto cell = bench::run_sharded<int, int>(
        "sc", kRequests, workload,
        [] {
          auto pool = versions(3);
          std::vector<SC::Component> comps;
          for (auto& v : pool) {
            comps.push_back(SC::checked(std::move(v), oracle()));
          }
          return std::make_shared<SC>(std::move(comps));
        },
        [](SC& sc, const int& x) {
          if (sc.in_service() <= 1) sc.redeploy_all();
          return sc.run(x);
        },
        golden);
    table.row({"Self-checking programming",
               util::Table::pct(cell.report.reliability_value(), 2),
               util::Table::num(cell.metrics.cost_per_request(), 2),
               util::Table::num(double(cell.metrics.adjudications) /
                                    double(cell.metrics.requests),
                                2),
               "flexible (per component)",
               std::to_string(cell.metrics.disabled_components) +
                   " components"});
  }
  table.print(std::cout);
  std::cout
      << "Shape check (paper, Sec. 4.1): NVP pays the highest execution\n"
         "cost but needs only the generic, inexpensive implicit vote;\n"
         "recovery blocks cut execution cost to ~1.x at the price of an\n"
         "application-specific adjudicator; self-checking sits between,\n"
         "with its redundancy visibly consumed (disabled components) as\n"
         "execution proceeds.\n";
  return 0;
}
