// E12 — Section 5.2: micro-reboot vs full reboot (Candea et al.). A
// JAGR-style component tree serves requests; transient faults strike
// components at random; recovery is either a full application reboot or a
// micro-reboot of the failed subtree. With and without an externalized
// session store.
//
// Shape: micro-reboot cuts recovery downtime by roughly the ratio of
// subtree cost to whole-application cost, and the session store — not the
// reboot granularity alone — is what saves user sessions.
#include <iostream>

#include "techniques/microreboot.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

techniques::MicrorebootContainer make_app() {
  techniques::MicrorebootContainer app;
  (void)app.add_component("os", 150.0);
  (void)app.add_component("jvm", 80.0, "os");
  (void)app.add_component("appserver", 60.0, "jvm");
  (void)app.add_component("db", 90.0, "os");
  (void)app.add_component("catalog", 6.0, "appserver");
  (void)app.add_component("cart", 4.0, "appserver");
  (void)app.add_component("checkout", 8.0, "appserver");
  (void)app.add_component("search", 5.0, "appserver");
  return app;
}

const std::vector<std::string> kLeaves{"catalog", "cart", "checkout",
                                       "search"};

struct Outcome {
  double downtime = 0.0;
  std::size_t sessions_lost = 0;
  std::size_t failures = 0;
};

Outcome drive(bool micro, bool externalized_sessions, std::uint64_t seed) {
  auto app = make_app();
  util::Rng rng{seed};
  Outcome outcome;
  for (std::size_t t = 0; t < 2000; ++t) {
    const auto& target = kLeaves[rng.index(kLeaves.size())];
    (void)app.open_session(target, externalized_sessions);
    // Transient (Heisenbug) fault: 1% of requests crash their component.
    if (rng.chance(0.01)) {
      (void)app.fail(target);
    }
    if (!app.serve(target).has_value()) {
      ++outcome.failures;
      if (micro) {
        auto report = app.microreboot(target);
        outcome.downtime += report.value().downtime;
        outcome.sessions_lost += report.value().sessions_lost;
      } else {
        auto report = app.full_reboot();
        outcome.downtime += report.downtime;
        outcome.sessions_lost += report.sessions_lost;
      }
    }
  }
  return outcome;
}

}  // namespace

int main() {
  util::Table table{
      "E12. Micro-reboot vs full reboot: 2000 requests, 1% transient "
      "component faults, 8-component JAGR-style tree (mean of 10 seeds)"};
  table.header({"recovery", "sessions", "failures", "total downtime",
                "sessions lost"});

  for (const bool micro : {false, true}) {
    for (const bool external : {false, true}) {
      double downtime = 0.0;
      double lost = 0.0;
      double failures = 0.0;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto o = drive(micro, external, seed);
        downtime += o.downtime;
        lost += static_cast<double>(o.sessions_lost);
        failures += static_cast<double>(o.failures);
      }
      table.row({micro ? "micro-reboot (subtree)" : "full reboot",
                 external ? "externalized (session store)" : "in-component",
                 util::Table::num(failures / 10.0, 1),
                 util::Table::num(downtime / 10.0, 0),
                 util::Table::num(lost / 10.0, 1)});
    }
  }
  table.print(std::cout);

  util::Table costs{"E12b. Per-component recovery cost in the tree"};
  costs.header({"failed component", "micro-reboot downtime",
                "full reboot downtime"});
  for (const auto& leaf : kLeaves) {
    auto app = make_app();
    (void)app.fail(leaf);
    const auto micro = app.microreboot(leaf);
    auto app2 = make_app();
    costs.row({leaf, util::Table::num(micro.value().downtime, 0),
               util::Table::num(app2.full_reboot().downtime, 0)});
  }
  costs.print(std::cout);
  std::cout << "Shape check: micro-reboot downtime is the leaf's init cost\n"
               "(4-8 units) vs ~400 for the whole stack — a ~50-100x cut,\n"
               "matching Candea's motivation. Session loss depends on the\n"
               "session store, not the granularity: full reboots with\n"
               "in-component sessions destroy nearly everything.\n";
  return 0;
}
