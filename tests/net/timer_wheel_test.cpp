// TimerWheel unit tests: O(1) arm/cancel bookkeeping, deadline-exact
// firing, re-arm/destroy from inside the fire callback, and the wrap-around
// lap behaviour (a far-future timer sharing a slot with a due one).
#include "net/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace redundancy::net {
namespace {

TEST(TimerWheel, FiresAtDeadlineNotBefore) {
  TimerWheel wheel{16, 10};
  TimerWheel::Timer t;
  wheel.arm(t, /*now=*/1000, /*delay=*/50);
  EXPECT_TRUE(t.armed());
  EXPECT_EQ(wheel.armed(), 1u);

  int fired = 0;
  wheel.advance(1040, [&](TimerWheel::Timer&) { ++fired; });
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(t.armed());
  wheel.advance(1050, [&](TimerWheel::Timer&) { ++fired; });
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel{16, 10};
  TimerWheel::Timer t;
  wheel.arm(t, 0, 20);
  wheel.cancel(t);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(wheel.armed(), 0u);
  int fired = 0;
  wheel.advance(100, [&](TimerWheel::Timer&) { ++fired; });
  EXPECT_EQ(fired, 0);
}

TEST(TimerWheel, DestructorDetachesAndKeepsCountExact) {
  TimerWheel wheel{16, 10};
  {
    TimerWheel::Timer t;
    wheel.arm(t, 0, 1000);
    EXPECT_EQ(wheel.armed(), 1u);
  }  // destroyed while armed
  EXPECT_EQ(wheel.armed(), 0u);
  // With nothing armed, the loop timeout falls back to the idle tick.
  EXPECT_EQ(wheel.next_timeout_ms(0, 100), 100);
}

TEST(TimerWheel, RearmFromFireCallback) {
  TimerWheel wheel{16, 10};
  TimerWheel::Timer t;
  wheel.arm(t, 0, 10);
  int fired = 0;
  wheel.advance(10, [&](TimerWheel::Timer& timer) {
    if (++fired == 1) wheel.arm(timer, 10, 10);  // refresh pattern
  });
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(t.armed());
  wheel.advance(20, [&](TimerWheel::Timer&) { ++fired; });
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(t.armed());
}

TEST(TimerWheel, DestroyOwnerFromFireCallback) {
  TimerWheel wheel{16, 10};
  auto t = std::make_unique<TimerWheel::Timer>();
  wheel.arm(*t, 0, 10);
  wheel.advance(10, [&](TimerWheel::Timer& timer) {
    ASSERT_EQ(&timer, t.get());
    t.reset();  // the connection-teardown pattern: timer dies inside fn
  });
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, FarFutureTimerSurvivesLaps) {
  // 16 slots × 10ms tick = one lap per 160ms; a 500ms timer shares slots
  // with near deadlines and must survive several laps untouched.
  TimerWheel wheel{16, 10};
  TimerWheel::Timer near_t, far_t;
  wheel.arm(near_t, 0, 20);
  wheel.arm(far_t, 0, 500);
  std::vector<const TimerWheel::Timer*> fired;
  for (std::uint64_t now = 10; now <= 490; now += 10) {
    wheel.advance(now, [&](TimerWheel::Timer& t) { fired.push_back(&t); });
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], &near_t);
  EXPECT_TRUE(far_t.armed());
  wheel.advance(500, [&](TimerWheel::Timer& t) { fired.push_back(&t); });
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], &far_t);
}

TEST(TimerWheel, RotationBoundaryDeadlineWaitsFullLap) {
  // delay == slots × tick puts the deadline in the SAME slot the cursor is
  // currently on. The hashed wheel must see the future deadline during the
  // immediate sweeps and leave the timer in place for exactly one full lap.
  TimerWheel wheel{16, 10};
  TimerWheel::Timer t;
  wheel.arm(t, /*now=*/1000, /*delay=*/160);  // span of the wheel, exactly
  int fired = 0;
  for (std::uint64_t now = 1010; now < 1160; now += 10) {
    wheel.advance(now, [&](TimerWheel::Timer&) { ++fired; });
    ASSERT_EQ(fired, 0) << "fired a lap early at now=" << now;
    ASSERT_TRUE(t.armed());
  }
  wheel.advance(1160, [&](TimerWheel::Timer&) { ++fired; });
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, DoubleLapDeadlineSurvivesTwoRotations) {
  // A deadline more than two whole rotations out (2×span + one tick): the
  // cursor passes the slot twice with the timer resident before the lap
  // on which it is due. Tick-by-tick so every slot sweep inspects it.
  TimerWheel wheel{16, 10};
  TimerWheel::Timer t;
  const std::uint64_t delay = 2 * 160 + 10;
  wheel.arm(t, /*now=*/0, delay);
  int fired = 0;
  for (std::uint64_t now = 10; now < delay; now += 10) {
    wheel.advance(now, [&](TimerWheel::Timer&) { ++fired; });
    ASSERT_EQ(fired, 0) << "fired early at now=" << now;
    ASSERT_TRUE(t.armed());
  }
  wheel.advance(delay, [&](TimerWheel::Timer&) { ++fired; });
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, BigClockJumpSweepsWholeWheelOnce) {
  TimerWheel wheel{16, 10};
  TimerWheel::Timer a, b;
  wheel.arm(a, 0, 30);
  wheel.arm(b, 0, 70);
  int fired = 0;
  // A jump far beyond the wheel span (e.g. the loop slept in epoll_wait)
  // must still fire everything exactly once.
  wheel.advance(1'000'000, [&](TimerWheel::Timer&) { ++fired; });
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, NextTimeoutHintIsConservative) {
  TimerWheel wheel{64, 10};
  TimerWheel::Timer t;
  wheel.arm(t, 1000, 40);
  // Hint must never exceed the true deadline delta (it may be smaller).
  EXPECT_LE(wheel.next_timeout_ms(1000, 100), 40);
  EXPECT_GT(wheel.next_timeout_ms(1000, 100), 0);
  // Past-due deadline: poll timeout zero, not negative.
  EXPECT_EQ(wheel.next_timeout_ms(2000, 100), 0);
}

}  // namespace
}  // namespace redundancy::net
