// net::http parser/serializer unit tests: the framing contract both the
// obs::HttpExporter and the net::Gateway rely on, exercised as pure
// functions over byte buffers — including the split-across-reads
// incrementality the gateway's partial-read state machine depends on.
#include "net/http.hpp"

#include <gtest/gtest.h>

#include <string>

namespace redundancy::net::http {
namespace {

TEST(HttpParse, SimpleGet) {
  const std::string raw = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  const ParseResult r = parse_request(raw);
  ASSERT_EQ(r.status, ParseStatus::ok);
  EXPECT_EQ(r.request.method, "GET");
  EXPECT_EQ(r.request.target, "/metrics");
  EXPECT_EQ(r.request.path, "/metrics");
  EXPECT_EQ(r.request.query, "");
  EXPECT_EQ(r.request.content_length, 0u);
  EXPECT_TRUE(r.request.keep_alive);
  EXPECT_EQ(r.consumed, raw.size());
}

TEST(HttpParse, QuerySplitAndParams) {
  const ParseResult r =
      parse_request("GET /traces?n=32&x=7 HTTP/1.1\r\n\r\n");
  ASSERT_EQ(r.status, ParseStatus::ok);
  EXPECT_EQ(r.request.path, "/traces");
  EXPECT_EQ(r.request.query, "n=32&x=7");
  EXPECT_EQ(query_param(r.request.query, "n"), 32u);
  EXPECT_EQ(query_param(r.request.query, "x"), 7u);
  EXPECT_EQ(query_param(r.request.query, "y"), std::nullopt);
  EXPECT_EQ(query_param("n=", "n"), std::nullopt);
  EXPECT_EQ(query_param("n=abc", "n"), std::nullopt);
  EXPECT_EQ(query_param("nn=5", "n"), std::nullopt);
  EXPECT_EQ(query_param("a=1&n=99999999999999999999999", "n"), std::nullopt);
}

TEST(HttpParse, IncrementalAcrossArbitrarySplits) {
  const std::string raw =
      "POST /echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  // Every prefix short of the full request must be incomplete; the full
  // buffer must parse identically no matter how it arrived.
  for (std::size_t cut = 0; cut < raw.size(); ++cut) {
    const ParseResult partial = parse_request(raw.substr(0, cut));
    EXPECT_EQ(partial.status, ParseStatus::incomplete) << "cut=" << cut;
  }
  const ParseResult r = parse_request(raw);
  ASSERT_EQ(r.status, ParseStatus::ok);
  EXPECT_EQ(r.request.method, "POST");
  EXPECT_EQ(r.request.body, "hello");
  EXPECT_EQ(r.consumed, raw.size());
}

TEST(HttpParse, HeadOnlyDoesNotAwaitBody) {
  const std::string raw =
      "POST /echo HTTP/1.1\r\nContent-Length: 5\r\n\r\n";
  const ParseResult head = parse_head(raw);
  ASSERT_EQ(head.status, ParseStatus::ok);
  EXPECT_EQ(head.request.content_length, 5u);
  EXPECT_EQ(head.request.body, "");
  EXPECT_EQ(head.consumed, raw.size());
  // The full-request parser on the same bytes still waits.
  EXPECT_EQ(parse_request(raw).status, ParseStatus::incomplete);
}

TEST(HttpParse, PipelinedRequestsConsumeOneAtATime) {
  const std::string first = "GET /a HTTP/1.1\r\n\r\n";
  const std::string second = "GET /b HTTP/1.1\r\n\r\n";
  std::string buffer = first + second;
  const ParseResult r1 = parse_request(buffer);
  ASSERT_EQ(r1.status, ParseStatus::ok);
  EXPECT_EQ(r1.request.path, "/a");
  EXPECT_EQ(r1.consumed, first.size());
  buffer.erase(0, r1.consumed);
  const ParseResult r2 = parse_request(buffer);
  ASSERT_EQ(r2.status, ParseStatus::ok);
  EXPECT_EQ(r2.request.path, "/b");
}

TEST(HttpParse, MalformedRequestLineIsBad) {
  EXPECT_EQ(parse_request("GET\r\n\r\n").status, ParseStatus::bad);
  EXPECT_EQ(parse_request("GET /x\r\n\r\n").status, ParseStatus::bad);
  EXPECT_EQ(parse_request(" GET /x HTTP/1.1\r\n\r\n").status,
            ParseStatus::bad);
  EXPECT_EQ(parse_request("GET  HTTP/1.1\r\n\r\n").status, ParseStatus::bad);
}

TEST(HttpParse, MalformedContentLengthIsBad) {
  EXPECT_EQ(
      parse_request("POST /e HTTP/1.1\r\nContent-Length: x\r\n\r\n").status,
      ParseStatus::bad);
  EXPECT_EQ(parse_request(
                "POST /e HTTP/1.1\r\nContent-Length: 184467440737095516160"
                "\r\n\r\n")
                .status,
            ParseStatus::bad);
}

TEST(HttpParse, DuplicateContentLengthIsBad) {
  // Request-smuggling guard: two Content-Length headers mean two parties
  // could frame the message differently — even an identical repeat is
  // rejected instead of picking a winner.
  EXPECT_EQ(parse_request("POST /e HTTP/1.1\r\nContent-Length: 2\r\n"
                          "Content-Length: 2\r\n\r\nok")
                .status,
            ParseStatus::bad);
}

TEST(HttpParse, ConflictingContentLengthIsBad) {
  EXPECT_EQ(parse_request("POST /e HTTP/1.1\r\nContent-Length: 2\r\n"
                          "Content-Length: 4\r\n\r\nokok")
                .status,
            ParseStatus::bad);
}

TEST(HttpParse, SignedContentLengthIsBad) {
  // Signs must fail outright, never silently clamp to zero.
  EXPECT_EQ(
      parse_request("POST /e HTTP/1.1\r\nContent-Length: -1\r\n\r\n").status,
      ParseStatus::bad);
  EXPECT_EQ(
      parse_request("POST /e HTTP/1.1\r\nContent-Length: +0\r\n\r\n").status,
      ParseStatus::bad);
}

TEST(HttpParse, CommaListContentLengthIsBad) {
  // "4, 4" is how a folded duplicate arrives through some proxies.
  EXPECT_EQ(parse_request(
                "POST /e HTTP/1.1\r\nContent-Length: 4, 4\r\n\r\nokok")
                .status,
            ParseStatus::bad);
}

TEST(HttpParse, TransferEncodingIsBad) {
  // Chunked framing is unimplemented; accepting the header while framing
  // by Content-Length is exactly how requests get smuggled.
  EXPECT_EQ(parse_request("POST /e HTTP/1.1\r\n"
                          "Transfer-Encoding: chunked\r\n\r\n"
                          "0\r\n\r\n")
                .status,
            ParseStatus::bad);
  EXPECT_EQ(parse_request("POST /e HTTP/1.1\r\nContent-Length: 2\r\n"
                          "Transfer-Encoding: identity\r\n\r\nok")
                .status,
            ParseStatus::bad);
}

TEST(HttpParse, HeaderNamesAreCaseInsensitive) {
  const std::string raw =
      "POST /e HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\nCONNECTION: Close\r\n\r\nok";
  const ParseResult r = parse_request(raw);
  ASSERT_EQ(r.status, ParseStatus::ok);
  EXPECT_EQ(r.request.body, "ok");
  EXPECT_FALSE(r.request.keep_alive);
}

TEST(HttpParse, ConnectionKeepAliveStaysOn) {
  const ParseResult r = parse_request(
      "GET /x HTTP/1.1\r\nConnection: keep-alive\r\n\r\n");
  ASSERT_EQ(r.status, ParseStatus::ok);
  EXPECT_TRUE(r.request.keep_alive);
}

TEST(HttpParse, OversizedHeadIsTooLarge) {
  std::string raw = "GET /x HTTP/1.1\r\nPad: ";
  raw.append(300, 'a');
  // No terminator and already past the cap: can never fit.
  EXPECT_EQ(parse_request(raw, 128).status, ParseStatus::too_large);
  raw += "\r\n\r\n";
  EXPECT_EQ(parse_request(raw, 128).status, ParseStatus::too_large);
  // Same bytes with room to spare are fine.
  EXPECT_EQ(parse_request(raw, 4096).status, ParseStatus::ok);
}

TEST(HttpParse, OversizedBodyIsTooLarge) {
  const std::string raw =
      "POST /e HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
  EXPECT_EQ(parse_request(raw, 128).status, ParseStatus::too_large);
  // parse_head does not police the declared body size, only the head.
  EXPECT_EQ(parse_head(raw, 128).status, ParseStatus::ok);
}

TEST(HttpParse, UncappedBufferNeverTooLarge) {
  std::string raw = "GET /x HTTP/1.1\r\nPad: ";
  raw.append(100000, 'a');
  EXPECT_EQ(parse_request(raw).status, ParseStatus::incomplete);
}

TEST(HttpResponseHead, SerializesStatusAndFraming) {
  EXPECT_EQ(response_head(200, "text/plain", 5, true),
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
            "Content-Length: 5\r\nConnection: keep-alive\r\n\r\n");
  EXPECT_EQ(response_head(503, "text/plain", 0, false),
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain"
            "\r\nContent-Length: 0\r\nConnection: close\r\n\r\n");
}

TEST(HttpResponseHead, ReasonPhrases) {
  EXPECT_STREQ(reason_phrase(404), "Not Found");
  EXPECT_STREQ(reason_phrase(405), "Method Not Allowed");
  EXPECT_STREQ(reason_phrase(408), "Request Timeout");
  EXPECT_STREQ(reason_phrase(431), "Request Header Fields Too Large");
  EXPECT_STREQ(reason_phrase(500), "Internal Server Error");
  EXPECT_STREQ(reason_phrase(299), "OK");  // unknown codes fall back
}

}  // namespace
}  // namespace redundancy::net::http
