// io_uring backend selection + completion-mode contract tests. The shared
// behaviour (dispatch, timers, pipelining, teardown) is covered by the
// event_loop/conn_manager/gateway suites, which already sweep every
// backend; this file pins down what is SPECIFIC to the uring path: the
// probe, the env knob and automatic-resolution rules, the single-sink
// completion-mode claim, and an end-to-end pipelined serve over an
// explicitly-uring gateway.
#include "net/event_loop.hpp"

#include <cstdlib>

#include <gtest/gtest.h>

#include <string>

#include "net/conn_manager.hpp"
#include "net/gateway.hpp"
#include "net/loopback_client.hpp"

namespace redundancy::net {
namespace {

using loopback::connect_loopback;
using loopback::http_get;
using loopback::read_response;
using loopback::Reply;
using loopback::send_all;

/// Scoped REDUNDANCY_GATEWAY_BACKEND override that restores the previous
/// value (tests must not leak env state into each other).
class ScopedBackendEnv {
 public:
  explicit ScopedBackendEnv(const char* value) {
    const char* prev = std::getenv(kVar);
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (value != nullptr) {
      ::setenv(kVar, value, 1);
    } else {
      ::unsetenv(kVar);
    }
  }
  ~ScopedBackendEnv() {
    if (had_prev_) {
      ::setenv(kVar, prev_.c_str(), 1);
    } else {
      ::unsetenv(kVar);
    }
  }

 private:
  static constexpr const char* kVar = "REDUNDANCY_GATEWAY_BACKEND";
  bool had_prev_ = false;
  std::string prev_;
};

TEST(UringBackend, ProbeIsStableAcrossCalls) {
  const bool first = EventLoop::uring_supported();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(EventLoop::uring_supported(), first);
  }
}

TEST(UringBackend, BackendNamesAreStable) {
  EXPECT_STREQ(EventLoop::backend_name(EventLoop::Backend::uring), "uring");
  EXPECT_STREQ(EventLoop::backend_name(EventLoop::Backend::epoll), "epoll");
  EXPECT_STREQ(EventLoop::backend_name(EventLoop::Backend::poll), "poll");
}

TEST(UringBackend, ExplicitUringFollowsTheProbe) {
  // Asking for uring outright must succeed exactly when the probe says the
  // kernel can do it — never a silent downgrade to epoll.
  EventLoop::Options options;
  options.backend = EventLoop::Backend::uring;
  EventLoop loop{options};
  if (EventLoop::uring_supported()) {
    EXPECT_TRUE(loop.ok());
    EXPECT_EQ(loop.backend(), EventLoop::Backend::uring);
    EXPECT_TRUE(loop.uring_mode());
  } else {
    EXPECT_FALSE(loop.ok());
  }
}

TEST(UringBackend, AutomaticPrefersUringThenEpoll) {
  ScopedBackendEnv env{nullptr};  // make sure no knob interferes
  EventLoop loop;                 // Backend::automatic
  ASSERT_TRUE(loop.ok());
#ifdef __linux__
  const EventLoop::Backend expected = EventLoop::uring_supported()
                                          ? EventLoop::Backend::uring
                                          : EventLoop::Backend::epoll;
  EXPECT_EQ(loop.backend(), expected);
#else
  EXPECT_EQ(loop.backend(), EventLoop::Backend::poll);
#endif
}

TEST(UringBackend, EnvKnobSelectsPollStrictly) {
  ScopedBackendEnv env{"poll"};
  EventLoop loop;  // automatic + knob
  ASSERT_TRUE(loop.ok());
  EXPECT_EQ(loop.backend(), EventLoop::Backend::poll);
  EXPECT_FALSE(loop.uring_mode());
}

#ifdef __linux__
TEST(UringBackend, EnvKnobSelectsEpollStrictly) {
  ScopedBackendEnv env{"epoll"};
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  EXPECT_EQ(loop.backend(), EventLoop::Backend::epoll);
}
#endif

TEST(UringBackend, EnvKnobGarbageIsLoudlyIgnored) {
  // Strict match: no trimming, no case folding, no prefixes. The loop must
  // still come up on the probed default.
  for (const char* bad : {"uring ", "URING", "io_uring", "1", ""}) {
    ScopedBackendEnv env{bad};
    EventLoop loop;
    ASSERT_TRUE(loop.ok()) << "knob '" << bad << "' killed the loop";
    EXPECT_NE(loop.backend(), EventLoop::Backend::automatic);
  }
}

TEST(UringBackend, EnvKnobOnlyAffectsAutomatic) {
  // An explicit Options::backend wins over the env knob — the knob is an
  // operator override for deployments that leave the choice to the probe.
  ScopedBackendEnv env{"poll"};
  EventLoop::Options options;
  options.backend = EventLoop::Backend::epoll;
  EventLoop loop{options};
#ifdef __linux__
  ASSERT_TRUE(loop.ok());
  EXPECT_EQ(loop.backend(), EventLoop::Backend::epoll);
#else
  EXPECT_FALSE(loop.ok());
#endif
}

TEST(UringBackend, SingleSinkContractSecondManagerStaysReadiness) {
  if (!EventLoop::uring_supported()) GTEST_SKIP() << "no io_uring here";
  EventLoop::Options options;
  options.backend = EventLoop::Backend::uring;
  EventLoop loop{options};
  ASSERT_TRUE(loop.ok());
  // First manager on the loop claims the completion sink; a second one must
  // degrade to readiness mode (served through the POLL_ADD emulation), not
  // fight over the buffer group.
  ConnManager first{loop, ConnManager::Options{}};
  ConnManager second{loop, ConnManager::Options{}};
  EXPECT_TRUE(first.completion_mode());
  EXPECT_FALSE(second.completion_mode());
}

TEST(UringBackend, GatewayServesPipelinedEchoOnExplicitUring) {
  if (!EventLoop::uring_supported()) GTEST_SKIP() << "no io_uring here";
  Gateway::Options options;
  options.loop.backend = EventLoop::Backend::uring;
  options.loops = 1;
  options.conn.max_pipeline = 8;
  Gateway gateway{options};
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());
  ASSERT_EQ(gateway.backend(), EventLoop::Backend::uring);

  // A pipelined burst on one keep-alive connection: multishot accept,
  // buffer-select recvs, and a linked sendmsg chain all on the ring.
  const int fd = connect_loopback(gateway.port());
  ASSERT_GE(fd, 0);
  std::string burst;
  for (int i = 0; i < 8; ++i) {
    burst += "GET /echo?x=" + std::to_string(i) + " HTTP/1.1\r\nHost: x\r\n\r\n";
  }
  ASSERT_TRUE(send_all(fd, burst));
  for (int i = 0; i < 8; ++i) {
    const Reply reply = read_response(fd);
    ASSERT_TRUE(reply.complete) << "response " << i << ": " << reply.error;
    EXPECT_EQ(reply.status, 200);
    EXPECT_EQ(reply.body, std::to_string(i) + "\n");  // strict request order
  }
  ::close(fd);

  // Large responses force short writes → chain-drain resubmits.
  const Reply big = http_get(gateway.port(), "/big?n=1000000");
  EXPECT_EQ(big.status, 200);
  EXPECT_EQ(big.body.size(), 1'000'000u);
  gateway.stop();
}

TEST(UringBackend, GatewayHonoursEnvKnobFallbackToPoll) {
  ScopedBackendEnv env{"poll"};
  Gateway::Options options;
  options.loops = 1;
  Gateway gateway{options};
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());
  EXPECT_EQ(gateway.backend(), EventLoop::Backend::poll);
  EXPECT_EQ(http_get(gateway.port(), "/echo?x=3").body, "3\n");
  gateway.stop();
}

}  // namespace
}  // namespace redundancy::net
