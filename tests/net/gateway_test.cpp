// Gateway integration tests: full round trips through the epoll loop, the
// submit_batch dispatch into the pool, the redundancy patterns on the demo
// routes, and the completion-queue hand-back — over real loopback sockets.
#include "net/gateway.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/health.hpp"
#include "net/loopback_client.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"

namespace redundancy::net {
namespace {

using loopback::connect_loopback;
using loopback::http_get;
using loopback::read_response;
using loopback::Reply;
using loopback::send_all;

TEST(Gateway, ServesDemoRoutesThroughTheEngine) {
  Gateway gateway;
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());
  ASSERT_NE(gateway.port(), 0);

  const Reply echo = http_get(gateway.port(), "/echo?x=5");
  EXPECT_EQ(echo.status, 200);
  EXPECT_EQ(echo.body, "5\n");

  // /fast runs the hedged SequentialAlternatives with the result cache;
  // identical inputs must produce identical (deterministic) outputs.
  const Reply fast1 = http_get(gateway.port(), "/fast?x=7");
  const Reply fast2 = http_get(gateway.port(), "/fast?x=7");
  EXPECT_EQ(fast1.status, 200);
  EXPECT_EQ(fast1.body, fast2.body);

  // /vote adjudicates 3 variants under a majority voter.
  const Reply vote = http_get(gateway.port(), "/vote?x=7");
  EXPECT_EQ(vote.status, 200);
  EXPECT_EQ(vote.body, fast1.body);  // same chain() on the same input

  const Reply missing = http_get(gateway.port(), "/nope");
  EXPECT_EQ(missing.status, 404);

  gateway.stop();
  EXPECT_EQ(gateway.jobs_inflight(), 0u);
}

TEST(Gateway, ServesMetricsAndHealthzInProcess) {
  core::HealthTracker health;
  Gateway::Options options;
  options.health = &health;
  Gateway gateway{options};
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());

  // Generate some traffic so the gateway counters are non-zero.
  ASSERT_EQ(http_get(gateway.port(), "/echo?x=1").status, 200);

  const Reply metrics = http_get(gateway.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("gateway_requests"), std::string::npos);
  EXPECT_NE(metrics.body.find("gateway_accepted"), std::string::npos);

  const Reply healthz = http_get(gateway.port(), "/healthz");
  EXPECT_EQ(healthz.status, 200);  // nothing failing
  gateway.stop();
}

TEST(Gateway, SloEndpointServesWindowedNdjson) {
  obs::SloTracker slo;  // no rotation thread: live partial windows suffice
  slo.register_class("/echo", {/*latency_slo_ns=*/50'000'000, 0.99});
  Gateway::Options options;
  options.slo = &slo;
  Gateway gateway{options};
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());

  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(http_get(gateway.port(), "/echo?x=" + std::to_string(i)).status,
              200);
  }

  const Reply reply = http_get(gateway.port(), "/slo");
  EXPECT_EQ(reply.status, 200);
  // One slo_window row per window plus the slo_class summary, all for the
  // route path the gateway fed to observe().
  EXPECT_NE(reply.body.find("\"type\":\"slo_window\""), std::string::npos);
  EXPECT_NE(reply.body.find("\"type\":\"slo_class\""), std::string::npos);
  EXPECT_NE(reply.body.find("\"class\":\"/echo\""), std::string::npos);
  EXPECT_NE(reply.body.find("\"total\":5"), std::string::npos);
  EXPECT_NE(reply.body.find("\"window\":\"1m\""), std::string::npos);
  gateway.stop();
}

TEST(Gateway, SloRouteAbsentWhenNoTrackerAttached) {
  Gateway gateway;
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());
  EXPECT_EQ(http_get(gateway.port(), "/slo").status, 404);
  gateway.stop();
}

TEST(Gateway, DebugFlightServesTheBlackBoxWhenEnabled) {
  Gateway gateway;
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());

  if (!obs::kCompiledIn) {
    // NOOP build: the recorder can never be enabled; the route must say so.
    EXPECT_EQ(http_get(gateway.port(), "/debug/flight").status, 404);
    gateway.stop();
    return;
  }

  obs::FlightRecorder::instance().disable();
  EXPECT_EQ(http_get(gateway.port(), "/debug/flight").status, 404);

  obs::FlightRecorder::instance().enable();
  // Traffic while enabled leaves gateway breadcrumbs in the ring.
  ASSERT_EQ(http_get(gateway.port(), "/echo?x=9").status, 200);
  const Reply reply = http_get(gateway.port(), "/debug/flight");
  EXPECT_EQ(reply.status, 200);
  EXPECT_NE(reply.body.find("\"type\":\"flight_header\""), std::string::npos);
  EXPECT_NE(reply.body.find("\"kind\":\"gateway\""), std::string::npos);
  EXPECT_NE(reply.body.find("\"name\":\"/echo\""), std::string::npos);
  obs::FlightRecorder::instance().disable();
  gateway.stop();
}

TEST(Gateway, PostBodyRoundTrip) {
  Gateway gateway;
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());
  const int fd = connect_loopback(gateway.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(
      fd, "POST /echo HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world"));
  Reply reply = read_response(fd);
  ASSERT_TRUE(reply.complete);
  EXPECT_EQ(reply.body, "hello world");
  ::close(fd);
  gateway.stop();
}

TEST(Gateway, CustomRouteErrorsBecome500NotCrashes) {
  Gateway gateway;
  gateway.add_route("/throw", [](const Gateway::Request&) -> http::Response {
    throw std::runtime_error{"handler bug"};
  });
  ASSERT_TRUE(gateway.start());
  const Reply reply = http_get(gateway.port(), "/throw");
  EXPECT_EQ(reply.status, 500);
  gateway.stop();
}

TEST(Gateway, ManyConcurrentClientsAllGetCorrectAnswers) {
  Gateway gateway;
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 25;
  std::atomic<int> correct{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_loopback(gateway.port());
      if (fd < 0) return;
      for (int i = 0; i < kRequestsEach; ++i) {
        const int x = c * 1000 + i;
        if (!send_all(fd, "GET /echo?x=" + std::to_string(x) +
                              " HTTP/1.1\r\n\r\n")) {
          break;
        }
        const Reply reply = read_response(fd);
        if (reply.complete && reply.status == 200 &&
            reply.body == std::to_string(x) + "\n") {
          correct.fetch_add(1);
        }
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(correct.load(), kClients * kRequestsEach);
  gateway.stop();
  EXPECT_EQ(gateway.jobs_inflight(), 0u);
}

TEST(Gateway, StopWithRequestsInFlightSettlesCleanly) {
  Gateway gateway;
  gateway.add_route("/slow", [](const Gateway::Request&) -> http::Response {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return {200, "text/plain; charset=utf-8", "late\n"};
  });
  ASSERT_TRUE(gateway.start());
  const int fd = connect_loopback(gateway.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, "GET /slow HTTP/1.1\r\n\r\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gateway.stop();  // the /slow job is still on a worker
  EXPECT_EQ(gateway.jobs_inflight(), 0u);
  ::close(fd);
}

TEST(Gateway, RestartAfterStop) {
  Gateway gateway;
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());
  EXPECT_EQ(http_get(gateway.port(), "/echo?x=1").status, 200);
  gateway.stop();
  ASSERT_TRUE(gateway.start());
  EXPECT_EQ(http_get(gateway.port(), "/echo?x=2").status, 200);
  gateway.stop();
}

}  // namespace
}  // namespace redundancy::net
