// EventLoop tests run against EVERY backend the host supports (io_uring
// where the kernel allows it, epoll, and the poll fallback) wherever the
// behaviour must be identical: readiness dispatch, cross-thread wake, timer
// delivery, the cycle hook, and the remove-during-dispatch guarantee the
// fd-indexed table provides. On the uring backend these exercise the
// one-shot POLL_ADD readiness emulation, not the completion-mode path
// (conn_manager_test covers that end to end).
#include "net/event_loop.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

namespace redundancy::net {
namespace {

std::vector<EventLoop::Backend> backends_under_test() {
#ifdef __linux__
  std::vector<EventLoop::Backend> backends{EventLoop::Backend::epoll,
                                           EventLoop::Backend::poll};
  if (EventLoop::uring_supported()) {
    backends.push_back(EventLoop::Backend::uring);
  }
  return backends;
#else
  return {EventLoop::Backend::poll};
#endif
}

struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
  Pipe() {
    int fds[2] = {-1, -1};
    if (::pipe(fds) == 0) {
      read_fd = fds[0];
      write_fd = fds[1];
    }
  }
  ~Pipe() {
    if (read_fd >= 0) ::close(read_fd);
    if (write_fd >= 0) ::close(write_fd);
  }
  void poke() const { (void)::write(write_fd, "x", 1); }
  void drain() const {
    char buf[64];
    (void)::read(read_fd, buf, sizeof buf);
  }
};

struct CountingHandler final : IoHandler {
  std::function<void(std::uint32_t)> fn;
  int calls = 0;
  void on_io(std::uint32_t events) override {
    ++calls;
    if (fn) fn(events);
  }
};

TEST(EventLoop, DispatchesReadableFdOnBothBackends) {
  for (const EventLoop::Backend backend : backends_under_test()) {
    EventLoop::Options options;
    options.backend = backend;
    EventLoop loop{options};
    ASSERT_TRUE(loop.ok());

    Pipe pipe;
    CountingHandler handler;
    handler.fn = [&](std::uint32_t events) {
      EXPECT_TRUE(events & kReadable);
      pipe.drain();
      loop.stop();
    };
    ASSERT_TRUE(loop.add(pipe.read_fd, kReadable, &handler));
    pipe.poke();
    loop.run();
    EXPECT_EQ(handler.calls, 1);
    loop.remove(pipe.read_fd);
  }
}

TEST(EventLoop, WakeRunsWakeHandlerFromAnotherThread) {
  for (const EventLoop::Backend backend : backends_under_test()) {
    EventLoop::Options options;
    options.backend = backend;
    EventLoop loop{options};
    ASSERT_TRUE(loop.ok());

    std::atomic<int> wakes{0};
    loop.set_wake_handler([&] {
      wakes.fetch_add(1);
      loop.stop();
    });
    std::thread runner{[&] { loop.run(); }};
    while (!loop.running()) std::this_thread::yield();
    loop.wake();
    runner.join();
    EXPECT_GE(wakes.load(), 1);
  }
}

TEST(EventLoop, TimerFiresThroughOwnerHandler) {
  for (const EventLoop::Backend backend : backends_under_test()) {
    EventLoop::Options options;
    options.backend = backend;
    options.timer_tick_ms = 1;
    options.idle_timeout_ms = 5;
    EventLoop loop{options};
    ASSERT_TRUE(loop.ok());

    CountingHandler handler;
    TimerWheel::Timer timer{&handler};
    handler.fn = [&](std::uint32_t events) {
      EXPECT_EQ(events, 0u);  // timer fires deliver empty event sets
      loop.stop();
    };
    loop.timers().arm(timer, monotonic_ms(), 20);
    const std::uint64_t t0 = monotonic_ms();
    loop.run();
    EXPECT_EQ(handler.calls, 1);
    EXPECT_GE(monotonic_ms() - t0, 19u);
  }
}

TEST(EventLoop, RemoveDuringDispatchSkipsStaleReadiness) {
  // Two ready fds in one wait batch; the first handler removes the second
  // fd. The stale readiness record must be skipped — this is the
  // use-after-close hazard the fd-indexed table is designed against.
  for (const EventLoop::Backend backend : backends_under_test()) {
    EventLoop::Options options;
    options.backend = backend;
    EventLoop loop{options};
    ASSERT_TRUE(loop.ok());

    Pipe a, b;
    CountingHandler ha, hb;
    // Dispatch order within a batch is backend-defined, so each handler
    // removes the *other* fd: exactly one may run, whichever comes first.
    ha.fn = [&](std::uint32_t) {
      a.drain();
      loop.remove(b.read_fd);
      loop.stop();
    };
    hb.fn = [&](std::uint32_t) {
      b.drain();
      loop.remove(a.read_fd);
      loop.stop();
    };
    ASSERT_TRUE(loop.add(a.read_fd, kReadable, &ha));
    ASSERT_TRUE(loop.add(b.read_fd, kReadable, &hb));
    a.poke();
    b.poke();
    loop.run();
    EXPECT_EQ(ha.calls + hb.calls, 1);
    loop.remove(a.read_fd);
    loop.remove(b.read_fd);
  }
}

TEST(EventLoop, CycleHandlerRunsEveryIteration) {
  EventLoop::Options options;
  options.idle_timeout_ms = 1;
  EventLoop loop{options};
  ASSERT_TRUE(loop.ok());
  int cycles = 0;
  loop.set_cycle_handler([&] {
    if (++cycles == 3) loop.stop();
  });
  loop.run();
  EXPECT_EQ(cycles, 3);
}

TEST(EventLoop, ModifyChangesInterestSet) {
  for (const EventLoop::Backend backend : backends_under_test()) {
    EventLoop::Options options;
    options.backend = backend;
    options.idle_timeout_ms = 5;
    EventLoop loop{options};
    ASSERT_TRUE(loop.ok());

    Pipe pipe;
    CountingHandler handler;
    int iterations = 0;
    handler.fn = [&](std::uint32_t) { FAIL() << "interest was cleared"; };
    ASSERT_TRUE(loop.add(pipe.read_fd, kReadable, &handler));
    ASSERT_TRUE(loop.modify(pipe.read_fd, 0));  // deaf to readability
    pipe.poke();
    loop.set_cycle_handler([&] {
      if (++iterations == 3) loop.stop();
    });
    loop.run();
    EXPECT_EQ(handler.calls, 0);
    loop.remove(pipe.read_fd);
  }
}

TEST(EventLoop, EpollRequestedOffLinuxFailsClosed) {
  EventLoop::Options options;
  options.backend = EventLoop::Backend::epoll;
  EventLoop loop{options};
#ifdef __linux__
  EXPECT_TRUE(loop.ok());
#else
  EXPECT_FALSE(loop.ok());
#endif
}

TEST(EventLoop, StopBeforeRunReturnsImmediately) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  loop.stop();
  loop.run();  // must not hang
  EXPECT_FALSE(loop.running());
}

}  // namespace
}  // namespace redundancy::net
