// Multi-reactor gateway tests: SO_REUSEPORT loop sharding, the
// single-acceptor fallback's round-robin fd handoff, response pipelining
// with out-of-order completions, vectored send coalescing, the
// REDUNDANCY_GATEWAY_LOOPS knob, and the cached ops-route renders — all
// over real loopback sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "net/conn_manager.hpp"
#include "net/event_loop.hpp"
#include "net/gateway.hpp"
#include "net/loopback_client.hpp"
#include "obs/obs.hpp"

namespace redundancy::net {
namespace {

using loopback::connect_loopback;
using loopback::http_get;
using loopback::read_response;
using loopback::Reply;
using loopback::send_all;

TEST(MultiReactor, ServesAcrossTwoLoops) {
  Gateway::Options options;
  options.loops = 2;
  Gateway gateway{options};
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());
  ASSERT_EQ(gateway.loops(), 2u);
  ASSERT_NE(gateway.port(), 0);

  // Many short-lived connections: the kernel (or the fallback round-robin)
  // spreads them over both loops; every one must be served correctly.
  std::atomic<int> correct{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 10; ++i) {
        const int x = c * 100 + i;
        const Reply reply =
            http_get(gateway.port(), "/echo?x=" + std::to_string(x));
        if (reply.complete && reply.status == 200 &&
            reply.body == std::to_string(x) + "\n") {
          correct.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(correct.load(), 40);
  gateway.stop();
  EXPECT_EQ(gateway.jobs_inflight(), 0u);
  EXPECT_EQ(gateway.jobs_inflight(0), 0u);
  EXPECT_EQ(gateway.jobs_inflight(1), 0u);
}

TEST(MultiReactor, PerLoopMetricShardsAppearInMetrics) {
  Gateway::Options options;
  options.loops = 2;
  options.ops_cache_ttl_ms = 0;  // render fresh
  Gateway gateway{options};
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());
  ASSERT_EQ(http_get(gateway.port(), "/echo?x=1").status, 200);

  const Reply metrics = http_get(gateway.port(), "/metrics");
  ASSERT_EQ(metrics.status, 200);
  // Each reactor registers its own labelled series for every gateway
  // family (registered at construction, so both render even if the kernel
  // hashed every connection onto one loop).
  EXPECT_NE(metrics.body.find("gateway_accepted_total{loop=\"0\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("gateway_accepted_total{loop=\"1\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("gateway_requests_total{loop=\"0\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("gateway_sends_total{loop=\"0\"}"),
            std::string::npos);
  gateway.stop();
}

TEST(MultiReactor, SingleLoopKeepsUnlabelledSeries) {
  Gateway::Options options;
  options.loops = 1;
  options.ops_cache_ttl_ms = 0;
  Gateway gateway{options};
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());
  ASSERT_EQ(gateway.loops(), 1u);
  ASSERT_EQ(http_get(gateway.port(), "/echo?x=1").status, 200);
  const Reply metrics = http_get(gateway.port(), "/metrics");
  // The classic single-reactor series name, no loop label.
  EXPECT_NE(metrics.body.find("gateway_accepted_total "), std::string::npos);
  gateway.stop();
}

TEST(MultiReactor, FallbackAcceptorRoundRobinsConnections) {
  Gateway::Options options;
  options.loops = 2;
  options.single_acceptor = true;  // force the no-SO_REUSEPORT path
  Gateway gateway{options};
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());

  const std::uint64_t before0 =
      obs::counter("gateway.accepted", "loop=0").total();
  const std::uint64_t before1 =
      obs::counter("gateway.accepted", "loop=1").total();

  // Four connections, one round trip each (the round trip proves the
  // adopting loop actually owns and serves the fd).
  std::vector<int> fds;
  for (int c = 0; c < 4; ++c) {
    const int fd = connect_loopback(gateway.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(send_all(fd, "GET /echo?x=" + std::to_string(c) +
                                 " HTTP/1.1\r\n\r\n"));
    const Reply reply = read_response(fd);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(reply.body, std::to_string(c) + "\n");
    fds.push_back(fd);
  }
  for (const int fd : fds) ::close(fd);

  // Strict alternation: 4 accepts → 2 per loop.
  EXPECT_EQ(obs::counter("gateway.accepted", "loop=0").total() - before0, 2u);
  EXPECT_EQ(obs::counter("gateway.accepted", "loop=1").total() - before1, 2u);
  gateway.stop();
  EXPECT_EQ(gateway.jobs_inflight(), 0u);
}

TEST(Gateway, LoopCountComesFromEnvKnob) {
  ::setenv("REDUNDANCY_GATEWAY_LOOPS", "3", 1);
  {
    Gateway gateway;
    install_demo_routes(gateway);
    ASSERT_TRUE(gateway.start());
    EXPECT_EQ(gateway.loops(), 3u);
    gateway.stop();
  }
  // Malformed values are loudly ignored in favour of the core default.
  ::setenv("REDUNDANCY_GATEWAY_LOOPS", "2x", 1);
  {
    Gateway gateway;
    install_demo_routes(gateway);
    ASSERT_TRUE(gateway.start());
    const std::size_t fallback = std::min<std::size_t>(
        std::max<std::size_t>(std::thread::hardware_concurrency() / 2, 1), 8);
    EXPECT_EQ(gateway.loops(), fallback);
    gateway.stop();
  }
  ::unsetenv("REDUNDANCY_GATEWAY_LOOPS");
}

/// Loop-thread fixture for pipelining tests: a ConnManager whose handler
/// only records (conn, seq); the cycle handler answers recorded requests
/// from the loop thread — deferred completions, like the gateway's drain.
class PipelineServer {
 public:
  struct PendingReq {
    std::uint64_t conn_id;
    std::uint64_t seq;
    std::string path;
  };

  /// respond_when: pending request count that triggers the batched
  /// responses; reverse: answer in reverse dispatch order (the responses
  /// must still leave the socket in request order).
  PipelineServer(std::size_t max_pipeline, std::size_t respond_when,
                 bool reverse) {
    EventLoop::Options loop_options;
    loop_options.timer_tick_ms = 5;
    loop_options.idle_timeout_ms = 10;
    loop_ = std::make_unique<EventLoop>(loop_options);
    ConnManager::Options options;
    options.max_pipeline = max_pipeline;
    manager_ = std::make_unique<ConnManager>(*loop_, options);
    manager_->set_request_handler(
        [this](std::uint64_t conn_id, const http::Request& request) {
          pending_.push_back({conn_id, manager_->dispatching_seq(),
                              std::string{request.path}});
        });
    loop_->set_cycle_handler([this, respond_when, reverse] {
      if (pending_.size() < respond_when) return;
      std::vector<PendingReq> batch;
      batch.swap(pending_);
      if (reverse) std::reverse(batch.begin(), batch.end());
      manager_->begin_batch();
      for (const PendingReq& req : batch) {
        http::Response response;
        response.body = req.path + "\n";
        manager_->respond(req.conn_id, req.seq, std::move(response));
      }
      manager_->flush_batch();
    });
    listened_ = manager_->listen();
    thread_ = std::thread{[this] { loop_->run(); }};
  }

  ~PipelineServer() {
    loop_->stop();
    thread_.join();
    manager_.reset();
    loop_.reset();
  }

  [[nodiscard]] bool ok() const { return listened_; }
  [[nodiscard]] std::uint16_t port() const { return manager_->port(); }

 private:
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<ConnManager> manager_;
  std::vector<PendingReq> pending_;
  bool listened_ = false;
  std::thread thread_;
};

/// The loop thread bumps gateway.sends/gateway.responses *after* sendmsg
/// returns, so a client can read the whole response burst before the
/// increments land; poll until the expected total (or a 2 s deadline).
std::uint64_t settled_delta(const char* name, std::uint64_t baseline,
                            std::uint64_t expect) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (obs::counter(name).total() - baseline < expect &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return obs::counter(name).total() - baseline;
}

TEST(ConnPipeline, BatchedPipelineCoalescesIntoOneSend) {
  constexpr std::size_t kDepth = 8;
  PipelineServer server{kDepth, kDepth, /*reverse=*/false};
  ASSERT_TRUE(server.ok());
  const std::uint64_t sends_before = obs::counter("gateway.sends").total();
  const std::uint64_t responses_before =
      obs::counter("gateway.responses").total();

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  std::string burst;
  for (std::size_t i = 0; i < kDepth; ++i) {
    burst += "GET /r" + std::to_string(i) + " HTTP/1.1\r\n\r\n";
  }
  ASSERT_TRUE(send_all(fd, burst));  // one segment: all parse in one wakeup
  for (std::size_t i = 0; i < kDepth; ++i) {
    const Reply reply = read_response(fd);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(reply.body, "/r" + std::to_string(i) + "\n");
  }
  ::close(fd);

  // Eight responses (16 head+body iovecs) leave in far fewer sendmsg calls
  // than responses: that is the sends-per-response < 1 property the
  // benchmark gates. Usually this is exactly one syscall, but the burst may
  // straddle a read boundary under load, so only bound it strictly below
  // the response count.
  EXPECT_EQ(settled_delta("gateway.responses", responses_before, kDepth),
            kDepth);
  const std::uint64_t sends_delta =
      obs::counter("gateway.sends").total() - sends_before;
  EXPECT_GE(sends_delta, 1u);
  EXPECT_LT(sends_delta, kDepth);
}

TEST(ConnPipeline, OutOfOrderCompletionsFlushInRequestOrder) {
  constexpr std::size_t kDepth = 4;
  // Responses are generated in REVERSE dispatch order; the seq-slot queue
  // must still put them on the wire in request order.
  PipelineServer server{kDepth, kDepth, /*reverse=*/true};
  ASSERT_TRUE(server.ok());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  std::string burst;
  for (std::size_t i = 0; i < kDepth; ++i) {
    burst += "GET /o" + std::to_string(i) + " HTTP/1.1\r\n\r\n";
  }
  ASSERT_TRUE(send_all(fd, burst));
  for (std::size_t i = 0; i < kDepth; ++i) {
    const Reply reply = read_response(fd);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(reply.body, "/o" + std::to_string(i) + "\n");
  }
  ::close(fd);
}

TEST(ConnPipeline, DepthCapStopsParsingNotServing) {
  // Depth 2, responder waits for 2: a 4-deep client burst is served as two
  // windows of two — the cap throttles parsing, it never deadlocks.
  PipelineServer server{2, 2, /*reverse=*/false};
  ASSERT_TRUE(server.ok());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  std::string burst;
  for (int i = 0; i < 4; ++i) {
    burst += "GET /w" + std::to_string(i) + " HTTP/1.1\r\n\r\n";
  }
  ASSERT_TRUE(send_all(fd, burst));
  for (int i = 0; i < 4; ++i) {
    const Reply reply = read_response(fd);
    ASSERT_TRUE(reply.complete);
    EXPECT_EQ(reply.body, "/w" + std::to_string(i) + "\n");
  }
  ::close(fd);
}

TEST(Gateway, OpsRoutesServeCachedRenderWithinTtl) {
  Gateway::Options options;
  options.ops_cache_ttl_ms = 10'000;  // nothing expires during the test
  Gateway gateway{options};
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());
  const std::uint64_t renders_before =
      obs::counter("gateway.ops_renders").total();
  std::string first;
  for (int i = 0; i < 5; ++i) {
    const Reply reply = http_get(gateway.port(), "/metrics");
    ASSERT_EQ(reply.status, 200);
    if (i == 0) {
      first = reply.body;
    } else {
      EXPECT_EQ(reply.body, first);  // identical cached bytes
    }
  }
  // Five scrapes, one render.
  EXPECT_EQ(obs::counter("gateway.ops_renders").total() - renders_before, 1u);
  gateway.stop();
}

TEST(Gateway, OpsCacheTtlZeroRendersEveryScrape) {
  Gateway::Options options;
  options.ops_cache_ttl_ms = 0;
  Gateway gateway{options};
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());
  const std::uint64_t renders_before =
      obs::counter("gateway.ops_renders").total();
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(http_get(gateway.port(), "/metrics").status, 200);
  }
  EXPECT_EQ(obs::counter("gateway.ops_renders").total() - renders_before, 3u);
  gateway.stop();
}

TEST(Gateway, ScrapeStormDoesNotStallPipelinedTraffic) {
  // Regression for the scrape-stall: a scraper polling /metrics as fast as
  // it can while pipelined traffic flows. The cached render bounds the
  // registry walks to ~1 per TTL, so traffic must keep completing and the
  // storm must not amplify renders.
  ConnManager::Options conn;
  conn.max_pipeline = 8;
  Gateway::Options options;
  options.conn = conn;
  options.ops_cache_ttl_ms = 50;
  Gateway gateway{options};
  install_demo_routes(gateway);
  ASSERT_TRUE(gateway.start());

  const std::uint64_t renders_before =
      obs::counter("gateway.ops_renders").total();
  std::atomic<bool> stop_scraper{false};
  std::atomic<int> scrapes{0};
  std::thread scraper{[&] {
    while (!stop_scraper.load(std::memory_order_acquire)) {
      if (http_get(gateway.port(), "/metrics").status == 200) {
        scrapes.fetch_add(1);
      }
    }
  }};

  const auto t0 = std::chrono::steady_clock::now();
  int correct = 0;
  const int fd = connect_loopback(gateway.port());
  ASSERT_GE(fd, 0);
  for (int round = 0; round < 20; ++round) {
    std::string burst;
    for (int i = 0; i < 8; ++i) {
      burst += "GET /echo?x=" + std::to_string(round * 8 + i) +
               " HTTP/1.1\r\n\r\n";
    }
    if (!send_all(fd, burst)) break;
    for (int i = 0; i < 8; ++i) {
      const Reply reply = read_response(fd);
      if (reply.complete && reply.status == 200 &&
          reply.body == std::to_string(round * 8 + i) + "\n") {
        ++correct;
      }
    }
  }
  ::close(fd);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  stop_scraper.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(correct, 160);  // every pipelined request answered correctly
  EXPECT_GT(scrapes.load(), 0);
  // Renders amplified by scrape count would show here: the storm did many
  // scrapes but the TTL caps renders near elapsed/TTL (generous 3x slack).
  const std::uint64_t renders =
      obs::counter("gateway.ops_renders").total() - renders_before;
  EXPECT_LE(renders, 3 * (static_cast<std::uint64_t>(elapsed.count()) /
                              options.ops_cache_ttl_ms +
                          2));
  gateway.stop();
  EXPECT_EQ(gateway.jobs_inflight(), 0u);
}

}  // namespace
}  // namespace redundancy::net
