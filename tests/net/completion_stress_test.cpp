// TSan stress for the gateway's cross-thread hand-back machinery: the
// MPSC CompletionQueue under producer herds, the wakeup-fd path, and
// engine completions racing loop shutdown. Run under
// -DREDUNDANCY_SANITIZE=thread (ctest -L stress).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/loopback_client.hpp"
#include "net/completion_queue.hpp"
#include "net/event_loop.hpp"
#include "net/gateway.hpp"

namespace redundancy::net {
namespace {

struct Item : CompletionNode {
  int producer = 0;
  int seq = 0;
};

TEST(CompletionQueueStress, ManyProducersOneConsumerNothingLostFifoPerProducer) {
  constexpr int kProducers = 4;
  constexpr int kItems = 20'000;
  CompletionQueue queue;
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};

  std::thread consumer{[&] {
    std::vector<int> last_seq(kProducers, -1);
    while (!done.load(std::memory_order_acquire) || !queue.empty()) {
      for (CompletionNode* node = queue.drain(); node != nullptr;) {
        CompletionNode* next = node->next;
        auto* item = static_cast<Item*>(node);
        // drain() restores FIFO order, so per-producer sequences ascend.
        EXPECT_EQ(item->seq, last_seq[item->producer] + 1);
        last_seq[item->producer] = item->seq;
        delete item;
        consumed.fetch_add(1, std::memory_order_relaxed);
        node = next;
      }
      std::this_thread::yield();
    }
  }};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kItems; ++i) {
        auto* item = new Item;
        item->producer = p;
        item->seq = i;
        queue.push(item);
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(consumed.load(), kProducers * kItems);
}

TEST(CompletionQueueStress, WasEmptySignalFiresAtLeastOncePerBurst) {
  // Between two drains at least one push must have reported was-empty —
  // that is the invariant that makes "wake only on was-empty" lossless.
  CompletionQueue queue;
  constexpr int kRounds = 2'000;
  std::atomic<int> wakes{0};
  std::thread producer{[&] {
    for (int i = 0; i < kRounds * 4; ++i) {
      auto* item = new Item;
      if (queue.push(item)) wakes.fetch_add(1, std::memory_order_relaxed);
    }
  }};
  int drained = 0;
  int drains_with_data = 0;
  while (drained < kRounds * 4) {
    int batch = 0;
    for (CompletionNode* node = queue.drain(); node != nullptr;) {
      CompletionNode* next = node->next;
      delete static_cast<Item*>(node);
      ++batch;
      node = next;
    }
    if (batch > 0) {
      ++drains_with_data;
      drained += batch;
    }
  }
  producer.join();
  EXPECT_EQ(drained, kRounds * 4);
  // Every data-carrying drain burst was preceded by >= 1 was-empty push.
  EXPECT_GE(wakes.load(), 1);
  EXPECT_LE(wakes.load(), drains_with_data + 1);
}

TEST(GatewayStress, CompletionsRacingLoopShutdown) {
  // Workers finishing jobs (pushing completions + writing the wakeup fd)
  // race gateway.stop() tearing the loop down. Repeat the whole lifecycle
  // so TSan sees many interleavings; correctness = no lost job accounting
  // and no touch-after-free (TSan/ASan would flag it).
  for (int round = 0; round < 15; ++round) {
    Gateway gateway;
    gateway.add_route("/work",
                      [](const Gateway::Request& req) -> http::Response {
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(200));
                        return {200, "text/plain; charset=utf-8",
                                req.query.empty() ? "ok\n" : req.query + "\n"};
                      });
    ASSERT_TRUE(gateway.start());

    std::atomic<bool> stop_clients{false};
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&, c] {
        const int fd = loopback::connect_loopback(gateway.port());
        if (fd < 0) return;
        for (int i = 0; !stop_clients.load(std::memory_order_acquire); ++i) {
          if (!loopback::send_all(fd, "GET /work?q=" + std::to_string(c) +
                                          " HTTP/1.1\r\n\r\n")) {
            break;
          }
          const loopback::Reply reply = loopback::read_response(fd);
          if (!reply.complete) break;  // gateway stopped under us — expected
        }
        ::close(fd);
      });
    }
    // Let traffic build, then yank the loop out from under the workers.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gateway.stop();
    EXPECT_EQ(gateway.jobs_inflight(), 0u);
    stop_clients.store(true, std::memory_order_release);
    for (auto& t : clients) t.join();
  }
}

TEST(GatewayStress, MultiLoopCompletionsRacingStop) {
  // The multi-reactor variant of the shutdown race: M client threads spread
  // over N loops (alternating rounds exercise both the SO_REUSEPORT shard
  // path and the single-acceptor adopt-queue handoff), workers pushing
  // completions to per-loop queues while stop() tears all the loops down.
  // Correctness = zero jobs left in flight on any loop and no
  // touch-after-free across the per-reactor teardown (TSan would flag it).
  for (int round = 0; round < 10; ++round) {
    Gateway::Options options;
    options.loops = 3;
    options.single_acceptor = (round % 2 == 1);
    Gateway gateway{options};
    gateway.add_route("/work",
                      [](const Gateway::Request& req) -> http::Response {
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(200));
                        return {200, "text/plain; charset=utf-8",
                                req.query.empty() ? "ok\n" : req.query + "\n"};
                      });
    ASSERT_TRUE(gateway.start());
    ASSERT_EQ(gateway.loops(), 3u);

    std::atomic<bool> stop_clients{false};
    std::vector<std::thread> clients;
    for (int c = 0; c < 6; ++c) {
      clients.emplace_back([&, c] {
        const int fd = loopback::connect_loopback(gateway.port());
        if (fd < 0) return;
        for (int i = 0; !stop_clients.load(std::memory_order_acquire); ++i) {
          if (!loopback::send_all(fd, "GET /work?q=" + std::to_string(c) +
                                          " HTTP/1.1\r\n\r\n")) {
            break;
          }
          const loopback::Reply reply = loopback::read_response(fd);
          if (!reply.complete) break;  // gateway stopped under us — expected
        }
        ::close(fd);
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gateway.stop();
    EXPECT_EQ(gateway.jobs_inflight(), 0u);
    for (std::size_t loop = 0; loop < 3; ++loop) {
      EXPECT_EQ(gateway.jobs_inflight(loop), 0u);
    }
    stop_clients.store(true, std::memory_order_release);
    for (auto& t : clients) t.join();
  }
}

}  // namespace
}  // namespace redundancy::net
