// ConnManager state-machine edge cases over real loopback sockets: partial
// reads across wakeups, slow-loris idle timeout, EAGAIN write backpressure,
// overload shedding (503 + clean close), pipelining, and accept-side sheds.
//
// The request handler responds inline from the loop thread (the dispatch
// hop through the pool is the Gateway's job, tested separately), so these
// tests isolate exactly the connection machinery.
#include "net/conn_manager.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "net/event_loop.hpp"
#include "net/http.hpp"
#include "net/loopback_client.hpp"

namespace redundancy::net {
namespace {

using loopback::connect_loopback;
using loopback::http_get;
using loopback::read_response;
using loopback::Reply;
using loopback::send_all;
using loopback::wait_for_eof;

/// Loop thread + ConnManager with an inline echo/big handler.
class Server {
 public:
  explicit Server(ConnManager::Options options) {
    EventLoop::Options loop_options;
    loop_options.timer_tick_ms = 5;
    loop_options.idle_timeout_ms = 10;
    loop_ = std::make_unique<EventLoop>(loop_options);
    manager_ = std::make_unique<ConnManager>(*loop_, options);
    manager_->set_request_handler(
        [this](std::uint64_t conn_id, const http::Request& request) {
          http::Response response;
          if (request.path == "/big") {
            response.body.assign(
                static_cast<std::size_t>(
                    http::query_param(request.query, "n").value_or(1024)),
                'x');
          } else {
            response.body = std::string{request.path} + ":" +
                            std::string{request.body} + "\n";
          }
          manager_->respond(conn_id, std::move(response));
        });
    listened_ = manager_->listen();
    thread_ = std::thread{[this] { loop_->run(); }};
  }

  ~Server() {
    loop_->stop();
    thread_.join();
    manager_.reset();  // loop dead: teardown is single-threaded now
    loop_.reset();
  }

  [[nodiscard]] bool ok() const { return listened_; }
  [[nodiscard]] std::uint16_t port() const { return manager_->port(); }

 private:
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<ConnManager> manager_;
  bool listened_ = false;
  std::thread thread_;
};

ConnManager::Options base_options() {
  ConnManager::Options options;
  options.idle_timeout_ms = 30'000;
  return options;
}

TEST(ConnManager, ServesARequestAndKeepsAlive) {
  Server server{base_options()};
  ASSERT_TRUE(server.ok());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, "GET /a HTTP/1.1\r\n\r\n"));
  Reply r1 = read_response(fd);
  ASSERT_TRUE(r1.complete);
  EXPECT_EQ(r1.status, 200);
  EXPECT_EQ(r1.body, "/a:\n");
  EXPECT_NE(r1.head.find("Connection: keep-alive"), std::string::npos);
  // Same connection, second request.
  ASSERT_TRUE(send_all(fd, "GET /b HTTP/1.1\r\n\r\n"));
  Reply r2 = read_response(fd);
  ASSERT_TRUE(r2.complete);
  EXPECT_EQ(r2.body, "/b:\n");
  ::close(fd);
}

TEST(ConnManager, PartialReadsAcrossManyWakeups) {
  Server server{base_options()};
  ASSERT_TRUE(server.ok());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string request =
      "POST /echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  // One byte per send with pauses: every byte is its own epoll wakeup and
  // the parser must stay incomplete until the last one.
  for (char c : request) {
    ASSERT_TRUE(send_all(fd, std::string(1, c)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Reply reply = read_response(fd);
  ASSERT_TRUE(reply.complete);
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, "/echo:hello\n");
  ::close(fd);
}

TEST(ConnManager, PipelinedRequestsAnsweredInOrder) {
  Server server{base_options()};
  ASSERT_TRUE(server.ok());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd,
                       "GET /one HTTP/1.1\r\n\r\n"
                       "GET /two HTTP/1.1\r\n\r\n"));
  Reply r1 = read_response(fd);
  Reply r2 = read_response(fd);
  ASSERT_TRUE(r1.complete);
  ASSERT_TRUE(r2.complete);
  EXPECT_EQ(r1.body, "/one:\n");
  EXPECT_EQ(r2.body, "/two:\n");
  ::close(fd);
}

TEST(ConnManager, SlowLorisHitsIdleTimeoutDespiteTrickle) {
  ConnManager::Options options = base_options();
  options.idle_timeout_ms = 120;
  Server server{options};
  ASSERT_TRUE(server.ok());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  // Trickle header bytes forever, never finishing the request. The idle
  // deadline covers the whole request, so the trickle must NOT refresh it.
  ASSERT_TRUE(send_all(fd, "GET /slow HTTP/1.1\r\nX-Pad: "));
  const auto t0 = std::chrono::steady_clock::now();
  Reply reply;
  for (int i = 0; i < 50; ++i) {
    if (!send_all(fd, "a")) break;  // server closed on us mid-trickle
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    // Peek for the 408 without blocking forever.
    char buf[1024];
    const ssize_t n = ::recv(fd, buf, sizeof buf, MSG_DONTWAIT);
    if (n > 0) {
      reply.head.append(buf, static_cast<std::size_t>(n));
      if (reply.head.find("\r\n\r\n") != std::string::npos) break;
    }
    if (n == 0) break;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_NE(reply.head.find("HTTP/1.1 408"), std::string::npos);
  EXPECT_NE(reply.head.find("Connection: close"), std::string::npos);
  // Cut off near the deadline — not after 50 × 25ms of successful trickle.
  EXPECT_LT(elapsed.count(), 700);
  EXPECT_TRUE(wait_for_eof(fd, 3000));
  ::close(fd);
}

TEST(ConnManager, WriteBackpressureSurvivesSlowReader) {
  ConnManager::Options options = base_options();
  options.sndbuf_bytes = 4096;  // force EAGAIN on the first big write
  Server server{options};
  ASSERT_TRUE(server.ok());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::size_t want = 2u << 20;  // 2 MiB >> the server's send buffer
  ASSERT_TRUE(
      send_all(fd, "GET /big?n=" + std::to_string(want) + " HTTP/1.1\r\n\r\n"));
  // Let the server hit EAGAIN and park on write interest before we read.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Reply reply = read_response(fd);
  ASSERT_TRUE(reply.complete);
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body.size(), want);
  ::close(fd);
}

TEST(ConnManager, WriteTimeoutCutsOffStuckReader) {
  ConnManager::Options options = base_options();
  options.sndbuf_bytes = 4096;
  options.write_timeout_ms = 150;
  Server server{options};
  ASSERT_TRUE(server.ok());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const int rcvbuf = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  ASSERT_TRUE(send_all(fd, "GET /big?n=4194304 HTTP/1.1\r\n\r\n"));
  // Never read: the peer must give up within the write deadline instead of
  // holding the buffers forever.
  EXPECT_TRUE(wait_for_eof(fd, 5000));
  ::close(fd);
}

TEST(ConnManager, OverloadShedsWith503AndCleanClose) {
  ConnManager::Options options = base_options();
  options.max_inflight = 0;  // every request is over the admission limit
  Server server{options};
  ASSERT_TRUE(server.ok());
  const Reply reply = http_get(server.port(), "/anything");
  EXPECT_EQ(reply.status, 503);
  EXPECT_EQ(reply.body, "overloaded\n");
  EXPECT_NE(reply.head.find("Connection: close"), std::string::npos);
}

TEST(ConnManager, AcceptShedsBeyondMaxConnections) {
  ConnManager::Options options = base_options();
  options.max_connections = 1;
  Server server{options};
  ASSERT_TRUE(server.ok());
  const int keeper = connect_loopback(server.port());
  ASSERT_GE(keeper, 0);
  // Make sure the first connection is registered before the second lands.
  ASSERT_TRUE(send_all(keeper, "GET /a HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(read_response(keeper).complete);
  const int shed = connect_loopback(server.port());
  ASSERT_GE(shed, 0);
  // The shed socket is accepted then closed: EOF, no response bytes.
  EXPECT_TRUE(wait_for_eof(shed, 3000));
  ::close(shed);
  // The admitted connection still works.
  ASSERT_TRUE(send_all(keeper, "GET /b HTTP/1.1\r\n\r\n"));
  EXPECT_TRUE(read_response(keeper).complete);
  ::close(keeper);
}

TEST(ConnManager, MalformedRequestGets400AndClose) {
  Server server{base_options()};
  ASSERT_TRUE(server.ok());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, "NONSENSE\r\n\r\n"));
  Reply reply = read_response(fd);
  ASSERT_TRUE(reply.complete);
  EXPECT_EQ(reply.status, 400);
  EXPECT_TRUE(wait_for_eof(fd, 3000));
  ::close(fd);
}

TEST(ConnManager, OversizedHeadGets431) {
  ConnManager::Options options = base_options();
  options.max_request_bytes = 256;
  Server server{options};
  ASSERT_TRUE(server.ok());
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  std::string request = "GET /x HTTP/1.1\r\nX-Pad: ";
  request.append(1024, 'a');
  ASSERT_TRUE(send_all(fd, request));
  Reply reply = read_response(fd);
  ASSERT_TRUE(reply.complete);
  EXPECT_EQ(reply.status, 431);
  ::close(fd);
}

}  // namespace
}  // namespace redundancy::net
