// obs::WindowedCounter / obs::WindowedHistogram: epoch-delta rings over the
// cumulative sharded primitives, driven with synthetic time so the window
// arithmetic is exact and deterministic.
#include "obs/windowed.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "obs/counter.hpp"
#include "obs/histogram.hpp"

namespace redundancy::obs {
namespace {

constexpr std::uint64_t kSec = 1'000'000'000ull;

TEST(HistogramSnapshotDiff, SubtractsPerBucketAndSaturates) {
  Histogram h;
  h.record(10);
  h.record(1000);
  const HistogramSnapshot earlier = h.snapshot();
  h.record(1000);
  h.record(50'000);
  const HistogramSnapshot later = h.snapshot();

  const HistogramSnapshot delta = later.diff(earlier);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 51'000u);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : delta.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 2u);

  // Swapped operands (an "earlier" snapshot that is actually ahead)
  // saturate at zero instead of wrapping.
  const HistogramSnapshot inverted = earlier.diff(later);
  EXPECT_EQ(inverted.count, 0u);
  EXPECT_EQ(inverted.sum, 0u);
}

TEST(WindowedCounter, LivePartialEpochIsVisibleBeforeRotation) {
  Counter c;
  WindowedCounter w{c, {kSec, 8}};
  c.add(5);
  // No rotation yet: the live delta against the base still counts.
  EXPECT_EQ(w.window(10 * kSec, kSec), 5u);
  EXPECT_EQ(w.cumulative(), 5u);
}

TEST(WindowedCounter, WindowCoversOnlyOverlappingEpochs) {
  Counter c;
  WindowedCounter w{c, {kSec, 8}};
  // Epochs closing at t=1s..5s with 10,20,30,40,50 events.
  for (std::uint64_t i = 1; i <= 5; ++i) {
    c.add(10 * i);
    w.rotate(i * kSec);
  }
  const std::uint64_t now = 5 * kSec;
  // Last 2s: epochs ended at 4s (overlap: 4+2>5) and 5s.
  EXPECT_EQ(w.window(2 * kSec, now), 90u);
  // Last 1s: only the epoch ended at 5s.
  EXPECT_EQ(w.window(1 * kSec, now), 50u);
  // Huge span: everything.
  EXPECT_EQ(w.window(100 * kSec, now), 150u);
  EXPECT_EQ(w.cumulative(), 150u);
  EXPECT_EQ(w.rotations(), 5u);
}

TEST(WindowedCounter, RingEvictionDropsEpochsBeyondDepth) {
  Counter c;
  WindowedCounter w{c, {kSec, 3}};  // ring holds 3 epochs
  for (std::uint64_t i = 1; i <= 10; ++i) {
    c.add(1);
    w.rotate(i * kSec);
  }
  // Only the 3 retained epochs can answer, even for an enormous span.
  EXPECT_EQ(w.window(100 * kSec, 10 * kSec), 3u);
  // The cumulative side never loses anything.
  EXPECT_EQ(w.cumulative(), 10u);
}

TEST(WindowedCounter, RatePerSecond) {
  Counter c;
  WindowedCounter w{c, {kSec, 8}};
  c.add(300);
  w.rotate(kSec);
  EXPECT_DOUBLE_EQ(w.rate_per_sec(1 * kSec, kSec), 300.0);
  EXPECT_DOUBLE_EQ(w.rate_per_sec(0, kSec), 0.0);
}

TEST(WindowedHistogram, WindowPercentileSeesOnlyRecentSamples) {
  Histogram h;
  WindowedHistogram w{h, {kSec, 8}};
  // Epoch 1: a thousand 1ms samples (healthy).
  for (int i = 0; i < 1000; ++i) h.record(1'000'000);
  w.rotate(1 * kSec);
  // Epoch 2: a hundred 100ms samples (a burst).
  for (int i = 0; i < 100; ++i) h.record(100'000'000);
  w.rotate(2 * kSec);

  // Window covering only the burst epoch: p99 in the 100ms bucket range.
  const HistogramSnapshot burst = w.window(1 * kSec, 2 * kSec);
  EXPECT_EQ(burst.count, 100u);
  EXPECT_GT(burst.percentile(99.0), 50'000'000.0);

  // Window covering both: burst is outvoted below the median but visible
  // at p99; cumulative matches the full merge.
  const HistogramSnapshot both = w.window(2 * kSec, 2 * kSec);
  EXPECT_EQ(both.count, 1100u);
  EXPECT_LT(both.percentile(50.0), 3'000'000.0);
  EXPECT_GT(both.percentile(99.0), 50'000'000.0);
  EXPECT_EQ(w.cumulative().count, 1100u);
}

TEST(WindowedHistogram, LivePartialEpochMergesWithClosedSlots) {
  Histogram h;
  WindowedHistogram w{h, {kSec, 8}};
  h.record(1000);
  w.rotate(1 * kSec);
  h.record(2000);  // not yet rotated
  const HistogramSnapshot s = w.window(5 * kSec, 1 * kSec + kSec / 2);
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.sum, 3000u);
}

TEST(WindowedHistogram, ZeroOptionsFallBackToDefaults) {
  Histogram h;
  WindowedHistogram w{h, {0, 0}};
  EXPECT_EQ(w.epoch_ns(), WindowOptions{}.epoch_ns);
  EXPECT_GE(w.slots(), 1u);
}

}  // namespace
}  // namespace redundancy::obs
