// JsonlTraceSink crash-safety: the underlying stream must only ever hold
// whole '\n'-terminated JSONL lines — a sink dropped mid-campaign or a
// process dying between batches leaves a parseable file, never a truncated
// record.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/sink.hpp"

namespace redundancy::obs {
namespace {

SpanRecord make_span(std::uint64_t i, const std::string& detail = "") {
  SpanRecord s;
  s.trace_id = i + 1;
  s.span_id = i + 1;
  s.name = "variant";
  s.detail = detail;
  s.t_start_ns = 100 * i;
  s.t_end_ns = 100 * i + 50;
  return s;
}

/// Every line of `text` is complete: non-empty, a single JSON object, and
/// the text itself ends with a newline (no dangling partial line).
void expect_whole_lines(const std::string& text, std::size_t expected) {
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n') << "stream ends mid-line";
  std::istringstream in{text};
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    ++count;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_EQ(count, expected);
}

TEST(JsonlSink, DroppedSinkFlushesOnlyCompleteLines) {
  std::ostringstream out;
  {
    JsonlTraceSink sink{out};
    for (std::uint64_t i = 0; i < 20; ++i) sink.on_span(make_span(i));
    AdjudicationEvent event;
    event.technique = "nvp";
    event.accepted = true;
    event.verdict = "ok";
    sink.on_adjudication(event);
    // Below the flush threshold nothing has reached the stream yet —
    // the buffer holds the (complete) lines.
    EXPECT_TRUE(out.str().empty());
  }  // destructor flushes
  expect_whole_lines(out.str(), 21);
}

TEST(JsonlSink, ExplicitFlushDrainsTheBuffer) {
  std::ostringstream out;
  JsonlTraceSink sink{out};
  sink.on_span(make_span(0));
  sink.flush();
  expect_whole_lines(out.str(), 1);
  sink.on_span(make_span(1));
  sink.flush();
  expect_whole_lines(out.str(), 2);
  sink.flush();  // idempotent with an empty buffer
  expect_whole_lines(out.str(), 2);
}

TEST(JsonlSink, AutoFlushAtThresholdWritesWholeLineBlocks) {
  std::ostringstream out;
  JsonlTraceSink sink{out};
  // Large details force the kFlushBytes threshold quickly; at every point
  // the stream must hold only whole lines.
  const std::string detail(1024, 'x');
  std::size_t written = 0;
  while (out.str().empty()) {
    sink.on_span(make_span(written++, detail));
    ASSERT_LT(written, 1000u) << "auto-flush never triggered";
  }
  const std::string at_threshold = out.str();
  EXPECT_EQ(at_threshold.back(), '\n');
  EXPECT_GE(at_threshold.size(), JsonlTraceSink::kFlushBytes);
  sink.flush();
  expect_whole_lines(out.str(), written);
}

}  // namespace
}  // namespace redundancy::obs
