// obs::Counter / obs::Histogram / obs::MetricsRegistry: exactness under
// concurrency, log2 bucket layout, merge determinism, Prometheus rendering.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/counter.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics_registry.hpp"

namespace redundancy::obs {
namespace {

TEST(ObsCounter, SingleThreadTotalIsExact) {
  Counter c;
  EXPECT_EQ(c.total(), 0u);
  for (int i = 0; i < 100; ++i) c.add();
  c.add(900);
  EXPECT_EQ(c.total(), 1000u);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(ObsCounter, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.total(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(ObsHistogram, BucketOfFollowsLog2Layout) {
  // Bucket 0 holds v <= 1; bucket b holds 2^(b-1) < v <= 2^b.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Histogram::bucket_of(5), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 3u);
  EXPECT_EQ(Histogram::bucket_of(9), 4u);
  EXPECT_EQ(Histogram::bucket_of(1024), 10u);
  EXPECT_EQ(Histogram::bucket_of(1025), 11u);
  EXPECT_LT(Histogram::bucket_of(UINT64_MAX), HistogramSnapshot::kBuckets);
}

TEST(ObsHistogram, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(HistogramSnapshot::bucket_bound(0), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_bound(10), 1024u);
  // Every value lands in the bucket whose bound covers it.
  for (std::uint64_t v : {1ull, 2ull, 3ull, 100ull, 4096ull, 1'000'000ull}) {
    const std::size_t b = Histogram::bucket_of(v);
    EXPECT_LE(v, HistogramSnapshot::bucket_bound(b)) << v;
    if (b > 0) EXPECT_GT(v, HistogramSnapshot::bucket_bound(b - 1)) << v;
  }
}

TEST(ObsHistogram, SnapshotCountAndSumAreExact) {
  Histogram h;
  h.record(1);
  h.record(10);
  h.record(100);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 111u);
  EXPECT_DOUBLE_EQ(s.mean(), 37.0);
  EXPECT_EQ(h.count(), 3u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsHistogram, PercentileIsWithinOneBucket) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(1000);  // bucket (512, 1024]
  const HistogramSnapshot s = h.snapshot();
  for (double p : {1.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_GT(s.percentile(p), 512.0) << p;
    EXPECT_LE(s.percentile(p), 1024.0) << p;
  }
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.percentile(50.0), 0.0);
}

TEST(ObsHistogram, PercentilesOrderAcrossBuckets) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(100);    // fast bulk
  for (int i = 0; i < 10; ++i) h.record(50'000); // slow tail
  const HistogramSnapshot s = h.snapshot();
  EXPECT_LE(s.percentile(50.0), 128.0);
  EXPECT_GT(s.percentile(95.0), 32'768.0);
  EXPECT_LE(s.percentile(50.0), s.percentile(95.0));
  EXPECT_LE(s.percentile(95.0), s.percentile(99.0));
}

TEST(ObsHistogram, MergeIsExactAndOrderIndependent) {
  // The determinism contract for sharded campaigns: merging per-shard
  // snapshots in any order produces byte-identical aggregates.
  Histogram a, b, c;
  for (int i = 0; i < 100; ++i) a.record(10 + i);
  for (int i = 0; i < 200; ++i) b.record(5000 + i);
  for (int i = 0; i < 50; ++i) c.record(1);

  HistogramSnapshot abc = a.snapshot();
  abc.merge(b.snapshot()).merge(c.snapshot());
  HistogramSnapshot cba = c.snapshot();
  cba.merge(b.snapshot()).merge(a.snapshot());

  EXPECT_EQ(abc.count, 350u);
  EXPECT_EQ(abc.count, cba.count);
  EXPECT_EQ(abc.sum, cba.sum);
  EXPECT_EQ(abc.buckets, cba.buckets);
  EXPECT_DOUBLE_EQ(abc.percentile(95.0), cba.percentile(95.0));
  EXPECT_EQ(abc.summary(), cba.summary());
}

TEST(ObsHistogram, SummaryMentionsThePercentiles) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(100);
  const std::string s = h.snapshot().summary();
  EXPECT_NE(s.find("count=10"), std::string::npos) << s;
  EXPECT_NE(s.find("p50="), std::string::npos) << s;
  EXPECT_NE(s.find("p99="), std::string::npos) << s;
}

TEST(ObsRegistry, SameNameReturnsSameInstrument) {
  auto& reg = MetricsRegistry::instance();
  Counter& c1 = reg.counter("obs_test.same_name");
  Counter& c2 = reg.counter("obs_test.same_name");
  EXPECT_EQ(&c1, &c2);
  Histogram& h1 = reg.histogram("obs_test.same_hist");
  Histogram& h2 = reg.histogram("obs_test.same_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistry, ConcurrentLookupsAreStable) {
  auto& reg = MetricsRegistry::instance();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.counter("obs_test.contended").add();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(reg.counter("obs_test.contended").total(),
            static_cast<std::uint64_t>(kThreads) * 1000);
}

TEST(ObsRegistry, PrometheusRenderingHasExpectedShape) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("obs_test.render/counter").add(7);
  Histogram& h = reg.histogram("obs_test.render_hist");
  h.reset();
  h.record(100);
  h.record(1000);

  std::ostringstream out;
  reg.render_prometheus(out);
  const std::string text = out.str();
  // Names sanitised to [a-zA-Z0-9_:]; counters get the _total suffix.
  EXPECT_NE(text.find("obs_test_render_counter_total 7"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE obs_test_render_hist histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("obs_test_render_hist_bucket{le=\"128\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("obs_test_render_hist_bucket{le=\"1024\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("obs_test_render_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("obs_test_render_hist_sum 1100"), std::string::npos)
      << text;
  EXPECT_NE(text.find("obs_test_render_hist_count 2"), std::string::npos)
      << text;
}

}  // namespace
}  // namespace redundancy::obs
