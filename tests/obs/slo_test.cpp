// obs::SloTracker: windowed burn-rate evaluation, error-budget accounting,
// synthetic verdict emission and the /slo NDJSON snapshot — all driven with
// synthetic time (tick() with explicit now), no rotation thread.
#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace redundancy::obs {
namespace {

constexpr std::uint64_t kSec = 1'000'000'000ull;
constexpr std::uint64_t kMs = 1'000'000ull;

SloTracker::Options one_sec_epochs() {
  SloTracker::Options options;
  options.epoch_ns = kSec;
  options.slots = 3700;  // a full hour of 1s epochs
  return options;
}

TEST(SloTracker, LatencyOverTargetCountsAsError) {
  SloTracker slo{one_sec_epochs()};
  slo.register_class("api", {/*latency_slo_ns=*/5 * kMs, 0.999});
  slo.observe("api", 1 * kMs, true);    // good
  slo.observe("api", 20 * kMs, true);   // too slow: error
  slo.observe("api", 1 * kMs, false);   // failed: error
  slo.tick(kSec);
  const std::string snap = slo.snapshot_jsonl(kSec);
  EXPECT_NE(snap.find("\"total\":3"), std::string::npos);
  EXPECT_NE(snap.find("\"errors\":2"), std::string::npos);
}

TEST(SloTracker, AutoRegisterUsesDefaultTarget) {
  SloTracker::Options options = one_sec_epochs();
  options.default_target = {10 * kMs, 0.99};
  SloTracker slo{options};
  slo.observe("/new-route", 1 * kMs, true);
  EXPECT_EQ(slo.state("/new-route"), SloState::ok);
  const std::string snap = slo.snapshot_jsonl(0);
  EXPECT_NE(snap.find("\"class\":\"/new-route\""), std::string::npos);

  SloTracker::Options strict = one_sec_epochs();
  strict.auto_register = false;
  SloTracker closed{strict};
  closed.observe("/unknown", 1 * kMs, true);
  EXPECT_EQ(closed.snapshot_jsonl(0), "");
}

TEST(SloTracker, FastBurnFiresWithinOneRotationAndCumulativeStaysFlat) {
  SloTracker slo{one_sec_epochs()};
  slo.register_class("api", {5 * kMs, 0.999});

  std::vector<AdjudicationEvent> verdicts;
  slo.set_verdict_callback([&verdicts](const AdjudicationEvent& v) {
    verdicts.push_back(v);
  });

  // Ten minutes of healthy traffic: 1000 req/s at 1ms.
  std::uint64_t now = 0;
  for (int epoch = 1; epoch <= 600; ++epoch) {
    for (int i = 0; i < 1000; ++i) slo.observe("api", 1 * kMs, true);
    now = static_cast<std::uint64_t>(epoch) * kSec;
    slo.tick(now);
  }
  ASSERT_FALSE(verdicts.empty());
  EXPECT_TRUE(verdicts.back().accepted);
  EXPECT_EQ(slo.state("api"), SloState::ok);

  // One epoch of full outage: 1000 slow failures.
  for (int i = 0; i < 1000; ++i) slo.observe("api", 20 * kMs, false);
  now += kSec;
  slo.tick(now);

  // Within ONE window rotation the page-level rule fires: the 10s and 1m
  // windows are saturated with errors (burn >> 14.4), while the cumulative
  // error ratio moved only 1000/601000 ≈ 0.17%.
  EXPECT_EQ(slo.state("api"), SloState::failing);
  ASSERT_FALSE(verdicts.empty());
  EXPECT_FALSE(verdicts.back().accepted);
  EXPECT_EQ(verdicts.back().technique, "slo:api");

  const std::string snap = slo.snapshot_jsonl(now);
  EXPECT_NE(snap.find("\"state\":\"failing\""), std::string::npos);
  EXPECT_NE(snap.find("\"alert_fast_burn\":true"), std::string::npos);

  // Recovery: healthy epochs push the short window clean again.
  for (int epoch = 0; epoch < 70; ++epoch) {
    for (int i = 0; i < 1000; ++i) slo.observe("api", 1 * kMs, true);
    now += kSec;
    slo.tick(now);
  }
  EXPECT_NE(slo.state("api"), SloState::failing);
}

TEST(SloTracker, BreachCallbackIsEdgeTriggered) {
  SloTracker slo{one_sec_epochs()};
  slo.register_class("api", {5 * kMs, 0.999});
  int breaches = 0;
  slo.set_breach_callback(
      [&breaches](const std::string& cls, const std::string& rule) {
        EXPECT_EQ(cls, "api");
        EXPECT_EQ(rule, "fast_burn");
        ++breaches;
      });
  std::uint64_t now = 0;
  for (int epoch = 1; epoch <= 3; ++epoch) {
    for (int i = 0; i < 100; ++i) slo.observe("api", 1 * kMs, false);
    now = static_cast<std::uint64_t>(epoch) * kSec;
    slo.tick(now);
  }
  // Still failing every tick, but the callback fired only on the edge.
  EXPECT_EQ(slo.state("api"), SloState::failing);
  EXPECT_EQ(breaches, 1);
}

TEST(SloTracker, SinkScoresOnlyRegisteredClasses) {
  SloTracker slo{one_sec_epochs()};
  slo.register_class("nvp.run", {5 * kMs, 0.99});
  TraceSink& sink = slo;

  SpanRecord span;
  span.name = "nvp.run";
  span.t_start_ns = 0;
  span.t_end_ns = 1 * kMs;
  span.ok = true;
  sink.on_span(span);

  SpanRecord other;
  other.name = "variant";  // unregistered: ignored even with auto_register
  other.t_end_ns = 1;
  sink.on_span(other);

  AdjudicationEvent rejected;
  rejected.technique = "nvp.run";
  rejected.accepted = false;
  sink.on_adjudication(rejected);

  AdjudicationEvent own;
  own.technique = "slo:nvp.run";  // our own synthetic verdict: ignored
  own.accepted = false;
  sink.on_adjudication(own);

  const std::string snap = slo.snapshot_jsonl(0);
  EXPECT_NE(snap.find("\"total\":2"), std::string::npos);
  EXPECT_NE(snap.find("\"errors\":1"), std::string::npos);
  EXPECT_EQ(snap.find("\"class\":\"variant\""), std::string::npos);
}

TEST(SloTracker, WindowedGaugesAreRegisteredOnTick) {
  SloTracker slo{one_sec_epochs()};
  slo.register_class("gauged", {5 * kMs, 0.999});
  for (int i = 0; i < 10; ++i) slo.observe("gauged", 1 * kMs, true);
  slo.tick(kSec);
  bool found = false;
  for (const auto& [key, value] : MetricsRegistry::instance().gauge_values()) {
    if (key.find("slo.burn_rate_1m") != std::string::npos &&
        key.find("gauged") != std::string::npos) {
      found = true;
      EXPECT_DOUBLE_EQ(value, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ParseSloTargets, AcceptsValidSkipsMalformed) {
  const auto targets = parse_slo_targets(
      "/fast=5@99.9,bogus,nvp.run=10@99,=1@50,late=0@99,over=1@100");
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0].first, "/fast");
  EXPECT_EQ(targets[0].second.latency_slo_ns, 5 * kMs);
  EXPECT_DOUBLE_EQ(targets[0].second.availability, 0.999);
  EXPECT_EQ(targets[1].first, "nvp.run");
  EXPECT_EQ(targets[1].second.latency_slo_ns, 10 * kMs);
  EXPECT_DOUBLE_EQ(targets[1].second.availability, 0.99);
  EXPECT_TRUE(parse_slo_targets(nullptr).empty());
  EXPECT_TRUE(parse_slo_targets("").empty());
}

}  // namespace
}  // namespace redundancy::obs
