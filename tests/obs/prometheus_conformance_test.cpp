// Parser-style conformance checks on the Prometheus text exposition: a
// small line parser walks render_prometheus() output and asserts the format
// invariants a real scraper (or promtool) relies on — HELP/TYPE headers per
// family, counters named `_total`, cumulative monotone histogram buckets
// with `le` increasing and `+Inf` equal to `_count`, legal metric names, and
// byte-deterministic output regardless of registration order.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace redundancy::obs {
namespace {

struct Sample {
  std::string name;    ///< family member, e.g. foo_bucket
  std::string labels;  ///< raw text between {} (may be empty)
  double value = 0.0;
};

struct Exposition {
  std::set<std::string> helped;            ///< names with a # HELP line
  std::map<std::string, std::string> type; ///< name -> counter|histogram
  std::vector<Sample> samples;             ///< in output order
};

/// ASSERT_* needs a void-returning function, hence the out-parameter.
void parse(const std::string& text, Exposition& exp) {
  std::istringstream in{text};
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      exp.helped.insert(rest.substr(0, rest.find(' ')));
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const auto space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      exp.type[rest.substr(0, space)] = rest.substr(space + 1);
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment line: " << line;
    Sample s;
    auto brace = line.find('{');
    if (brace != std::string::npos) {
      const auto close = line.find('}', brace);
      ASSERT_NE(close, std::string::npos) << line;
      s.name = line.substr(0, brace);
      s.labels = line.substr(brace + 1, close - brace - 1);
      s.value = std::stod(line.substr(close + 2));
    } else {
      const auto space = line.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      s.name = line.substr(0, space);
      s.value = std::stod(line.substr(space + 1));
    }
    exp.samples.push_back(std::move(s));
  }
}

bool legal_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Strip the histogram/counter member suffix to get the TYPE'd family name.
std::string family_of(const std::string& sample_name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s{suffix};
    if (sample_name.size() > s.size() &&
        sample_name.compare(sample_name.size() - s.size(), s.size(), s) == 0) {
      const std::string fam = sample_name.substr(0, sample_name.size() -
                                                        s.size());
      return fam;
    }
  }
  return sample_name;
}

/// The `le` value of a bucket label set, and the labels without it.
std::pair<std::string, std::string> split_le(const std::string& labels) {
  const auto pos = labels.find("le=\"");
  if (pos == std::string::npos) return {"", labels};
  const auto end = labels.find('"', pos + 4);
  std::string le = labels.substr(pos + 4, end - pos - 4);
  std::string rest = labels;
  // le is rendered last, so also drop a preceding comma.
  rest.erase(pos > 0 ? pos - 1 : pos);
  return {le, rest};
}

class PrometheusConformance : public ::testing::Test {
 protected:
  PrometheusConformance() {
    reg_.counter("conformance.requests", "nvp").add(5);
    reg_.counter("conformance.requests", "recovery_blocks").add(2);
    reg_.counter("conformance.unlabelled").add(1);
    auto& h = reg_.histogram("conformance.latency_ns", "nvp");
    for (std::uint64_t v : {1, 2, 3, 100, 5'000, 70'000, 70'001}) h.record(v);
    reg_.histogram("conformance.latency_ns", "self_checking").record(9);
    reg_.histogram("conformance.empty_hist");  // zero samples
    reg_.gauge("conformance.burn_rate", "nvp").set(3.5);
    reg_.gauge("conformance.budget").set(-0.25);  // gauges may go negative
  }

  MetricsRegistry reg_;
};

TEST_F(PrometheusConformance, EveryFamilyHasHelpAndTypeBeforeSamples) {
  Exposition exp;
  parse(reg_.render_prometheus_text(), exp);
  ASSERT_FALSE(exp.samples.empty());
  for (const Sample& s : exp.samples) {
    const std::string fam =
        exp.type.count(s.name) ? s.name : family_of(s.name);
    EXPECT_TRUE(exp.type.count(fam)) << "no # TYPE for " << s.name;
    EXPECT_TRUE(exp.helped.count(fam)) << "no # HELP for " << s.name;
  }
}

TEST_F(PrometheusConformance, CountersAreTotalSuffixedAndTyped) {
  Exposition exp;
  parse(reg_.render_prometheus_text(), exp);
  for (const auto& [name, type] : exp.type) {
    EXPECT_TRUE(type == "counter" || type == "histogram" || type == "gauge")
        << name;
    if (type == "counter") {
      EXPECT_TRUE(name.size() > 6 &&
                  name.compare(name.size() - 6, 6, "_total") == 0)
          << "counter family not _total-suffixed: " << name;
    }
  }
  EXPECT_EQ(exp.type.at("conformance_requests_total"), "counter");
  EXPECT_EQ(exp.type.at("conformance_latency_ns"), "histogram");
  EXPECT_EQ(exp.type.at("conformance_burn_rate"), "gauge");
}

TEST_F(PrometheusConformance, GaugesExposeTheCurrentValueNotACumulative) {
  reg_.gauge("conformance.burn_rate", "nvp").set(14.4);  // overwrite, not add
  Exposition exp;
  parse(reg_.render_prometheus_text(), exp);
  bool labelled = false, negative = false;
  for (const Sample& s : exp.samples) {
    if (s.name == "conformance_burn_rate" &&
        s.labels == "technique=\"nvp\"") {
      labelled = true;
      EXPECT_DOUBLE_EQ(s.value, 14.4);
    }
    if (s.name == "conformance_budget") {
      negative = true;
      EXPECT_DOUBLE_EQ(s.value, -0.25);
    }
  }
  EXPECT_TRUE(labelled);
  EXPECT_TRUE(negative);
}

TEST_F(PrometheusConformance, MetricAndLabelNamesAreLegal) {
  Exposition exp;
  parse(reg_.render_prometheus_text(), exp);
  for (const Sample& s : exp.samples) {
    EXPECT_TRUE(legal_metric_name(s.name)) << s.name;
    if (!s.labels.empty()) {
      EXPECT_TRUE(s.labels.rfind("technique=\"", 0) == 0 ||
                  s.labels.rfind("le=\"", 0) == 0)
          << s.labels;
    }
  }
}

TEST_F(PrometheusConformance, HistogramBucketsAreCumulativeAndBounded) {
  Exposition exp;
  parse(reg_.render_prometheus_text(), exp);

  // series labels -> ascending (le, cumulative count) in output order.
  std::map<std::string, std::vector<std::pair<std::string, double>>> buckets;
  std::map<std::string, double> sums, counts;
  for (const Sample& s : exp.samples) {
    const std::string fam = family_of(s.name);
    if (exp.type.count(fam) == 0 || exp.type.at(fam) != "histogram") continue;
    if (s.name == fam + "_bucket") {
      auto [le, rest] = split_le(s.labels);
      buckets[fam + "{" + rest + "}"].emplace_back(le, s.value);
    } else if (s.name == fam + "_sum") {
      sums[fam + "{" + s.labels + "}"] = s.value;
    } else if (s.name == fam + "_count") {
      counts[fam + "{" + s.labels + "}"] = s.value;
    }
  }
  ASSERT_FALSE(buckets.empty());
  for (const auto& [series, bs] : buckets) {
    ASSERT_FALSE(bs.empty()) << series;
    // +Inf must close the series and match _count; counts must be
    // cumulative (non-decreasing) and le strictly increasing.
    EXPECT_EQ(bs.back().first, "+Inf") << series;
    ASSERT_TRUE(counts.count(series)) << series;
    ASSERT_TRUE(sums.count(series)) << series;
    EXPECT_EQ(bs.back().second, counts.at(series)) << series;
    long double prev_le = -1.0L;
    double prev_count = -1.0;
    for (const auto& [le, cumulative] : bs) {
      if (le != "+Inf") {
        const long double bound = std::stold(le);
        EXPECT_GT(bound, prev_le) << series;
        prev_le = bound;
      }
      EXPECT_GE(cumulative, prev_count) << series;
      prev_count = cumulative;
    }
  }

  // The labelled series carries exactly the recorded samples.
  const std::string series = "conformance_latency_ns{technique=\"nvp\"}";
  EXPECT_EQ(counts.at(series), 7.0);
  EXPECT_EQ(sums.at(series), 1.0 + 2 + 3 + 100 + 5'000 + 70'000 + 70'001);
}

TEST_F(PrometheusConformance, RenderIsByteDeterministic) {
  EXPECT_EQ(reg_.render_prometheus_text(), reg_.render_prometheus_text());

  // Same metrics registered in the opposite order render identically: the
  // exposition is sorted by (family, technique), not registration order.
  MetricsRegistry a, b;
  a.counter("order.requests", "nvp").add(3);
  a.counter("order.requests", "self_checking").add(4);
  a.histogram("order.latency", "nvp").record(17);
  a.gauge("order.burn", "nvp").set(2.0);
  a.gauge("order.burn", "self_checking").set(6.0);
  b.gauge("order.burn", "self_checking").set(6.0);
  b.histogram("order.latency", "nvp").record(17);
  b.counter("order.requests", "self_checking").add(4);
  b.gauge("order.burn", "nvp").set(2.0);
  b.counter("order.requests", "nvp").add(3);
  EXPECT_EQ(a.render_prometheus_text(), b.render_prometheus_text());
}

}  // namespace
}  // namespace redundancy::obs
