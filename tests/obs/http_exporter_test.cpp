// obs::HttpExporter tests drive the real server over a loopback socket: a
// raw POSIX-socket client sends the request bytes and reads until EOF, so
// what is asserted is the exact wire behaviour a scraper sees.
#include "obs/http_exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "obs/obs.hpp"

namespace redundancy::obs {
namespace {

struct Reply {
  int status = 0;
  std::string head;  ///< status line + headers
  std::string body;
};

/// Send `request` verbatim to 127.0.0.1:port, read to EOF, split the reply.
Reply raw_request(std::uint16_t port, const std::string& request) {
  Reply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto split = raw.find("\r\n\r\n");
  if (split == std::string::npos) return reply;
  reply.head = raw.substr(0, split);
  reply.body = raw.substr(split + 4);
  if (reply.head.rfind("HTTP/1.1 ", 0) == 0) {
    reply.status = std::atoi(reply.head.c_str() + 9);
  }
  return reply;
}

Reply http_get(std::uint16_t port, const std::string& target) {
  return raw_request(port, "GET " + target +
                               " HTTP/1.1\r\nHost: localhost\r\n"
                               "Connection: close\r\n\r\n");
}

/// First sample value for `series` (an exact exposition key like
/// `foo_sum{technique="x"}`) in a Prometheus text body; -1 if absent.
double sample_value(const std::string& body, const std::string& series) {
  std::istringstream in{body};
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(series + " ", 0) == 0) {
      return std::stod(line.substr(series.size() + 1));
    }
  }
  return -1.0;
}

TEST(HttpExporter, StartsOnEphemeralPortAndStopsGracefully) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start({}));
  EXPECT_TRUE(exporter.running());
  EXPECT_NE(exporter.port(), 0);
  const std::uint16_t port = exporter.port();
  exporter.stop();
  EXPECT_FALSE(exporter.running());
  exporter.stop();  // idempotent

  // The listen socket is gone: a fresh GET cannot get an answer.
  const Reply after = http_get(port, "/metrics");
  EXPECT_EQ(after.status, 0);
}

TEST(HttpExporter, MetricsBodyMatchesInProcessHistogramSnapshot) {
  auto& hist = histogram("http_exporter_test.latency_ns", "nvp");
  auto& requests = counter("http_exporter_test.requests", "nvp");
  hist.record(100);
  hist.record(900);
  hist.record(70'000);
  requests.add(3);
  const HistogramSnapshot snap = hist.snapshot();
  const std::uint64_t total = requests.total();

  HttpExporter exporter;
  ASSERT_TRUE(exporter.start({}));
  const Reply reply = http_get(exporter.port(), "/metrics");
  ASSERT_EQ(reply.status, 200);
  EXPECT_NE(reply.head.find("text/plain; version=0.0.4"), std::string::npos);

  // The acceptance check: the scraped histogram agrees with the live
  // obs::Histogram snapshot, exactly.
  const std::string fam = "http_exporter_test_latency_ns";
  EXPECT_EQ(sample_value(reply.body, fam + "_sum{technique=\"nvp\"}"),
            static_cast<double>(snap.sum));
  EXPECT_EQ(sample_value(reply.body, fam + "_count{technique=\"nvp\"}"),
            static_cast<double>(snap.count));
  EXPECT_EQ(sample_value(reply.body,
                         "http_exporter_test_requests_total"
                         "{technique=\"nvp\"}"),
            static_cast<double>(total));
  EXPECT_GE(exporter.requests_served(), 1u);
}

TEST(HttpExporter, CustomHandlersServeHealthzAndTraces) {
  HttpExporter::Options options;
  options.healthz_handler = [] {
    return HttpResponse{503, "text/plain; charset=utf-8", "status: failing\n"};
  };
  options.traces_handler = [](std::size_t n) {
    return HttpResponse{200, "application/x-ndjson",
                        "tail=" + std::to_string(n) + "\n"};
  };
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start(std::move(options)));

  const Reply health = http_get(exporter.port(), "/healthz");
  EXPECT_EQ(health.status, 503);
  EXPECT_EQ(health.body, "status: failing\n");

  const Reply traces = http_get(exporter.port(), "/traces?n=7");
  EXPECT_EQ(traces.status, 200);
  EXPECT_EQ(traces.body, "tail=7\n");
  EXPECT_NE(traces.head.find("application/x-ndjson"), std::string::npos);

  // Default tail when no n= is given.
  const Reply defaulted = http_get(exporter.port(), "/traces");
  EXPECT_EQ(defaulted.body, "tail=32\n");
}

TEST(HttpExporter, DefaultHealthzIsOkAndDefaultTracesIs404) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start({}));
  const Reply health = http_get(exporter.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");
  EXPECT_EQ(http_get(exporter.port(), "/traces").status, 404);
  EXPECT_EQ(http_get(exporter.port(), "/nope").status, 404);
}

TEST(HttpExporter, RejectsNonGetAndMalformedRequests) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start({}));
  const Reply post = raw_request(
      exporter.port(),
      "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(post.status, 405);
  const Reply garbage = raw_request(exporter.port(), "garbage\r\n\r\n");
  EXPECT_EQ(garbage.status, 400);
}

TEST(HttpExporter, ExplicitPortIsHonoured) {
  HttpExporter first;
  ASSERT_TRUE(first.start({}));
  // Re-binding the same port must fail while `first` holds it.
  HttpExporter second;
  HttpExporter::Options options;
  options.port = first.port();
  EXPECT_FALSE(second.start(std::move(options)));
}

TEST(HttpExporter, OversizedRequestGets400NotConnectionDrop) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start({}));
  // A request head larger than the 8 KiB cap must still produce an HTTP
  // reply; a silent close would leave status == 0 here.
  std::string request = "GET /metrics HTTP/1.1\r\nX-Filler: ";
  request.append(10'000, 'x');
  request += "\r\n\r\n";
  const Reply reply = raw_request(exporter.port(), request);
  EXPECT_EQ(reply.status, 400);
  EXPECT_EQ(reply.body, "request too large\n");
}

TEST(HttpExporter, StalledSenderGets408NotConnectionDrop) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start({}));
  // Send an incomplete head and then go quiet: the server must answer 408
  // after its read deadline instead of dropping the connection.
  const Reply reply =
      raw_request(exporter.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n");
  EXPECT_EQ(reply.status, 408);
  EXPECT_EQ(reply.body, "request timeout\n");
}

TEST(HttpExporter, RestartsBackToBackOnTheSamePort) {
  // The port-reuse regression: stop() leaves the socket in TIME_WAIT-ish
  // states that, without SO_REUSEADDR, make an immediate re-bind of the
  // same port flake. Cycle the same exporter object and a fresh one
  // through the identical fixed port.
  HttpExporter first;
  ASSERT_TRUE(first.start({}));
  const std::uint16_t port = first.port();
  EXPECT_EQ(http_get(port, "/healthz").status, 200);
  first.stop();

  HttpExporter::Options reuse;
  reuse.port = port;
  ASSERT_TRUE(first.start(std::move(reuse)));
  EXPECT_EQ(first.port(), port);
  EXPECT_EQ(http_get(port, "/healthz").status, 200);
  first.stop();

  HttpExporter second;
  HttpExporter::Options options;
  options.port = port;
  ASSERT_TRUE(second.start(std::move(options)));
  EXPECT_EQ(http_get(port, "/healthz").status, 200);
}

}  // namespace
}  // namespace redundancy::obs
