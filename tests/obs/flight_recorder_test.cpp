// obs::FlightRecorder: the black-box ring — record/dump round-trip, ring
// wrap, and the crash path: a forked child SIGSEGVs and the parent parses
// the dump the signal handler appended.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/recorder.hpp"  // kCompiledIn
#include "tracetool/trace_model.hpp"

namespace redundancy::obs {
namespace {

namespace tt = redundancy::tracetool;

// The recorder is a process-wide singleton whose ring capacity is fixed by
// the FIRST enable(); every test here uses the same size so ordering does
// not matter.
constexpr std::size_t kRing = 256;

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "obs compiled out (REDUNDANCY_OBS_NOOP)";
    FlightRecorder::instance().enable(kRing);
    FlightRecorder::instance().reset();
  }
  void TearDown() override {
    if (kCompiledIn) FlightRecorder::instance().disable();
  }
};

tt::FlightDump parse(const std::string& jsonl) {
  std::istringstream in{jsonl};
  tt::FlightDump dump;
  tt::load_flight(in, dump);
  return dump;
}

TEST_F(FlightRecorderTest, RecordDumpRoundTripThroughTracetool) {
  auto& fr = FlightRecorder::instance();
  EXPECT_TRUE(flight_enabled());
  fr.record(FlightKind::mark, "checkpoint", /*trace=*/7, /*a=*/1, /*b=*/2,
            /*ok=*/true);
  fr.record(FlightKind::gateway, "/vote", 9, 503, 1'000'000, false);

  const tt::FlightDump dump = parse(fr.dump_jsonl());
  EXPECT_EQ(dump.malformed_lines, 0u);
  EXPECT_EQ(dump.records_per_thread, fr.records_per_thread());
  ASSERT_EQ(dump.events.size(), 2u);
  EXPECT_EQ(dump.events[0].kind, "mark");
  EXPECT_EQ(dump.events[0].name, "checkpoint");
  EXPECT_EQ(dump.events[0].trace, 7u);
  EXPECT_TRUE(dump.events[0].ok);
  EXPECT_EQ(dump.events[1].kind, "gateway");
  EXPECT_EQ(dump.events[1].a, 503u);
  EXPECT_FALSE(dump.events[1].ok);
  // Dump is time-sorted.
  EXPECT_LE(dump.events[0].t_ns, dump.events[1].t_ns);

  const std::string md = tt::flight_markdown(dump, 8);
  EXPECT_NE(md.find("checkpoint"), std::string::npos);
  EXPECT_NE(md.find("gateway"), std::string::npos);
}

TEST_F(FlightRecorderTest, RingWrapKeepsTheNewestRecords) {
  auto& fr = FlightRecorder::instance();
  const std::size_t cap = fr.records_per_thread();
  for (std::uint64_t i = 0; i < cap + 50; ++i) {
    fr.record(FlightKind::mark, "wrap", 0, /*a=*/i, 0, true);
  }
  const tt::FlightDump dump = parse(fr.dump_jsonl());
  ASSERT_EQ(dump.events.size(), cap);
  // Oldest surviving record is exactly 50 past the start; newest is last.
  EXPECT_EQ(dump.events.front().a, 50u);
  EXPECT_EQ(dump.events.back().a, cap + 49u);
}

TEST_F(FlightRecorderTest, DisabledRecordIsANoOp) {
  auto& fr = FlightRecorder::instance();
  fr.disable();
  EXPECT_FALSE(flight_enabled());
  if (flight_enabled()) return;  // belt and braces
  // Call sites gate on flight_enabled(); a direct record() while disabled
  // still works (the switch only guards the hot path), so emulate the call
  // site contract here: nothing recorded.
  const tt::FlightDump dump = parse(fr.dump_jsonl());
  EXPECT_TRUE(dump.events.empty());
}

TEST_F(FlightRecorderTest, SpanAndAdjudicationHooks) {
  auto& fr = FlightRecorder::instance();
  SpanRecord span;
  span.name = "nvp.variant";
  span.trace_id = 42;
  span.span_id = 5;
  span.t_start_ns = 100;
  span.t_end_ns = 1100;
  span.ok = true;
  fr.record_span(span);

  AdjudicationEvent verdict;
  verdict.technique = "nvp";
  verdict.trace_id = 42;
  verdict.electorate = 3;
  verdict.ballots_failed = 1;
  verdict.accepted = true;
  fr.record_adjudication(verdict);

  const tt::FlightDump dump = parse(fr.dump_jsonl());
  ASSERT_EQ(dump.events.size(), 2u);
  EXPECT_EQ(dump.events[0].kind, "span");
  EXPECT_EQ(dump.events[0].a, 1000u);  // duration
  EXPECT_EQ(dump.events[1].kind, "adjudication");
  EXPECT_EQ(dump.events[1].a, 1u);  // ballots_failed
  EXPECT_EQ(dump.events[1].b, 3u);  // electorate
  EXPECT_EQ(dump.events[1].trace, 42u);
}

TEST_F(FlightRecorderTest, LongNamesAreTruncatedNotCorrupted) {
  auto& fr = FlightRecorder::instance();
  const std::string long_name(100, 'x');
  fr.record(FlightKind::mark, long_name, 0, 0, 0, true);
  const tt::FlightDump dump = parse(fr.dump_jsonl());
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_EQ(dump.events[0].name, std::string(29, 'x'));
}

TEST_F(FlightRecorderTest, CrashHandlerAppendsAParseableDump) {
  const char* path = "flight_crash_test.dump.jsonl";
  std::remove(path);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: leave some breadcrumbs, then die on a null write. The crash
    // handler must append the dump and re-raise so we exit via SIGSEGV.
    auto& fr = FlightRecorder::instance();
    fr.install_crash_handler(path);
    for (std::uint64_t i = 0; i < 1000; ++i) {
      fr.record(FlightKind::mark, "crumb", 0, /*a=*/i, 0, true);
    }
    volatile int* boom = nullptr;
    *boom = 1;     // SIGSEGV
    _exit(0);      // not reached
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child should die by signal";
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  std::ifstream in{path};
  ASSERT_TRUE(in.is_open()) << "crash handler wrote no dump";
  tt::FlightDump dump;
  tt::load_flight(in, dump);
  EXPECT_EQ(dump.malformed_lines, 0u);
  ASSERT_FALSE(dump.events.empty());

  // The ring holds the newest `cap` crumbs: 1000 were written, so the
  // highest payload must be 999 and the crumb count exactly the capacity.
  std::size_t crumbs = 0;
  std::uint64_t max_a = 0;
  for (const auto& e : dump.events) {
    if (e.kind == "mark" && e.name == "crumb") {
      ++crumbs;
      if (e.a > max_a) max_a = e.a;
    }
  }
  EXPECT_EQ(crumbs, dump.records_per_thread);
  EXPECT_EQ(max_a, 999u);
  std::remove(path);
}

}  // namespace
}  // namespace redundancy::obs
