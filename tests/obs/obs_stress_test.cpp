// Stress: tracing under threaded parallel evaluation with work stealing.
// Meant for -DREDUNDANCY_SANITIZE=thread builds (ctest -L stress).
//
// Several requester threads each drive their own 3-variant engine; variant
// tasks fan out on the shared work-stealing pool, so spans for one request
// finish on arbitrary workers. Afterwards every variant span must still
// point at a request span of the same trace (causality survives stealing),
// and the always-on counters must equal the exact request count.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/parallel_evaluation.hpp"
#include "core/voters.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace redundancy {
namespace {

constexpr std::size_t kRequesters = 4;
constexpr std::size_t kRequestsEach = 64;
constexpr std::size_t kVariants = 3;

core::ParallelEvaluation<int, int> make_engine() {
  std::vector<core::Variant<int, int>> variants;
  for (std::size_t i = 0; i < kVariants; ++i) {
    variants.push_back(core::make_variant<int, int>(
        "v" + std::to_string(i),
        [](const int& x) -> core::Result<int> { return x + 1; }));
  }
  return core::ParallelEvaluation<int, int>(std::move(variants),
                                            core::majority_voter<int>(),
                                            core::Concurrency::threaded);
}

TEST(ObsStress, SpanTreeAndCountersSurviveWorkStealing) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "obs compiled out (REDUNDANCY_OBS_NOOP)";
  }
  auto& rec = obs::Recorder::instance();
  auto sink = std::make_shared<obs::CollectingSink>();
  rec.clear_sinks();
  rec.add_sink(sink);
  rec.set_sample_every(1);
  rec.set_enabled(true);

  auto& requests = obs::counter("technique.requests", "parallel_evaluation");
  auto& latency = obs::histogram("technique.request_ns",
                                 "parallel_evaluation");
  const std::uint64_t req0 = requests.total();
  const std::uint64_t lat0 = latency.count();

  std::vector<std::thread> requesters;
  requesters.reserve(kRequesters);
  for (std::size_t t = 0; t < kRequesters; ++t) {
    requesters.emplace_back([] {
      auto engine = make_engine();
      for (std::size_t i = 0; i < kRequestsEach; ++i) {
        auto out = engine.run(static_cast<int>(i));
        ASSERT_TRUE(out.has_value());
        ASSERT_EQ(out.value(), static_cast<int>(i) + 1);
      }
    });
  }
  for (auto& t : requesters) t.join();
  util::ThreadPool::shared().wait_idle();
  rec.flush();
  rec.set_enabled(false);
  rec.clear_sinks();

  constexpr std::uint64_t kTotal = kRequesters * kRequestsEach;
  // Counters are exact whatever the interleaving.
  EXPECT_EQ(requests.total() - req0, kTotal);
  EXPECT_EQ(latency.count() - lat0, kTotal);

  // Index request spans, then check every variant span hangs off one.
  std::map<std::uint64_t, const obs::SpanRecord*> request_spans;  // span id ->
  std::size_t variant_spans = 0;
  for (const auto& s : sink->spans()) {
    if (s.name == "parallel_evaluation") {
      EXPECT_EQ(s.parent_id, 0u);  // always a root
      request_spans.emplace(s.span_id, &s);
    }
  }
  EXPECT_EQ(request_spans.size(), kTotal);
  for (const auto& s : sink->spans()) {
    if (s.name != "variant") continue;
    ++variant_spans;
    auto it = request_spans.find(s.parent_id);
    ASSERT_NE(it, request_spans.end())
        << "variant span " << s.span_id << " has no request parent";
    EXPECT_EQ(s.trace_id, it->second->trace_id)
        << "parent edge crossed traces";
    EXPECT_TRUE(s.ok);
  }
  EXPECT_EQ(variant_spans, kTotal * kVariants);

  // One join_all vote per request, each seeing the full electorate.
  EXPECT_EQ(sink->adjudications().size(), kTotal);
  for (const auto& a : sink->adjudications()) {
    EXPECT_EQ(a.electorate, kVariants);
    EXPECT_EQ(a.ballots_seen, kVariants);
    EXPECT_EQ(a.ballots_failed, 0u);
    EXPECT_TRUE(a.accepted);
    EXPECT_NE(request_spans.find(a.parent_id), request_spans.end());
  }
}

}  // namespace
}  // namespace redundancy
