// obs::Recorder end-to-end: a traced 3-variant NVP request round-trips
// through the JSONL sink and back through a schema-checking parser; sampling
// suppresses whole traces; span parentage survives explicit-context
// propagation across threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/variant.hpp"
#include "obs/obs.hpp"
#include "techniques/nvp.hpp"

namespace redundancy::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser for one flat object per line — just enough to
// schema-check the trace without a JSON dependency.

struct JsonValue {
  enum class Kind { string, number, boolean } kind = Kind::string;
  std::string str;
  std::uint64_t num = 0;
  bool b = false;
};

using JsonObject = std::map<std::string, JsonValue>;

/// Parses a flat {"k": v, ...} object; returns false on malformed input.
bool parse_flat_json(const std::string& line, JsonObject& out) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  auto parse_string = [&](std::string& s) {
    if (line[i] != '"') return false;
    ++i;
    s.clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        if (++i >= line.size()) return false;
        switch (line[i]) {
          case 'n': s.push_back('\n'); break;
          case 't': s.push_back('\t'); break;
          case 'r': s.push_back('\r'); break;
          case 'u':
            if (i + 4 >= line.size()) return false;
            s.push_back(static_cast<char>(
                std::stoi(line.substr(i + 1, 4), nullptr, 16)));
            i += 4;
            break;
          default: s.push_back(line[i]);
        }
      } else {
        s.push_back(line[i]);
      }
      ++i;
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') return true;
  while (i < line.size()) {
    skip_ws();
    std::string key;
    if (!parse_string(key)) return false;
    skip_ws();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws();
    JsonValue v;
    if (line[i] == '"') {
      v.kind = JsonValue::Kind::string;
      if (!parse_string(v.str)) return false;
    } else if (line.compare(i, 4, "true") == 0) {
      v.kind = JsonValue::Kind::boolean;
      v.b = true;
      i += 4;
    } else if (line.compare(i, 5, "false") == 0) {
      v.kind = JsonValue::Kind::boolean;
      v.b = false;
      i += 5;
    } else {
      v.kind = JsonValue::Kind::number;
      std::size_t start = i;
      while (i < line.size() &&
             ((line[i] >= '0' && line[i] <= '9') || line[i] == '-')) {
        ++i;
      }
      if (i == start) return false;
      v.num = std::stoull(line.substr(start, i - start));
    }
    out[key] = std::move(v);
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  skip_ws();
  return i < line.size() && line[i] == '}';
}

// ---------------------------------------------------------------------------

class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "obs compiled out (REDUNDANCY_OBS_NOOP)";
    auto& rec = Recorder::instance();
    rec.clear_sinks();
    rec.set_sample_every(1);
    rec.set_enabled(true);
  }
  void TearDown() override {
    auto& rec = Recorder::instance();
    rec.set_enabled(false);
    rec.clear_sinks();
    rec.set_sample_every(1);
  }
};

techniques::NVersionProgramming<int, int> make_nvp() {
  std::vector<core::Variant<int, int>> versions;
  for (int i = 0; i < 3; ++i) {
    versions.push_back(core::make_variant<int, int>(
        "version-" + std::to_string(i),
        [](const int& x) -> core::Result<int> { return x * 2; }));
  }
  return techniques::NVersionProgramming<int, int>(std::move(versions));
}

void expect_number(const JsonObject& o, const std::string& key) {
  auto it = o.find(key);
  ASSERT_NE(it, o.end()) << "missing field " << key;
  EXPECT_EQ(it->second.kind, JsonValue::Kind::number) << key;
}

void expect_string(const JsonObject& o, const std::string& key) {
  auto it = o.find(key);
  ASSERT_NE(it, o.end()) << "missing field " << key;
  EXPECT_EQ(it->second.kind, JsonValue::Kind::string) << key;
}

void expect_boolean(const JsonObject& o, const std::string& key) {
  auto it = o.find(key);
  ASSERT_NE(it, o.end()) << "missing field " << key;
  EXPECT_EQ(it->second.kind, JsonValue::Kind::boolean) << key;
}

TEST_F(RecorderTest, JsonlNvpRequestRoundTripsWithValidSchema) {
  std::ostringstream trace;
  Recorder::instance().add_sink(std::make_shared<JsonlTraceSink>(trace));

  auto nvp = make_nvp();
  auto out = nvp.run(21);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 42);
  Recorder::instance().flush();

  std::vector<JsonObject> spans;
  std::vector<JsonObject> adjudications;
  std::istringstream lines{trace.str()};
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    JsonObject obj;
    ASSERT_TRUE(parse_flat_json(line, obj)) << "bad JSONL line: " << line;
    ASSERT_TRUE(obj.count("type")) << line;
    if (obj["type"].str == "span") {
      expect_number(obj, "trace");
      expect_number(obj, "span");
      expect_number(obj, "parent");
      expect_number(obj, "t_start_ns");
      expect_number(obj, "t_end_ns");
      expect_boolean(obj, "ok");
      expect_string(obj, "name");
      expect_string(obj, "detail");
      EXPECT_GE(obj["t_end_ns"].num, obj["t_start_ns"].num);
      spans.push_back(std::move(obj));
    } else if (obj["type"].str == "adjudication") {
      expect_number(obj, "trace");
      expect_number(obj, "parent");
      expect_number(obj, "t_ns");
      expect_number(obj, "round");
      expect_number(obj, "electorate");
      expect_number(obj, "ballots_seen");
      expect_number(obj, "ballots_failed");
      expect_number(obj, "stragglers_cancelled");
      expect_boolean(obj, "accepted");
      expect_string(obj, "technique");
      expect_string(obj, "verdict");
      expect_string(obj, "winner");
      adjudications.push_back(std::move(obj));
    } else {
      FAIL() << "unknown record type in " << line;
    }
  }

  // One request span, three variant spans, one vote — all in one trace.
  ASSERT_EQ(spans.size(), 4u);
  ASSERT_EQ(adjudications.size(), 1u);
  const JsonObject* root = nullptr;
  for (auto& s : spans) {
    if (s.at("name").str == "nvp") root = &s;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->at("parent").num, 0u);
  EXPECT_TRUE(root->at("ok").b);
  std::size_t variants = 0;
  for (const auto& s : spans) {
    EXPECT_EQ(s.at("trace").num, root->at("trace").num);
    if (&s == root) continue;
    EXPECT_EQ(s.at("name").str, "variant");
    EXPECT_EQ(s.at("parent").num, root->at("span").num);
    EXPECT_TRUE(s.at("ok").b);
    EXPECT_EQ(s.at("detail").str.rfind("version-", 0), 0u);
    EXPECT_GE(s.at("t_start_ns").num, root->at("t_start_ns").num);
    ++variants;
  }
  EXPECT_EQ(variants, 3u);
  const JsonObject& vote = adjudications[0];
  EXPECT_EQ(vote.at("trace").num, root->at("trace").num);
  EXPECT_EQ(vote.at("parent").num, root->at("span").num);
  EXPECT_EQ(vote.at("technique").str, "nvp");
  EXPECT_EQ(vote.at("electorate").num, 3u);
  EXPECT_EQ(vote.at("ballots_seen").num, 3u);
  EXPECT_EQ(vote.at("ballots_failed").num, 0u);
  EXPECT_TRUE(vote.at("accepted").b);
  EXPECT_EQ(vote.at("verdict").str, "ok");

  // Drop the sink before `trace` leaves scope: the sink's destructor
  // flushes its stream, and TearDown's clear_sinks() would otherwise run
  // it against a destroyed ostringstream (caught as a SEGV under TSan).
  Recorder::instance().clear_sinks();
}

TEST_F(RecorderTest, SamplingSuppressesWholeTraces) {
  auto sink = std::make_shared<CollectingSink>();
  Recorder::instance().add_sink(sink);
  Recorder::instance().set_sample_every(4);

  auto nvp = make_nvp();
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(nvp.run(i).has_value());
  Recorder::instance().flush();

  // Exactly 2 of 8 consecutive roots are drawn at 1-in-4, whatever the
  // global phase; descendants of unsampled roots are suppressed with them.
  std::size_t roots = 0;
  std::size_t variants = 0;
  for (const auto& s : sink->spans()) {
    if (s.name == "nvp") ++roots;
    if (s.name == "variant") ++variants;
  }
  EXPECT_EQ(roots, 2u);
  EXPECT_EQ(variants, 3 * roots);
  EXPECT_EQ(sink->adjudications().size(), roots);
}

TEST_F(RecorderTest, DisabledRecorderEmitsNothing) {
  auto sink = std::make_shared<CollectingSink>();
  Recorder::instance().add_sink(sink);
  Recorder::instance().set_enabled(false);

  auto nvp = make_nvp();
  ASSERT_TRUE(nvp.run(1).has_value());
  Recorder::instance().flush();
  EXPECT_TRUE(sink->spans().empty());
  EXPECT_TRUE(sink->adjudications().empty());
}

TEST_F(RecorderTest, CountersAccrueEvenWithoutSinks) {
  // Metrics are always-on when enabled; traces need a sink but counters
  // and histograms do not.
  auto& requests = counter("technique.requests", "nvp");
  auto& latency = histogram("technique.request_ns", "nvp");
  const std::uint64_t req0 = requests.total();
  const std::uint64_t lat0 = latency.count();

  auto nvp = make_nvp();
  ASSERT_TRUE(nvp.run(1).has_value());
  ASSERT_TRUE(nvp.run(2).has_value());
  EXPECT_EQ(requests.total() - req0, 2u);
  EXPECT_EQ(latency.count() - lat0, 2u);
}

TEST_F(RecorderTest, AmbientNestingLinksParentAndChild) {
  auto sink = std::make_shared<CollectingSink>();
  Recorder::instance().add_sink(sink);
  {
    ScopedSpan outer{"outer"};
    ScopedSpan inner{"inner"};
    inner.set_detail("nested");
  }
  Recorder::instance().flush();
  ASSERT_EQ(sink->spans().size(), 2u);
  const SpanRecord& inner = sink->spans()[0];  // closes first
  const SpanRecord& outer = sink->spans()[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.trace_id, outer.trace_id);
  EXPECT_EQ(inner.parent_id, outer.span_id);
}

TEST_F(RecorderTest, ExplicitContextCrossesThreads) {
  auto sink = std::make_shared<CollectingSink>();
  Recorder::instance().add_sink(sink);
  SpanContext root_ctx;
  {
    ScopedSpan root{"request"};
    root_ctx = root.context();
    std::thread worker([root_ctx] {
      ScopedSpan child{"work", root_ctx};
      child.set_ok(true);
    });
    worker.join();
  }
  Recorder::instance().flush();
  ASSERT_EQ(sink->spans().size(), 2u);
  const SpanRecord* child = nullptr;
  const SpanRecord* root = nullptr;
  for (const auto& s : sink->spans()) {
    if (s.name == "work") child = &s;
    if (s.name == "request") root = &s;
  }
  ASSERT_NE(child, nullptr);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(child->trace_id, root->trace_id);
  EXPECT_EQ(child->parent_id, root->span_id);
  EXPECT_EQ(root->span_id, root_ctx.span);
}

TEST_F(RecorderTest, InactiveContextMakesChildSilent) {
  auto sink = std::make_shared<CollectingSink>();
  Recorder::instance().add_sink(sink);
  {
    ScopedSpan child{"work", SpanContext{}};  // no parent: stays inactive
    EXPECT_FALSE(child.active());
  }
  Recorder::instance().flush();
  EXPECT_TRUE(sink->spans().empty());
}

}  // namespace
}  // namespace redundancy::obs
