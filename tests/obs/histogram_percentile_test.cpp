// HistogramSnapshot::percentile edge cases (satellite of the SLO work):
// empty snapshots, the p=0 / p=100 extremes, single-bucket mass, and
// determinism of merge() across shard orders — the property the windowed
// percentiles lean on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/histogram.hpp"

namespace redundancy::obs {
namespace {

TEST(HistogramPercentile, EmptySnapshotIsZeroAtEveryPercentile) {
  const HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(100.0), 0.0);
}

TEST(HistogramPercentile, ExtremesClampAndStayInsideTheOccupiedBucket) {
  Histogram h;
  // Four samples of 10 land in the [8, 16) bucket.
  for (int i = 0; i < 4; ++i) h.record(10);
  const HistogramSnapshot s = h.snapshot();

  // p=0 targets the first sample: strictly above the bucket's lower bound.
  const double p0 = s.percentile(0.0);
  EXPECT_GT(p0, 8.0);
  EXPECT_LT(p0, 16.0);
  // p=100 targets the last sample: exactly the bucket's upper bound.
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 16.0);
  // Out-of-range inputs clamp rather than misbehave.
  EXPECT_DOUBLE_EQ(s.percentile(-5.0), p0);
  EXPECT_DOUBLE_EQ(s.percentile(250.0), 16.0);
}

TEST(HistogramPercentile, SingleBucketMassInterpolatesLinearly) {
  Histogram h;
  for (int i = 0; i < 4; ++i) h.record(10);  // bucket [8, 16)
  const HistogramSnapshot s = h.snapshot();
  // rank(50) = 2 of 4 -> halfway through the bucket.
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 12.0);
  // rank(75) = 3 of 4 -> three quarters.
  EXPECT_DOUBLE_EQ(s.percentile(75.0), 14.0);
}

TEST(HistogramPercentile, ZeroAndOneShareTheFirstBucket) {
  Histogram h;
  h.record(0);
  h.record(1);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  // Bucket 0 spans [0, 1]; every percentile stays within it.
  EXPECT_GE(s.percentile(50.0), 0.0);
  EXPECT_LE(s.percentile(100.0), 1.0);
}

TEST(HistogramPercentile, MergeIsDeterministicAcrossShardOrders) {
  // Three "shards" with different shapes, merged in every order.
  Histogram a, b, c;
  for (int i = 0; i < 500; ++i) a.record(1'000);
  for (int i = 0; i < 300; ++i) b.record(100'000);
  for (int i = 0; i < 7; ++i) c.record(50'000'000);
  const HistogramSnapshot sa = a.snapshot();
  const HistogramSnapshot sb = b.snapshot();
  const HistogramSnapshot sc = c.snapshot();

  const std::vector<std::vector<const HistogramSnapshot*>> orders = {
      {&sa, &sb, &sc}, {&sa, &sc, &sb}, {&sb, &sa, &sc},
      {&sb, &sc, &sa}, {&sc, &sa, &sb}, {&sc, &sb, &sa},
  };
  HistogramSnapshot reference;
  bool first = true;
  for (const auto& order : orders) {
    HistogramSnapshot merged;
    for (const HistogramSnapshot* part : order) merged.merge(*part);
    EXPECT_EQ(merged.count, 807u);
    EXPECT_EQ(merged.sum, sa.sum + sb.sum + sc.sum);
    if (first) {
      reference = merged;
      first = false;
      continue;
    }
    for (std::size_t bucket = 0; bucket < HistogramSnapshot::kBuckets;
         ++bucket) {
      EXPECT_EQ(merged.buckets[bucket], reference.buckets[bucket]);
    }
    for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
      EXPECT_DOUBLE_EQ(merged.percentile(p), reference.percentile(p));
    }
  }
}

TEST(HistogramPercentile, MergedTailComesFromTheSlowShard) {
  Histogram fast, slow;
  for (int i = 0; i < 990; ++i) fast.record(1'000'000);        // 1ms
  for (int i = 0; i < 10; ++i) slow.record(1'000'000'000);     // 1s
  HistogramSnapshot merged = fast.snapshot();
  merged.merge(slow.snapshot());
  EXPECT_LT(merged.percentile(50.0), 3'000'000.0);
  EXPECT_GT(merged.percentile(99.5), 500'000'000.0);
}

}  // namespace
}  // namespace redundancy::obs
