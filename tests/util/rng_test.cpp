#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace redundancy::util {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  std::size_t equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

class RngBelowTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBelowTest, StaysBelowBoundAndCoversRange) {
  const std::uint64_t bound = GetParam();
  Rng rng{bound * 977 + 3};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(bound);
    ASSERT_LT(v, bound);
    seen.insert(v);
  }
  if (bound <= 16) EXPECT_EQ(seen.size(), bound);  // all values hit
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBelowTest,
                         ::testing::Values(1, 2, 3, 7, 16, 1000, 1'000'000));

TEST(Rng, BetweenIsInclusive) {
  Rng rng{11};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng{5};
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.chance(0.2) ? 1 : 0;
  EXPECT_NEAR(hits / 100'000.0, 0.2, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{5};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{13};
  double sum = 0.0;
  for (int i = 0; i < 200'000; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / 200'000.0, 4.0, 0.1);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng{17};
  double sum = 0.0, sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.1);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng{19};
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent{23};
  Rng child_a = parent.split();
  Rng child_b = parent.split();
  std::size_t equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child_a() == child_b()) ++equal;
  }
  EXPECT_LT(equal, 3u);
}

TEST(Rng, SplitmixIsDeterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace redundancy::util
