#include "util/chase_lev_deque.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace redundancy::util {
namespace {

TEST(ChaseLevDeque, PopIsLifoForTheOwner) {
  ChaseLevDeque<std::uintptr_t> d;
  for (std::uintptr_t i = 1; i <= 5; ++i) d.push(i);
  std::uintptr_t v = 0;
  for (std::uintptr_t expect = 5; expect >= 1; --expect) {
    ASSERT_TRUE(d.pop(v));
    EXPECT_EQ(v, expect);
  }
  EXPECT_FALSE(d.pop(v));
}

TEST(ChaseLevDeque, StealIsFifoFromTheTop) {
  ChaseLevDeque<std::uintptr_t> d;
  for (std::uintptr_t i = 1; i <= 5; ++i) d.push(i);
  std::uintptr_t v = 0;
  for (std::uintptr_t expect = 1; expect <= 5; ++expect) {
    ASSERT_TRUE(d.steal(v));
    EXPECT_EQ(v, expect);
  }
  EXPECT_FALSE(d.steal(v));
}

TEST(ChaseLevDeque, EmptyDequeRefusesBothEnds) {
  ChaseLevDeque<std::uintptr_t> d;
  std::uintptr_t v = 0;
  EXPECT_FALSE(d.pop(v));
  EXPECT_FALSE(d.steal(v));
  EXPECT_TRUE(d.empty_approx());
  EXPECT_EQ(d.size_approx(), 0u);
}

TEST(ChaseLevDeque, PopAndStealMeetInTheMiddle) {
  ChaseLevDeque<std::uintptr_t> d;
  for (std::uintptr_t i = 1; i <= 6; ++i) d.push(i);
  std::uintptr_t v = 0;
  ASSERT_TRUE(d.steal(v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 6u);
  ASSERT_TRUE(d.steal(v));
  EXPECT_EQ(v, 2u);
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 5u);
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 4u);
  // One element left: pop takes the contended single-element path (CAS).
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 3u);
  EXPECT_FALSE(d.pop(v));
  EXPECT_FALSE(d.steal(v));
}

TEST(ChaseLevDeque, GrowsPastInitialCapacityWithoutLoss) {
  ChaseLevDeque<std::uintptr_t> d{4};
  const std::size_t initial = d.capacity();
  const std::uintptr_t n = 1000;
  for (std::uintptr_t i = 1; i <= n; ++i) d.push(i);
  EXPECT_GT(d.capacity(), initial);
  EXPECT_EQ(d.size_approx(), n);
  std::uintptr_t v = 0;
  for (std::uintptr_t expect = n; expect >= 1; --expect) {
    ASSERT_TRUE(d.pop(v));
    ASSERT_EQ(v, expect);
  }
  EXPECT_FALSE(d.pop(v));
}

TEST(ChaseLevDeque, IndexWrapAroundKeepsOrder) {
  // Push/pop cycles advance top and bottom far beyond the capacity, so the
  // ring indices wrap many times; order must be preserved throughout.
  ChaseLevDeque<std::uintptr_t> d{8};
  std::uintptr_t v = 0;
  for (std::uintptr_t round = 0; round < 500; ++round) {
    d.push(round * 3 + 1);
    d.push(round * 3 + 2);
    d.push(round * 3 + 3);
    ASSERT_TRUE(d.steal(v));
    EXPECT_EQ(v, round * 3 + 1);
    ASSERT_TRUE(d.pop(v));
    EXPECT_EQ(v, round * 3 + 3);
    ASSERT_TRUE(d.pop(v));
    EXPECT_EQ(v, round * 3 + 2);
  }
  EXPECT_TRUE(d.empty_approx());
}

TEST(ChaseLevDeque, CapacityRoundsUpToPowerOfTwo) {
  ChaseLevDeque<std::uintptr_t> d{9};
  EXPECT_EQ(d.capacity(), 16u);
  ChaseLevDeque<std::uintptr_t> e{1};
  for (std::uintptr_t i = 0; i < 3; ++i) e.push(i);
  std::uintptr_t v = 0;
  ASSERT_TRUE(e.pop(v));
  EXPECT_EQ(v, 2u);
}

TEST(ChaseLevDeque, StoresPointers) {
  // The intended payload: TaskNode*-style pointers.
  ChaseLevDeque<int*> d;
  int a = 1;
  int b = 2;
  d.push(&a);
  d.push(&b);
  int* p = nullptr;
  ASSERT_TRUE(d.steal(p));
  EXPECT_EQ(p, &a);
  ASSERT_TRUE(d.pop(p));
  EXPECT_EQ(p, &b);
}

}  // namespace
}  // namespace redundancy::util
