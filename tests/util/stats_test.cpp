#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace redundancy::util {
namespace {

TEST(Accumulator, KnownValues) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.ci95(), 0.0);
}

TEST(Accumulator, MergeEqualsSequential) {
  Rng rng{3};
  Accumulator whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(5.0, 3.0);
    whole.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Proportion, ValueAndWilson) {
  Proportion p;
  for (int i = 0; i < 80; ++i) p.add(true);
  for (int i = 0; i < 20; ++i) p.add(false);
  EXPECT_DOUBLE_EQ(p.value(), 0.8);
  auto [lo, hi] = p.wilson95();
  EXPECT_LT(lo, 0.8);
  EXPECT_GT(hi, 0.8);
  EXPECT_GT(lo, 0.70);
  EXPECT_LT(hi, 0.88);
}

TEST(Proportion, EmptyIsVacuous) {
  Proportion p;
  EXPECT_EQ(p.value(), 0.0);
  auto [lo, hi] = p.wilson95();
  EXPECT_EQ(lo, 0.0);
  EXPECT_EQ(hi, 1.0);
}

TEST(Proportion, MergeEqualsSequential) {
  Proportion whole;
  Proportion left;
  Proportion right;
  for (int i = 0; i < 30; ++i) {
    const bool s = i % 3 != 0;
    whole.add(s);
    (i < 13 ? left : right).add(s);
  }
  left.merge(right);
  EXPECT_EQ(left.trials(), whole.trials());
  EXPECT_EQ(left.successes(), whole.successes());
  EXPECT_DOUBLE_EQ(left.value(), whole.value());
  EXPECT_EQ(left.wilson95(), whole.wilson95());
}

TEST(Proportion, MergeWithEmptyIsIdentity) {
  Proportion p;
  p.add(true);
  p.add(false);
  p.merge(Proportion{});
  EXPECT_EQ(p.trials(), 2u);
  EXPECT_EQ(p.successes(), 1u);
}

TEST(Histogram, PercentilesOfUniformData) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100'000; ++i) {
    h.add(static_cast<double>(i % 100) + 0.5);
  }
  EXPECT_NEAR(h.percentile(50), 50.0, 2.0);
  EXPECT_NEAR(h.percentile(90), 90.0, 2.0);
  EXPECT_NEAR(h.percentile(99), 99.0, 2.0);
}

TEST(Histogram, OverflowAndUnderflowClamp) {
  Histogram h{0.0, 10.0, 10};
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 10.0);
}

TEST(Histogram, AsciiRenders) {
  Histogram h{0.0, 4.0, 4};
  for (int i = 0; i < 10; ++i) h.add(1.5);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

// Property sweeps -----------------------------------------------------------

class StatsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsPropertyTest, HistogramPercentileIsMonotone) {
  Rng rng{GetParam()};
  Histogram h{0.0, 100.0, 32};
  const int n = 200 + static_cast<int>(rng.below(2000));
  for (int i = 0; i < n; ++i) h.add(rng.uniform(-10.0, 110.0));
  double prev = h.percentile(0);
  for (double p = 5; p <= 100; p += 5) {
    const double cur = h.percentile(p);
    ASSERT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

TEST_P(StatsPropertyTest, AccumulatorMergeIsOrderInsensitive) {
  Rng rng{GetParam() * 3 + 1};
  Accumulator a, b, c;
  Accumulator ab_c, a_bc;
  std::vector<double> va, vb, vc;
  for (int i = 0; i < 50; ++i) va.push_back(rng.normal(1, 2));
  for (int i = 0; i < 30; ++i) vb.push_back(rng.normal(-3, 1));
  for (int i = 0; i < 70; ++i) vc.push_back(rng.normal(10, 5));
  for (double v : va) a.add(v);
  for (double v : vb) b.add(v);
  for (double v : vc) c.add(v);
  // (a + b) + c
  ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  // a + (b + c)
  Accumulator bc = b;
  bc.merge(c);
  a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c.count(), a_bc.count());
  EXPECT_NEAR(ab_c.mean(), a_bc.mean(), 1e-9);
  EXPECT_NEAR(ab_c.variance(), a_bc.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(ab_c.min(), a_bc.min());
  EXPECT_DOUBLE_EQ(ab_c.max(), a_bc.max());
}

TEST_P(StatsPropertyTest, WilsonIntervalContainsThePointEstimate) {
  Rng rng{GetParam() * 7 + 5};
  Proportion p;
  const int n = 1 + static_cast<int>(rng.below(500));
  for (int i = 0; i < n; ++i) p.add(rng.chance(0.3));
  auto [lo, hi] = p.wilson95();
  EXPECT_LE(lo, p.value() + 1e-12);
  EXPECT_GE(hi, p.value() - 1e-12);
  EXPECT_GE(lo, 0.0);
  EXPECT_LE(hi, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(Sample, ExactPercentiles) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-12);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-12);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

}  // namespace
}  // namespace redundancy::util
