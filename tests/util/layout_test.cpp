// Memory-layout regression guard (tier1).
//
// The mechanical-sympathy pass (sharded injector, aligned hot state) only
// helps while the layout invariants hold: hot structs must not span cache
// lines they share with unrelated writers, and adjacent instances in arrays
// must not share a line. Compile-time checks live as static_asserts next to
// the structs themselves; this test adds the checks that need live objects
// (heap alignment of over-aligned news, shard strides, address distances),
// so a refactor that silently drops an alignas fails here instead of
// shipping a false-sharing regression.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>

#include "core/redundancy_cache.hpp"
#include "obs/counter.hpp"
#include "obs/histogram.hpp"
#include "util/cacheline.hpp"
#include "util/chase_lev_deque.hpp"
#include "util/thread_pool.hpp"
#include "util/topology.hpp"

namespace redundancy {
namespace {

using util::kCacheLine;

std::uintptr_t line_of(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) / kCacheLine;
}

TEST(Layout, CacheLineConstantIsSane) {
  static_assert(kCacheLine >= 64, "destructive interference is at least 64B");
  static_assert((kCacheLine & (kCacheLine - 1)) == 0, "power of two");
}

TEST(Layout, TaskNodeOccupiesWholeLines) {
  using util::pool_detail::TaskNode;
  static_assert(alignof(TaskNode) >= kCacheLine);
  static_assert(sizeof(TaskNode) % kCacheLine == 0);
  // Heap allocations of over-aligned types must honour the alignment
  // (C++17 aligned new) — this is what the node recycler relies on.
  auto* node = new TaskNode();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(node) % kCacheLine, 0u);
  delete node;
}

TEST(Layout, WorkerAndInjectorLaneDoNotShareLines) {
  using util::pool_detail::InjectorLane;
  using util::pool_detail::Worker;
  static_assert(alignof(Worker) >= kCacheLine);
  static_assert(sizeof(Worker) % kCacheLine == 0);
  static_assert(alignof(InjectorLane) >= kCacheLine);
  static_assert(sizeof(InjectorLane) % kCacheLine == 0);
  // The lane's lock-free emptiness probe must sit on a different line from
  // the mutex+chain the lock traffic bounces: idle workers poll `size`
  // without disturbing active submitters.
  InjectorLane lane;
  EXPECT_NE(line_of(&lane.size), line_of(&lane.m));
  EXPECT_NE(line_of(&lane.size), line_of(&lane.head));
}

TEST(Layout, ChaseLevIndicesLiveOnSeparateLines) {
  util::ChaseLevDeque<void*> deque;
  // Owner-written bottom and thief-CASed top on one line would make every
  // push invalidate every thief — the single hottest false-sharing pair.
  EXPECT_NE(line_of(deque.top_addr()), line_of(deque.bottom_addr()));
}

TEST(Layout, PoolGlobalCountersDoNotShareLines) {
  util::ThreadPool pool{2};
  EXPECT_NE(line_of(pool.pending_addr()), line_of(pool.active_addr()));
  EXPECT_NE(line_of(pool.pending_addr()), line_of(pool.parked_count_addr()));
  EXPECT_NE(line_of(pool.active_addr()), line_of(pool.parked_count_addr()));
}

TEST(Layout, CounterShardsAreAlignedAndScaled) {
  static_assert(obs::Counter::shard_stride() == kCacheLine,
                "one shard, one line");
  obs::Counter counter;
  const std::size_t n = counter.shards();
  EXPECT_GE(n, 4u);
  EXPECT_LE(n, 64u);
  EXPECT_EQ(n & (n - 1), 0u) << "shard count must be a power of two";
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(counter.shard_addr(i)) %
                  kCacheLine,
              0u)
        << "shard " << i << " not line-aligned";
    if (i > 0) {
      EXPECT_NE(line_of(counter.shard_addr(i)),
                line_of(counter.shard_addr(i - 1)))
          << "adjacent counter shards share a line";
    }
  }
}

TEST(Layout, HistogramShardsAreAlignedAndScaled) {
  static_assert(obs::Histogram::shard_stride() % kCacheLine == 0);
  obs::Histogram histogram;
  const std::size_t n = histogram.shards();
  EXPECT_GE(n, 4u);
  EXPECT_LE(n, 16u);
  EXPECT_EQ(n & (n - 1), 0u) << "shard count must be a power of two";
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(histogram.shard_addr(i)) %
                  kCacheLine,
              0u);
  }
}

#ifndef REDUNDANCY_CACHE_OFF
TEST(Layout, CacheShardHeadersAreLineAligned) {
  using Cache = core::RedundancyCache<std::string>;
  static_assert(Cache::shard_alignment() >= kCacheLine,
                "cache shard headers must start on their own line");
  Cache cache{{.capacity = 64}};
  for (std::size_t i = 0; i < cache.shard_count(); ++i) {
    EXPECT_EQ(
        reinterpret_cast<std::uintptr_t>(cache.shard_addr(i)) % kCacheLine,
        0u)
        << "cache shard " << i << " not line-aligned";
  }
}
#endif

TEST(Layout, MetricShardCountsScaleWithTheMachine) {
  // The counts derive from hardware_concurrency, clamped; both must agree
  // with the policy in obs/shard.hpp on this machine.
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw < 4) hw = 4;
  if (hw > 64) hw = 64;
  const std::size_t pow2 = util::round_up_pow2(hw);
  obs::Counter counter;
  obs::Histogram histogram;
  EXPECT_EQ(counter.shards(), pow2);
  EXPECT_EQ(histogram.shards(), pow2 < 16 ? pow2 : 16);
}

TEST(Layout, TopologyProbeYieldsUsableCluster) {
  const util::Topology& topo = util::topology();
  EXPECT_GE(topo.smt_width, 1u);
  EXPECT_GE(topo.cluster_size, topo.smt_width);
  // Fallback or probed, the cluster size must be usable as a divisor.
  EXPECT_GT(topo.cluster_size, 0u);
}

}  // namespace
}  // namespace redundancy
