// Chase–Lev deque stress: owner/thief interleavings meant for the
// ThreadSanitizer build (-DREDUNDANCY_SANITIZE=thread). Correctness
// criterion everywhere: every pushed item is consumed exactly once —
// by the owner or by exactly one thief — and nothing is invented.
#include "util/chase_lev_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace redundancy::util {
namespace {

/// Runs `items` values through one owner and `thieves` stealing threads;
/// returns per-item consumption counts.
std::vector<std::uint8_t> churn(std::size_t items, std::size_t thieves,
                                std::size_t initial_capacity) {
  ChaseLevDeque<std::uintptr_t> deque{initial_capacity};
  std::vector<std::atomic<std::uint8_t>> seen(items);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> consumed{0};

  std::vector<std::thread> gang;
  gang.reserve(thieves);
  for (std::size_t t = 0; t < thieves; ++t) {
    gang.emplace_back([&] {
      std::uintptr_t v = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (deque.steal(v)) {
          seen[v - 1].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Owner: push in bursts, pop a share back — the worker-loop shape.
  std::size_t produced = 0;
  std::size_t popped = 0;
  std::uintptr_t v = 0;
  while (produced < items) {
    for (int burst = 0; burst < 32 && produced < items; ++burst) {
      deque.push(static_cast<std::uintptr_t>(++produced));
    }
    for (int back = 0; back < 8; ++back) {
      if (deque.pop(v)) {
        seen[v - 1].fetch_add(1, std::memory_order_relaxed);
        ++popped;
      }
    }
  }
  while (deque.pop(v)) {
    seen[v - 1].fetch_add(1, std::memory_order_relaxed);
    ++popped;
  }
  while (consumed.load(std::memory_order_acquire) + popped < items) {
    if (deque.pop(v)) {
      seen[v - 1].fetch_add(1, std::memory_order_relaxed);
      ++popped;
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& g : gang) g.join();

  std::vector<std::uint8_t> counts(items);
  for (std::size_t i = 0; i < items; ++i) {
    counts[i] = seen[i].load(std::memory_order_relaxed);
  }
  return counts;
}

TEST(ChaseLevStress, EveryItemConsumedExactlyOnce) {
  const auto counts = churn(60'000, 3, 64);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i], 1u) << "item " << i + 1;
  }
}

TEST(ChaseLevStress, GrowUnderConcurrentSteals) {
  // Tiny initial capacity forces repeated grow() while thieves hold stale
  // array pointers — exercises the retired-array chain.
  const auto counts = churn(20'000, 4, 2);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i], 1u) << "item " << i + 1;
  }
}

TEST(ChaseLevStress, SingleElementContention) {
  // One element at a time: the owner's pop and the thieves' steals race on
  // the same slot through the top CAS — the classic Chase–Lev hot spot.
  ChaseLevDeque<std::uintptr_t> deque{2};
  constexpr std::size_t kItems = 30'000;
  std::vector<std::atomic<std::uint8_t>> seen(kItems);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> consumed{0};
  std::vector<std::thread> gang;
  for (std::size_t t = 0; t < 3; ++t) {
    gang.emplace_back([&] {
      std::uintptr_t v = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (deque.steal(v)) {
          seen[v - 1].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::size_t popped = 0;
  std::uintptr_t v = 0;
  for (std::uintptr_t i = 1; i <= kItems; ++i) {
    deque.push(i);
    if (deque.pop(v)) {
      seen[v - 1].fetch_add(1, std::memory_order_relaxed);
      ++popped;
    }
  }
  while (consumed.load(std::memory_order_acquire) + popped < kItems) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& g : gang) g.join();
  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[i].load(), 1u) << "item " << i + 1;
  }
}

}  // namespace
}  // namespace redundancy::util
