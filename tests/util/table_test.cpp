#include "util/table.hpp"

#include <gtest/gtest.h>

namespace redundancy::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t{"Demo"};
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"beta", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, ColumnsAreAligned) {
  Table t{"T"};
  t.header({"a", "b"});
  t.row({"xxxx", "y"});
  const std::string out = t.str();
  // Header cell "a" must be padded to the width of "xxxx".
  EXPECT_NE(out.find("a    | b"), std::string::npos);
}

TEST(Table, SeparatorEmitsRule) {
  Table t{"T"};
  t.header({"col"});
  t.row({"111"});
  t.separator();
  t.row({"222"});
  const std::string out = t.str();
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, ShortRowsPadMissingCells) {
  Table t{"T"};
  t.header({"a", "b", "c"});
  t.row({"only"});
  EXPECT_NO_THROW((void)t.str());
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.421, 1), "42.1%");
  EXPECT_EQ(Table::count(17), "17");
}

}  // namespace
}  // namespace redundancy::util
