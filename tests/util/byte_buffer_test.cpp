#include "util/byte_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace redundancy::util {
namespace {

TEST(ByteBuffer, PutGetRoundTrip) {
  ByteBuffer buf;
  buf.put(std::uint32_t{0xDEADBEEF});
  buf.put(std::int64_t{-42});
  buf.put(3.5);
  buf.put_string("checkpoint");
  auto r = buf.reader();
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_EQ(r.get<double>(), 3.5);
  EXPECT_EQ(r.get_string(), "checkpoint");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, PutBytesAppendsVerbatim) {
  ByteBuffer buf;
  buf.put(std::uint8_t{7});
  std::vector<std::byte> blob(13);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::byte>(i * 3 + 1);
  }
  buf.put_bytes(blob);
  ASSERT_EQ(buf.size(), 1 + blob.size());
  EXPECT_EQ(std::memcmp(buf.data() + 1, blob.data(), blob.size()), 0);
}

TEST(ByteBuffer, PutBytesEmptySpanIsANoOp) {
  ByteBuffer buf;
  buf.put_bytes(std::span<const std::byte>{});
  EXPECT_EQ(buf.size(), 0u);
}

TEST(ByteBuffer, PutStringMakesOneGrowthDecision) {
  // put_string reserves prefix + payload up front, so the appends must not
  // reallocate: capacity after the call covers exactly what was written.
  ByteBuffer buf;
  const std::string s(100, 'x');
  buf.put_string(s);
  EXPECT_EQ(buf.size(), sizeof(std::uint32_t) + s.size());
  auto r = buf.reader();
  EXPECT_EQ(r.get_string(), s);
}

TEST(ByteBuffer, ReserveAvoidsIncrementalReallocation) {
  ByteBuffer buf;
  buf.reserve(64 * 1024);
  const std::byte* before = buf.data();
  std::vector<std::byte> chunk(1024, std::byte{0x5A});
  for (int i = 0; i < 64; ++i) buf.put_bytes(chunk);
  EXPECT_EQ(buf.size(), 64u * 1024u);
  // A sufficient reserve means the backing store never moved.
  EXPECT_EQ(buf.data(), before);
}

TEST(ByteBuffer, GrowsGeometricallyPastReserve) {
  ByteBuffer buf;
  std::vector<std::byte> chunk(4096, std::byte{1});
  for (int i = 0; i < 100; ++i) buf.put_bytes(chunk);
  EXPECT_EQ(buf.size(), 100u * 4096u);
  for (std::size_t i = 0; i < buf.size(); i += 4096) {
    EXPECT_EQ(buf.data()[i], std::byte{1});
  }
}

TEST(ByteBuffer, EqualityIsWordwiseOnContents) {
  ByteBuffer a;
  ByteBuffer b;
  EXPECT_TRUE(a == b);  // both empty
  a.put_string("same bytes");
  b.put_string("same bytes");
  EXPECT_TRUE(a == b);
  ByteBuffer c;
  c.put_string("same byteZ");
  EXPECT_FALSE(a == c);
  ByteBuffer shorter;
  shorter.put(std::uint32_t{10});
  EXPECT_FALSE(a == shorter);  // size mismatch
}

TEST(ByteBuffer, ReaderThrowsOnTruncatedRead) {
  ByteBuffer buf;
  buf.put(std::uint16_t{1});
  auto r = buf.reader();
  EXPECT_THROW((void)r.get<std::uint64_t>(), std::out_of_range);
  // The length prefix may decode, but the payload is missing.
  ByteBuffer lying;
  lying.put(std::uint32_t{100});  // claims a 100-byte string follows
  auto r2 = lying.reader();
  EXPECT_THROW((void)r2.get_string(), std::out_of_range);
}

TEST(ByteBuffer, ConstructFromExistingBytes) {
  std::vector<std::byte> raw(8, std::byte{0x11});
  ByteBuffer buf{raw};
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf.bytes(), raw);
}

}  // namespace
}  // namespace redundancy::util
