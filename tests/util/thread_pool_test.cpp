#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>

#include "util/topology.hpp"
#include "util/unique_function.hpp"

namespace redundancy::util {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool{4};
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string{"ok"}; });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, RunAllExecutesEveryTask) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  std::vector<ThreadPool::Task> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.emplace_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, RunAllOnEmptyIsNoop) {
  ThreadPool pool{2};
  EXPECT_NO_THROW(pool.run_all(std::vector<ThreadPool::Task>{}));
  EXPECT_NO_THROW(pool.run_all(std::span<ThreadPool::Task>{}));
}

TEST(ThreadPool, ManySubmissionsAllComplete) {
  ThreadPool pool{3};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 499LL * 500 / 2);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  auto f = ThreadPool::shared().submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
  EXPECT_GE(ThreadPool::shared().size(), 2u);
}

TEST(ThreadPool, SubmitMoveOnlyCallable) {
  ThreadPool pool{2};
  auto payload = std::make_unique<int>(99);
  auto f = pool.submit([p = std::move(payload)] { return *p; });
  EXPECT_EQ(f.get(), 99);
}

TEST(ThreadPool, NestedFanOutDoesNotDeadlock) {
  // Every worker blocks in a nested run_all; the help-while-waiting path
  // must execute the inner tasks or this test hangs.
  ThreadPool pool{2};
  std::atomic<int> inner{0};
  std::vector<ThreadPool::Task> outer;
  for (int i = 0; i < 4; ++i) {
    outer.emplace_back([&pool, &inner] {
      std::vector<ThreadPool::Task> tasks;
      for (int j = 0; j < 8; ++j) {
        tasks.emplace_back([&inner] { inner.fetch_add(1); });
      }
      pool.run_all(std::move(tasks));
    });
  }
  pool.run_all(std::move(outer));
  EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPool, RunAllForwardsFirstException) {
  ThreadPool pool{2};
  std::atomic<int> completed{0};
  std::vector<ThreadPool::Task> tasks;
  tasks.emplace_back([] { throw std::runtime_error{"boom"}; });
  for (int i = 0; i < 5; ++i) {
    tasks.emplace_back([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(pool.run_all(std::move(tasks), ThreadPool::ExceptionPolicy::forward),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 5);  // the throw does not abort the batch
}

TEST(ThreadPool, RunAllSwallowPolicyIgnoresExceptions) {
  ThreadPool pool{2};
  std::vector<ThreadPool::Task> tasks;
  tasks.emplace_back([] { throw std::runtime_error{"boom"}; });
  EXPECT_NO_THROW(pool.run_all(std::move(tasks)));
}

TEST(ThreadPool, FirstWinsReturnsWinner) {
  ThreadPool pool{4};
  std::vector<std::function<std::optional<int>(const CancellationToken&)>>
      tasks;
  tasks.emplace_back([](const CancellationToken&) -> std::optional<int> {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return 100;
  });
  tasks.emplace_back(
      [](const CancellationToken&) -> std::optional<int> { return 7; });
  auto fw = pool.submit_first_wins<int>(std::move(tasks));
  ASSERT_TRUE(fw.value.has_value());
  EXPECT_EQ(*fw.value, 7);
  EXPECT_EQ(fw.winner, 1u);
  pool.wait_idle();  // the slow straggler finishes detached
}

TEST(ThreadPool, FirstWinsAllRejectedReturnsEmpty) {
  ThreadPool pool{2};
  std::vector<std::function<std::optional<int>(const CancellationToken&)>>
      tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.emplace_back(
        [](const CancellationToken&) -> std::optional<int> { return std::nullopt; });
  }
  auto fw = pool.submit_first_wins<int>(std::move(tasks));
  EXPECT_FALSE(fw.value.has_value());
  EXPECT_EQ(fw.winner, ThreadPool::FirstWins<int>::npos);
  EXPECT_EQ(fw.executed, 4u);
}

TEST(ThreadPool, FirstWinsOnEmptyInput) {
  ThreadPool pool{2};
  std::vector<std::function<std::optional<int>(const CancellationToken&)>>
      tasks;
  auto fw = pool.submit_first_wins<int>(std::move(tasks));
  EXPECT_FALSE(fw.value.has_value());
  EXPECT_EQ(fw.executed, 0u);
}

TEST(ThreadPool, FirstWinsAcceptsRawLambdas) {
  // The generic overload takes any callable type — a vector of raw lambdas
  // skips the std::function wrapper entirely (the allocation-free path the
  // pattern executors use).
  ThreadPool pool{4};
  std::atomic<int>* observed = nullptr;
  std::atomic<int> ran{0};
  observed = &ran;
  auto make = [observed](int v) {
    return [observed, v](const CancellationToken&) -> std::optional<int> {
      observed->fetch_add(1);
      if (v < 0) return std::nullopt;
      return v;
    };
  };
  using Lambda = decltype(make(0));
  std::vector<Lambda> tasks;
  tasks.push_back(make(-1));
  tasks.push_back(make(42));
  auto fw = pool.submit_first_wins<int>(std::move(tasks));
  pool.wait_idle();
  ASSERT_TRUE(fw.value.has_value());
  EXPECT_EQ(*fw.value, 42);
  EXPECT_EQ(fw.winner, 1u);
}

TEST(ThreadPool, FirstWinsThrowingTaskLoses) {
  ThreadPool pool{2};
  std::vector<std::function<std::optional<int>(const CancellationToken&)>>
      tasks;
  tasks.emplace_back([](const CancellationToken&) -> std::optional<int> {
    throw std::runtime_error{"bad candidate"};
  });
  tasks.emplace_back([](const CancellationToken&) -> std::optional<int> {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return 11;
  });
  auto fw = pool.submit_first_wins<int>(std::move(tasks));
  ASSERT_TRUE(fw.value.has_value());
  EXPECT_EQ(*fw.value, 11);
  EXPECT_EQ(fw.winner, 1u);
}

TEST(ThreadPool, FirstWinsCancellationSkipsUnstartedTasks) {
  // One worker: tasks run one at a time. The first task wins, so the
  // remaining queued tasks must be skipped, not executed.
  ThreadPool pool{1};
  std::atomic<int> ran{0};
  std::vector<std::function<std::optional<int>(const CancellationToken&)>>
      tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.emplace_back([&ran](const CancellationToken&) -> std::optional<int> {
      ran.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return 1;
    });
  }
  auto fw = pool.submit_first_wins<int>(std::move(tasks));
  pool.wait_idle();
  ASSERT_TRUE(fw.value.has_value());
  EXPECT_LT(ran.load(), 16);
}

TEST(ThreadPool, WaitIdleDrainsStragglers) {
  ThreadPool pool{2};
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.post(ThreadPool::Task{[&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    }});
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, SharedSizeHonoursEnvVariable) {
  ::setenv("REDUNDANCY_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::shared_size_from_env(), 3u);
  ::setenv("REDUNDANCY_THREADS", "0", 1);  // invalid: fall back
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", "12abc", 1);  // trailing junk: fall back
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", "99999", 1);  // absurd: fall back
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::unsetenv("REDUNDANCY_THREADS");
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
}

TEST(ThreadPool, SharedSizeStrictParseRejectsSignAndWhitespace) {
  // The parser is digits-only: forms strtoul would have accepted silently
  // must now fall back loudly.
  ::setenv("REDUNDANCY_THREADS", "+3", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", " 3", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", "3 ", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", "0x4", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", "-2", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", "", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  // Boundary values of the accepted range.
  ::setenv("REDUNDANCY_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::shared_size_from_env(), 1u);
  ::setenv("REDUNDANCY_THREADS", "1024", 1);
  EXPECT_EQ(ThreadPool::shared_size_from_env(), 1024u);
  ::setenv("REDUNDANCY_THREADS", "1025", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::unsetenv("REDUNDANCY_THREADS");
}

TEST(ThreadPool, SubmitBatchRunsEveryTask) {
  ThreadPool pool{3};
  std::atomic<int> counter{0};
  std::vector<ThreadPool::Task> tasks;
  for (int i = 0; i < 256; ++i) {
    tasks.emplace_back([&counter] { counter.fetch_add(1); });
  }
  pool.submit_batch(tasks);
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 256);
}

TEST(ThreadPool, SubmitBatchFromWorkerThreadIsStealable) {
  // A batch posted from inside a worker lands in that worker's own deque;
  // the other workers must still be able to steal and finish it.
  ThreadPool pool{3};
  std::atomic<int> counter{0};
  auto f = pool.submit([&pool, &counter] {
    std::vector<ThreadPool::Task> tasks;
    for (int i = 0; i < 64; ++i) {
      tasks.emplace_back([&counter] { counter.fetch_add(1); });
    }
    pool.submit_batch(tasks);
    return 1;
  });
  EXPECT_EQ(f.get(), 1);
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SubmitBatchEmptyIsNoop) {
  ThreadPool pool{2};
  std::vector<ThreadPool::Task> none;
  EXPECT_NO_THROW(pool.submit_batch(none));
  EXPECT_TRUE(pool.idle());
}

TEST(ThreadPool, IdleReflectsQuiescence) {
  ThreadPool pool{2};
  pool.wait_idle();
  EXPECT_TRUE(pool.idle());
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  pool.post(ThreadPool::Task{[&] {
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  }});
  while (!entered.load()) std::this_thread::yield();
  EXPECT_FALSE(pool.idle());  // a task is running: active_ > 0
  release.store(true);
  pool.wait_idle();
  EXPECT_TRUE(pool.idle());
}

TEST(ShardedInjector, LaneCountIsPowerOfTwoAndCapped) {
  {
    ThreadPool pool{4};
    const std::size_t lanes = pool.injector_lanes();
    EXPECT_GE(lanes, 2u);
    EXPECT_LE(lanes, 64u);
    EXPECT_EQ(lanes & (lanes - 1), 0u) << "lane count must be a power of two";
  }
  {
    ThreadPool single{2, 1};  // explicit single-injector baseline shape
    EXPECT_EQ(single.injector_lanes(), 1u);
  }
  {
    ThreadPool rounded{2, 5};  // rounds up to the next power of two
    EXPECT_EQ(rounded.injector_lanes(), 8u);
  }
  {
    ThreadPool capped{2, 1000};  // capped at 64 lanes
    EXPECT_EQ(capped.injector_lanes(), 64u);
  }
}

TEST(ShardedInjector, HomeLaneIsStickyAndInRange) {
  ThreadPool pool{2, 8};
  const std::size_t mine = pool.home_lane();
  EXPECT_LT(mine, pool.injector_lanes());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(pool.home_lane(), mine) << "home lane must be sticky per thread";
  }
  // A different thread keeps its own (equally sticky) lane choice.
  std::size_t other = 0;
  std::thread t{[&] {
    other = pool.home_lane();
    EXPECT_EQ(pool.home_lane(), other);
  }};
  t.join();
  EXPECT_LT(other, pool.injector_lanes());
}

TEST(ShardedInjector, ExternalDrainObservesLaneFifo) {
  // One worker, wedged on a blocking task, and a single lane: every external
  // submission lands in that lane, and external try_run_one claims exactly
  // the lane head — so this thread must observe strict submission order.
  ThreadPool pool{1, 1};
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  pool.post(ThreadPool::Task{[&] {
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  }});
  while (!entered.load()) std::this_thread::yield();

  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    pool.post(ThreadPool::Task{[&order, i] { order.push_back(i); }});
  }
  while (pool.try_run_one()) {
  }
  release.store(true);
  pool.wait_idle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i) << "lane FIFO violated";
  }
}

TEST(ShardedInjector, CrossThreadSubmissionsAllExecuteExactlyOnce) {
  constexpr std::size_t kSubmitters = 6;
  constexpr std::size_t kPerSubmitter = 200;
  ThreadPool pool{3};
  std::array<std::array<std::atomic<int>, kPerSubmitter>, kSubmitters> runs{};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &runs, s] {
      for (std::size_t i = 0; i < kPerSubmitter; ++i) {
        pool.post(ThreadPool::Task{[&runs, s, i] {
          runs[s][i].fetch_add(1, std::memory_order_relaxed);
        }});
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    for (std::size_t i = 0; i < kPerSubmitter; ++i) {
      EXPECT_EQ(runs[s][i].load(), 1)
          << "task (" << s << ", " << i << ") ran a wrong number of times";
    }
  }
}

TEST(ShardedInjector, IdleSeesWorkParkedInLanes) {
  // Submissions sitting in injector lanes (not yet in any deque) must keep
  // idle() false: pending_ counts them from the moment of submission.
  ThreadPool pool{1, 2};
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  pool.post(ThreadPool::Task{[&] {
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  }});
  while (!entered.load()) std::this_thread::yield();
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.post(ThreadPool::Task{[&done] { done.fetch_add(1); }});
  }
  EXPECT_FALSE(pool.idle()) << "lane backlog must count as pending";
  EXPECT_GE(pool.pending(), 8u);
  release.store(true);
  pool.wait_idle();
  EXPECT_TRUE(pool.idle());
  EXPECT_EQ(done.load(), 8);
}

TEST(ShardedInjector, BatchStaysWholeWithinOneLane) {
  // A batch submitted from one thread chains into that thread's single home
  // lane; with the lone worker wedged, an external drain must replay the
  // batch contiguously and in order.
  ThreadPool pool{1, 4};
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  pool.post(ThreadPool::Task{[&] {
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  }});
  while (!entered.load()) std::this_thread::yield();
  std::vector<int> order;
  std::vector<ThreadPool::Task> batch;
  for (int i = 0; i < 12; ++i) {
    batch.emplace_back([&order, i] { order.push_back(i); });
  }
  pool.submit_batch(batch);
  while (pool.try_run_one()) {
  }
  release.store(true);
  pool.wait_idle();
  ASSERT_EQ(order.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(StealOrder, IsAPermutationExcludingSelf) {
  ThreadPool pool{6};
  for (std::size_t self = 0; self < 6; ++self) {
    const auto order = pool.steal_order(self);
    ASSERT_EQ(order.size(), 5u);
    std::vector<bool> seen(6, false);
    for (const std::size_t v : order) {
      ASSERT_LT(v, 6u);
      EXPECT_NE(v, self) << "a worker must not steal from itself";
      EXPECT_FALSE(seen[v]) << "victim " << v << " repeated";
      seen[v] = true;
    }
  }
}

TEST(StealOrder, VisitsOwnClusterFirst) {
  // Victim order must be two runs: every same-cluster worker (by the
  // index-proxy clustering the pool builds from util::topology()), then
  // everyone else — shuffled within each run, never interleaved.
  ThreadPool pool{8};
  std::size_t cluster = topology().cluster_size;
  if (cluster < 1) cluster = 1;
  if (cluster > 8) cluster = 8;
  for (std::size_t self = 0; self < 8; ++self) {
    const auto order = pool.steal_order(self);
    bool left_cluster = false;
    for (const std::size_t v : order) {
      const bool same = v / cluster == self / cluster;
      if (!same) {
        left_cluster = true;
      } else {
        EXPECT_FALSE(left_cluster)
            << "near victim " << v << " appeared after a far one for worker "
            << self;
      }
    }
  }
}

TEST(StealOrder, TieBreaksDifferPerWorker) {
  // With every worker in one cluster the orders are pure shuffles; at least
  // two of them should differ (identical orders would mean the randomized
  // tie-breaking is not happening and starved workers stampede one victim).
  ThreadPool pool{8};
  bool any_difference = false;
  for (std::size_t self = 1; self < 8 && !any_difference; ++self) {
    const auto order = pool.steal_order(self);
    // Compare the victim sequences ignoring self-exclusion differences:
    // just check they are not all ascending.
    bool ascending = true;
    for (std::size_t i = 1; i < order.size(); ++i) {
      if (order[i] < order[i - 1]) ascending = false;
    }
    if (!ascending) any_difference = true;
  }
  // Note: with cluster_size >= 8 the whole pool is one shuffled class; with
  // smaller clusters each class is shuffled. Either way a strictly
  // ascending order for every worker is (overwhelmingly) evidence the
  // shuffle is gone.
  EXPECT_TRUE(any_difference);
}

TEST(BatchRunner, DispatchRunsEverythingAdded) {
  ThreadPool pool{2};
  BatchRunner runner{&pool};
  EXPECT_TRUE(runner.empty());
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; ++i) {
    runner.add([&counter] { counter.fetch_add(1); });
  }
  EXPECT_EQ(runner.size(), 32u);
  runner.dispatch();
  EXPECT_TRUE(runner.empty());  // drained, capacity retained
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 32);
}

TEST(BatchRunner, RunAndWaitIsABarrierAndReusable) {
  ThreadPool pool{3};
  BatchRunner runner{&pool};
  std::atomic<int> counter{0};
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int i = 0; i < 16; ++i) {
      runner.add([&counter] { counter.fetch_add(1); });
    }
    runner.run_and_wait();
    // Barrier semantics: all of this epoch's tasks completed before return.
    EXPECT_EQ(counter.load(), (epoch + 1) * 16);
    EXPECT_TRUE(runner.empty());
  }
}

TEST(BatchRunner, RunAndWaitForwardsFirstException) {
  ThreadPool pool{2};
  BatchRunner runner{&pool};
  std::atomic<int> survived{0};
  runner.add([] { throw std::runtime_error{"batch boom"}; });
  for (int i = 0; i < 4; ++i) {
    runner.add([&survived] { survived.fetch_add(1); });
  }
  EXPECT_THROW(runner.run_and_wait(ThreadPool::ExceptionPolicy::forward),
               std::runtime_error);
  EXPECT_EQ(survived.load(), 4);  // the throw does not abort the batch
}

TEST(BatchRunner, DefaultsToTheSharedPool) {
  BatchRunner runner;
  std::atomic<int> counter{0};
  runner.add([&counter] { counter.fetch_add(1); });
  runner.run_and_wait();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_EQ(&runner.pool(), &ThreadPool::shared());
}

TEST(CancellationToken, CopiesShareTheFlag) {
  CancellationToken a;
  CancellationToken b = a;
  EXPECT_FALSE(b.cancelled());
  a.cancel();
  EXPECT_TRUE(b.cancelled());
}

TEST(UniqueFunction, InvokesSmallAndLargeCallables) {
  UniqueFunction<int()> small{[] { return 5; }};
  EXPECT_EQ(small(), 5);

  // Large capture forces the heap path.
  std::array<int, 64> big{};
  big[63] = 9;
  UniqueFunction<int()> large{[big] { return big[63]; }};
  EXPECT_EQ(large(), 9);

  UniqueFunction<int()> moved = std::move(large);
  EXPECT_EQ(moved(), 9);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(3);
  UniqueFunction<int()> f{[p = std::move(p)] { return *p; }};
  UniqueFunction<int()> g = std::move(f);
  EXPECT_EQ(g(), 3);
}

}  // namespace
}  // namespace redundancy::util
