#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace redundancy::util {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool{4};
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string{"ok"}; });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, RunAllExecutesEveryTask) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.emplace_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, RunAllOnEmptyIsNoop) {
  ThreadPool pool{2};
  EXPECT_NO_THROW(pool.run_all({}));
}

TEST(ThreadPool, ManySubmissionsAllComplete) {
  ThreadPool pool{3};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 499LL * 500 / 2);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  auto f = ThreadPool::shared().submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
  EXPECT_GE(ThreadPool::shared().size(), 2u);
}

}  // namespace
}  // namespace redundancy::util
