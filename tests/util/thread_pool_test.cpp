#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>

#include "util/unique_function.hpp"

namespace redundancy::util {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool{4};
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string{"ok"}; });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, RunAllExecutesEveryTask) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  std::vector<ThreadPool::Task> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.emplace_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, RunAllOnEmptyIsNoop) {
  ThreadPool pool{2};
  EXPECT_NO_THROW(pool.run_all(std::vector<ThreadPool::Task>{}));
  EXPECT_NO_THROW(pool.run_all(std::span<ThreadPool::Task>{}));
}

TEST(ThreadPool, ManySubmissionsAllComplete) {
  ThreadPool pool{3};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 499LL * 500 / 2);
}

TEST(ThreadPool, SharedPoolIsUsable) {
  auto f = ThreadPool::shared().submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
  EXPECT_GE(ThreadPool::shared().size(), 2u);
}

TEST(ThreadPool, SubmitMoveOnlyCallable) {
  ThreadPool pool{2};
  auto payload = std::make_unique<int>(99);
  auto f = pool.submit([p = std::move(payload)] { return *p; });
  EXPECT_EQ(f.get(), 99);
}

TEST(ThreadPool, NestedFanOutDoesNotDeadlock) {
  // Every worker blocks in a nested run_all; the help-while-waiting path
  // must execute the inner tasks or this test hangs.
  ThreadPool pool{2};
  std::atomic<int> inner{0};
  std::vector<ThreadPool::Task> outer;
  for (int i = 0; i < 4; ++i) {
    outer.emplace_back([&pool, &inner] {
      std::vector<ThreadPool::Task> tasks;
      for (int j = 0; j < 8; ++j) {
        tasks.emplace_back([&inner] { inner.fetch_add(1); });
      }
      pool.run_all(std::move(tasks));
    });
  }
  pool.run_all(std::move(outer));
  EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPool, RunAllForwardsFirstException) {
  ThreadPool pool{2};
  std::atomic<int> completed{0};
  std::vector<ThreadPool::Task> tasks;
  tasks.emplace_back([] { throw std::runtime_error{"boom"}; });
  for (int i = 0; i < 5; ++i) {
    tasks.emplace_back([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(pool.run_all(std::move(tasks), ThreadPool::ExceptionPolicy::forward),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 5);  // the throw does not abort the batch
}

TEST(ThreadPool, RunAllSwallowPolicyIgnoresExceptions) {
  ThreadPool pool{2};
  std::vector<ThreadPool::Task> tasks;
  tasks.emplace_back([] { throw std::runtime_error{"boom"}; });
  EXPECT_NO_THROW(pool.run_all(std::move(tasks)));
}

TEST(ThreadPool, FirstWinsReturnsWinner) {
  ThreadPool pool{4};
  std::vector<std::function<std::optional<int>(const CancellationToken&)>>
      tasks;
  tasks.emplace_back([](const CancellationToken&) -> std::optional<int> {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return 100;
  });
  tasks.emplace_back(
      [](const CancellationToken&) -> std::optional<int> { return 7; });
  auto fw = pool.submit_first_wins<int>(std::move(tasks));
  ASSERT_TRUE(fw.value.has_value());
  EXPECT_EQ(*fw.value, 7);
  EXPECT_EQ(fw.winner, 1u);
  pool.wait_idle();  // the slow straggler finishes detached
}

TEST(ThreadPool, FirstWinsAllRejectedReturnsEmpty) {
  ThreadPool pool{2};
  std::vector<std::function<std::optional<int>(const CancellationToken&)>>
      tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.emplace_back(
        [](const CancellationToken&) -> std::optional<int> { return std::nullopt; });
  }
  auto fw = pool.submit_first_wins<int>(std::move(tasks));
  EXPECT_FALSE(fw.value.has_value());
  EXPECT_EQ(fw.winner, ThreadPool::FirstWins<int>::npos);
  EXPECT_EQ(fw.executed, 4u);
}

TEST(ThreadPool, FirstWinsOnEmptyInput) {
  ThreadPool pool{2};
  std::vector<std::function<std::optional<int>(const CancellationToken&)>>
      tasks;
  auto fw = pool.submit_first_wins<int>(std::move(tasks));
  EXPECT_FALSE(fw.value.has_value());
  EXPECT_EQ(fw.executed, 0u);
}

TEST(ThreadPool, FirstWinsAcceptsRawLambdas) {
  // The generic overload takes any callable type — a vector of raw lambdas
  // skips the std::function wrapper entirely (the allocation-free path the
  // pattern executors use).
  ThreadPool pool{4};
  std::atomic<int>* observed = nullptr;
  std::atomic<int> ran{0};
  observed = &ran;
  auto make = [observed](int v) {
    return [observed, v](const CancellationToken&) -> std::optional<int> {
      observed->fetch_add(1);
      if (v < 0) return std::nullopt;
      return v;
    };
  };
  using Lambda = decltype(make(0));
  std::vector<Lambda> tasks;
  tasks.push_back(make(-1));
  tasks.push_back(make(42));
  auto fw = pool.submit_first_wins<int>(std::move(tasks));
  pool.wait_idle();
  ASSERT_TRUE(fw.value.has_value());
  EXPECT_EQ(*fw.value, 42);
  EXPECT_EQ(fw.winner, 1u);
}

TEST(ThreadPool, FirstWinsThrowingTaskLoses) {
  ThreadPool pool{2};
  std::vector<std::function<std::optional<int>(const CancellationToken&)>>
      tasks;
  tasks.emplace_back([](const CancellationToken&) -> std::optional<int> {
    throw std::runtime_error{"bad candidate"};
  });
  tasks.emplace_back([](const CancellationToken&) -> std::optional<int> {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return 11;
  });
  auto fw = pool.submit_first_wins<int>(std::move(tasks));
  ASSERT_TRUE(fw.value.has_value());
  EXPECT_EQ(*fw.value, 11);
  EXPECT_EQ(fw.winner, 1u);
}

TEST(ThreadPool, FirstWinsCancellationSkipsUnstartedTasks) {
  // One worker: tasks run one at a time. The first task wins, so the
  // remaining queued tasks must be skipped, not executed.
  ThreadPool pool{1};
  std::atomic<int> ran{0};
  std::vector<std::function<std::optional<int>(const CancellationToken&)>>
      tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.emplace_back([&ran](const CancellationToken&) -> std::optional<int> {
      ran.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return 1;
    });
  }
  auto fw = pool.submit_first_wins<int>(std::move(tasks));
  pool.wait_idle();
  ASSERT_TRUE(fw.value.has_value());
  EXPECT_LT(ran.load(), 16);
}

TEST(ThreadPool, WaitIdleDrainsStragglers) {
  ThreadPool pool{2};
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.post(ThreadPool::Task{[&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    }});
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, SharedSizeHonoursEnvVariable) {
  ::setenv("REDUNDANCY_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::shared_size_from_env(), 3u);
  ::setenv("REDUNDANCY_THREADS", "0", 1);  // invalid: fall back
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", "12abc", 1);  // trailing junk: fall back
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", "99999", 1);  // absurd: fall back
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::unsetenv("REDUNDANCY_THREADS");
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
}

TEST(ThreadPool, SharedSizeStrictParseRejectsSignAndWhitespace) {
  // The parser is digits-only: forms strtoul would have accepted silently
  // must now fall back loudly.
  ::setenv("REDUNDANCY_THREADS", "+3", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", " 3", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", "3 ", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", "0x4", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", "-2", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::setenv("REDUNDANCY_THREADS", "", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  // Boundary values of the accepted range.
  ::setenv("REDUNDANCY_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::shared_size_from_env(), 1u);
  ::setenv("REDUNDANCY_THREADS", "1024", 1);
  EXPECT_EQ(ThreadPool::shared_size_from_env(), 1024u);
  ::setenv("REDUNDANCY_THREADS", "1025", 1);
  EXPECT_GE(ThreadPool::shared_size_from_env(), 8u);
  ::unsetenv("REDUNDANCY_THREADS");
}

TEST(ThreadPool, SubmitBatchRunsEveryTask) {
  ThreadPool pool{3};
  std::atomic<int> counter{0};
  std::vector<ThreadPool::Task> tasks;
  for (int i = 0; i < 256; ++i) {
    tasks.emplace_back([&counter] { counter.fetch_add(1); });
  }
  pool.submit_batch(tasks);
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 256);
}

TEST(ThreadPool, SubmitBatchFromWorkerThreadIsStealable) {
  // A batch posted from inside a worker lands in that worker's own deque;
  // the other workers must still be able to steal and finish it.
  ThreadPool pool{3};
  std::atomic<int> counter{0};
  auto f = pool.submit([&pool, &counter] {
    std::vector<ThreadPool::Task> tasks;
    for (int i = 0; i < 64; ++i) {
      tasks.emplace_back([&counter] { counter.fetch_add(1); });
    }
    pool.submit_batch(tasks);
    return 1;
  });
  EXPECT_EQ(f.get(), 1);
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SubmitBatchEmptyIsNoop) {
  ThreadPool pool{2};
  std::vector<ThreadPool::Task> none;
  EXPECT_NO_THROW(pool.submit_batch(none));
  EXPECT_TRUE(pool.idle());
}

TEST(ThreadPool, IdleReflectsQuiescence) {
  ThreadPool pool{2};
  pool.wait_idle();
  EXPECT_TRUE(pool.idle());
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  pool.post(ThreadPool::Task{[&] {
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  }});
  while (!entered.load()) std::this_thread::yield();
  EXPECT_FALSE(pool.idle());  // a task is running: active_ > 0
  release.store(true);
  pool.wait_idle();
  EXPECT_TRUE(pool.idle());
}

TEST(BatchRunner, DispatchRunsEverythingAdded) {
  ThreadPool pool{2};
  BatchRunner runner{&pool};
  EXPECT_TRUE(runner.empty());
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; ++i) {
    runner.add([&counter] { counter.fetch_add(1); });
  }
  EXPECT_EQ(runner.size(), 32u);
  runner.dispatch();
  EXPECT_TRUE(runner.empty());  // drained, capacity retained
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 32);
}

TEST(BatchRunner, RunAndWaitIsABarrierAndReusable) {
  ThreadPool pool{3};
  BatchRunner runner{&pool};
  std::atomic<int> counter{0};
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int i = 0; i < 16; ++i) {
      runner.add([&counter] { counter.fetch_add(1); });
    }
    runner.run_and_wait();
    // Barrier semantics: all of this epoch's tasks completed before return.
    EXPECT_EQ(counter.load(), (epoch + 1) * 16);
    EXPECT_TRUE(runner.empty());
  }
}

TEST(BatchRunner, RunAndWaitForwardsFirstException) {
  ThreadPool pool{2};
  BatchRunner runner{&pool};
  std::atomic<int> survived{0};
  runner.add([] { throw std::runtime_error{"batch boom"}; });
  for (int i = 0; i < 4; ++i) {
    runner.add([&survived] { survived.fetch_add(1); });
  }
  EXPECT_THROW(runner.run_and_wait(ThreadPool::ExceptionPolicy::forward),
               std::runtime_error);
  EXPECT_EQ(survived.load(), 4);  // the throw does not abort the batch
}

TEST(BatchRunner, DefaultsToTheSharedPool) {
  BatchRunner runner;
  std::atomic<int> counter{0};
  runner.add([&counter] { counter.fetch_add(1); });
  runner.run_and_wait();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_EQ(&runner.pool(), &ThreadPool::shared());
}

TEST(CancellationToken, CopiesShareTheFlag) {
  CancellationToken a;
  CancellationToken b = a;
  EXPECT_FALSE(b.cancelled());
  a.cancel();
  EXPECT_TRUE(b.cancelled());
}

TEST(UniqueFunction, InvokesSmallAndLargeCallables) {
  UniqueFunction<int()> small{[] { return 5; }};
  EXPECT_EQ(small(), 5);

  // Large capture forces the heap path.
  std::array<int, 64> big{};
  big[63] = 9;
  UniqueFunction<int()> large{[big] { return big[63]; }};
  EXPECT_EQ(large(), 9);

  UniqueFunction<int()> moved = std::move(large);
  EXPECT_EQ(moved(), 9);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(3);
  UniqueFunction<int()> f{[p = std::move(p)] { return *p; }};
  UniqueFunction<int()> g = std::move(f);
  EXPECT_EQ(g(), 3);
}

}  // namespace
}  // namespace redundancy::util
