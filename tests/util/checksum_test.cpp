#include "util/checksum.hpp"

#include <gtest/gtest.h>

#include "util/byte_buffer.hpp"

namespace redundancy::util {
namespace {

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32(std::string_view{"123456789"}), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32(std::string_view{""}), 0u); }

TEST(Crc32, DetectsSingleBitFlip) {
  std::string a = "the quick brown fox";
  std::string b = a;
  b[3] = static_cast<char>(b[3] ^ 0x01);
  EXPECT_NE(crc32(std::string_view{a}), crc32(std::string_view{b}));
}

TEST(Fnv1a, DistinctStringsDistinctHashes) {
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a("abc"), fnv1a("cba"));
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
}

TEST(HashMix, OrderSensitive) {
  const auto a = hash_mix(hash_mix(0, 1), 2);
  const auto b = hash_mix(hash_mix(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(ByteBuffer, RoundTripsScalarsAndStrings) {
  ByteBuffer buf;
  buf.put<std::int64_t>(-42);
  buf.put_string("hello");
  buf.put<double>(2.5);
  auto r = buf.reader();
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_DOUBLE_EQ(r.get<double>(), 2.5);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, TruncatedReadThrows) {
  ByteBuffer buf;
  buf.put<std::uint8_t>(1);
  auto r = buf.reader();
  EXPECT_THROW((void)r.get<std::int64_t>(), std::out_of_range);
}

TEST(ByteBuffer, TruncatedStringThrows) {
  ByteBuffer buf;
  buf.put<std::uint32_t>(1000);  // claims 1000 bytes follow; none do
  auto r = buf.reader();
  EXPECT_THROW((void)r.get_string(), std::out_of_range);
}

TEST(Mix64, AvalanchesAdjacentInputs) {
  // Sequential inputs must land far apart — this is what spreads nearby
  // cache keys across shards and sketch rows.
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(1) >> 32, mix64(2) >> 32);  // high bits differ too
  EXPECT_NE(mix64(1), 1u);  // (0 is splitmix64's fixed point, 1 is not)
  EXPECT_EQ(mix64(42), mix64(42));
}

TEST(Digest64, DeterministicAndValueSensitive) {
  EXPECT_EQ(digest64(std::string_view{"abc"}, 7),
            digest64(std::string_view{"abc"}, 7));
  EXPECT_NE(digest64(std::string_view{"abc"}, 7),
            digest64(std::string_view{"abc"}, 8));
  EXPECT_NE(digest64(std::string_view{"abc"}), digest64(std::string_view{"abd"}));
}

TEST(Digest64, LengthPrefixPreventsConcatenationAmbiguity) {
  // "ab"+"c" and "a"+"bc" concatenate to the same byte stream; the length
  // prefix keeps the digests distinct.
  EXPECT_NE(digest64(std::string_view{"ab"}, std::string_view{"c"}),
            digest64(std::string_view{"a"}, std::string_view{"bc"}));
  EXPECT_NE(digest64(std::string_view{"abc"}),
            digest64(std::string_view{"ab"}, std::string_view{"c"}));
}

TEST(Digest64, IntegralTypesDigestCanonically) {
  // The digest sees a sign-extended 8-byte form: the same value hashes
  // identically no matter which integer type carried it.
  EXPECT_EQ(digest64(static_cast<int>(-5)),
            digest64(static_cast<std::int64_t>(-5)));
  EXPECT_EQ(digest64(static_cast<short>(7)),
            digest64(static_cast<std::uint64_t>(7)));
  EXPECT_NE(digest64(-5), digest64(5));
}

TEST(Digest64, SignedZeroDoublesDigestEqual) {
  EXPECT_EQ(digest64(0.0), digest64(-0.0));
  EXPECT_NE(digest64(0.0), digest64(1.0));
  EXPECT_EQ(digest64(2.5F), digest64(2.5));  // floats widen to double
}

TEST(Digest64, ContainersAndOptionals) {
  const std::vector<int> a{1, 2, 3};
  const std::vector<int> b{1, 2};
  EXPECT_NE(digest64(a), digest64(b));
  EXPECT_EQ(digest64(a), digest64(std::vector<int>{1, 2, 3}));

  const std::optional<int> none;
  const std::optional<int> some{0};
  EXPECT_NE(digest64(none), digest64(some));

  EXPECT_NE(digest64(std::pair<int, int>{1, 2}),
            digest64(std::pair<int, int>{2, 1}));
}

TEST(Digest64, StreamingMatchesOneShot) {
  Digest64 d;
  d.update(std::string_view{"key"});
  d.update(42);
  d.update(true);
  EXPECT_EQ(d.value(), digest64(std::string_view{"key"}, 42, true));
}

TEST(Digest64, DigestibleTrait) {
  static_assert(is_digestible_v<int>);
  static_assert(is_digestible_v<std::string_view>);
  static_assert(is_digestible_v<std::string>);
  static_assert(is_digestible_v<double>);
  static_assert(is_digestible_v<std::vector<std::int64_t>>);
  static_assert(is_digestible_v<std::optional<int>>);
  struct Opaque {};
  static_assert(!is_digestible_v<Opaque>);
  SUCCEED();
}

}  // namespace
}  // namespace redundancy::util
