#include "util/checksum.hpp"

#include <gtest/gtest.h>

#include "util/byte_buffer.hpp"

namespace redundancy::util {
namespace {

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32(std::string_view{"123456789"}), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32(std::string_view{""}), 0u); }

TEST(Crc32, DetectsSingleBitFlip) {
  std::string a = "the quick brown fox";
  std::string b = a;
  b[3] = static_cast<char>(b[3] ^ 0x01);
  EXPECT_NE(crc32(std::string_view{a}), crc32(std::string_view{b}));
}

TEST(Fnv1a, DistinctStringsDistinctHashes) {
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a("abc"), fnv1a("cba"));
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
}

TEST(HashMix, OrderSensitive) {
  const auto a = hash_mix(hash_mix(0, 1), 2);
  const auto b = hash_mix(hash_mix(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(ByteBuffer, RoundTripsScalarsAndStrings) {
  ByteBuffer buf;
  buf.put<std::int64_t>(-42);
  buf.put_string("hello");
  buf.put<double>(2.5);
  auto r = buf.reader();
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_DOUBLE_EQ(r.get<double>(), 2.5);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, TruncatedReadThrows) {
  ByteBuffer buf;
  buf.put<std::uint8_t>(1);
  auto r = buf.reader();
  EXPECT_THROW((void)r.get<std::int64_t>(), std::out_of_range);
}

TEST(ByteBuffer, TruncatedStringThrows) {
  ByteBuffer buf;
  buf.put<std::uint32_t>(1000);  // claims 1000 bytes follow; none do
  auto r = buf.reader();
  EXPECT_THROW((void)r.get_string(), std::out_of_range);
}

}  // namespace
}  // namespace redundancy::util
