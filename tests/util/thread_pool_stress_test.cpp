// Stress tests for the work-stealing engine, meant to be run under
// ThreadSanitizer (cmake -DREDUNDANCY_SANITIZE=thread). They hammer the
// hand-off edges — stealing, first-wins cancellation, straggler accounting,
// nested fan-out — with short tasks so the schedule varies between runs,
// while staying fast enough for a single-core CI box. ctest label: stress.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "core/parallel_evaluation.hpp"
#include "core/parallel_selection.hpp"
#include "faults/campaign.hpp"
#include "util/thread_pool.hpp"

namespace redundancy {
namespace {

TEST(PoolStress, ConcurrentSubmittersAndStealers) {
  util::ThreadPool pool{4};
  std::atomic<std::int64_t> sum{0};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&pool, &sum, t] {
      for (int i = 0; i < kPerThread; ++i) {
        pool.post(util::ThreadPool::Task{[&sum, t, i] {
          sum.fetch_add(static_cast<std::int64_t>(t) * kPerThread + i);
        }});
      }
    });
  }
  for (auto& s : submitters) s.join();
  pool.wait_idle();
  constexpr std::int64_t kTotal =
      static_cast<std::int64_t>(kThreads) * kPerThread;
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}

TEST(PoolStress, FirstWinsChurn) {
  util::ThreadPool pool{4};
  for (int round = 0; round < 200; ++round) {
    std::vector<
        std::function<std::optional<int>(const util::CancellationToken&)>>
        tasks;
    for (int i = 0; i < 6; ++i) {
      tasks.emplace_back(
          [i, round](const util::CancellationToken&) -> std::optional<int> {
            if ((i + round) % 3 == 0) return std::nullopt;
            return i;
          });
    }
    auto fw = pool.submit_first_wins<int>(std::move(tasks));
    ASSERT_TRUE(fw.value.has_value());
    EXPECT_NE((*fw.value + round) % 3, 0);
  }
  pool.wait_idle();
}

TEST(PoolStress, NestedFanOutUnderLoad) {
  util::ThreadPool pool{3};
  std::atomic<int> leaves{0};
  std::vector<util::ThreadPool::Task> outer;
  for (int i = 0; i < 32; ++i) {
    outer.emplace_back([&pool, &leaves] {
      std::vector<util::ThreadPool::Task> inner;
      for (int j = 0; j < 4; ++j) {
        inner.emplace_back([&leaves] { leaves.fetch_add(1); });
      }
      pool.run_all(std::move(inner));
    });
  }
  pool.run_all(std::move(outer));
  EXPECT_EQ(leaves.load(), 128);
}

TEST(PoolStress, IncrementalEvaluationWithRacingStragglers) {
  auto jitter = [](std::size_t i) {
    return core::make_variant<int, int>(
        "v" + std::to_string(i), [i](const int& x) -> core::Result<int> {
          if (i % 2 == 1) std::this_thread::sleep_for(std::chrono::microseconds(200));
          return x + 1;
        });
  };
  std::vector<core::Variant<int, int>> vs;
  for (std::size_t i = 0; i < 5; ++i) vs.push_back(jitter(i));
  core::ParallelEvaluation<int, int> pe{std::move(vs),
                                        core::majority_voter<int>(),
                                        core::Concurrency::threaded,
                                        core::Adjudication::incremental};
  for (int i = 0; i < 300; ++i) {
    auto out = pe.run(i);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out.value(), i + 1);
  }
  util::ThreadPool::shared().wait_idle();
  // The early verdict needs a strict majority (3 of 5); variants the
  // cancellation token reached before they started never execute.
  (void)pe.metrics();  // folds the last round's straggler accounting
  EXPECT_GE(pe.metrics().variant_executions, 3u * 300u);
  EXPECT_LE(pe.metrics().variant_executions, 5u * 300u);
}

TEST(PoolStress, ThreadedSelectionChurn) {
  using PS = core::ParallelSelection<int, int>;
  auto comp = [](std::size_t i) {
    return PS::Checked{
        core::make_variant<int, int>(
            "c" + std::to_string(i),
            [i](const int& x) -> core::Result<int> {
              if (i == 0) return core::failure(core::FailureKind::crash);
              return x * 2;
            }),
        core::accept_all<int, int>()};
  };
  PS ps{{comp(0), comp(1), comp(2)},
        PS::Options{.disable_on_failure = false,
                    .lazy = true,
                    .concurrency = core::Concurrency::threaded}};
  for (int i = 0; i < 300; ++i) {
    auto out = ps.run(i);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out.value(), i * 2);
  }
  util::ThreadPool::shared().wait_idle();
}

TEST(PoolStress, ParallelCampaignsBackToBack) {
  const std::function<int(std::size_t, util::Rng&)> workload =
      [](std::size_t, util::Rng& rng) {
        return static_cast<int>(rng.below(1'000));
      };
  const std::function<int(const int&)> oracle = [](const int& x) {
    return x * 2;
  };
  for (int round = 0; round < 10; ++round) {
    auto report = faults::run_campaign_parallel<int, int>(
        "stress", 500, workload,
        []() -> std::function<core::Result<int>(const int&)> {
          return [](const int& x) -> core::Result<int> { return x * 2; };
        },
        oracle, static_cast<std::uint64_t>(round + 1), 8);
    EXPECT_EQ(report.requests, 500u);
    EXPECT_EQ(report.correct, 500u);
  }
}

}  // namespace
}  // namespace redundancy
