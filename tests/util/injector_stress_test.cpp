// Sharded-injector stress tests, meant for -DREDUNDANCY_SANITIZE=thread
// builds (ctest -L stress). Companion to thread_pool_stress_test.cpp (deque
// + park/unpark churn) and chase_lev_stress_test.cpp (raw deque races):
// these drive the *lane* machinery specifically — many external submitters
// hashed over the lanes, workers draining amortized shares, external
// helpers racing the drain, and the one-wake-up batch protocol under
// constant park/unpark pressure.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace redundancy::util {
namespace {

TEST(InjectorStress, ManySubmittersManyLanesEveryTaskRunsOnce) {
  constexpr std::size_t kSubmitters = 8;
  constexpr std::size_t kRounds = 60;
  constexpr std::size_t kBatch = 16;
  ThreadPool pool{4, 8};
  std::atomic<std::size_t> executed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &executed] {
      for (std::size_t r = 0; r < kRounds; ++r) {
        // Alternate singles and batches so both enqueue shapes race the
        // draining workers.
        if (r % 2 == 0) {
          for (std::size_t i = 0; i < kBatch; ++i) {
            pool.post(ThreadPool::Task{
                [&executed] { executed.fetch_add(1, std::memory_order_relaxed); }});
          }
        } else {
          std::vector<ThreadPool::Task> batch;
          batch.reserve(kBatch);
          for (std::size_t i = 0; i < kBatch; ++i) {
            batch.emplace_back(
                [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
          }
          pool.submit_batch(batch);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kSubmitters * kRounds * kBatch);
}

TEST(InjectorStress, ExternalHelpersRaceWorkersOnLaneDrain) {
  // External try_run_one drains lane heads while pool workers drain
  // amortized shares of the same lanes — the claim bookkeeping must never
  // lose or double-run a task.
  constexpr std::size_t kTasks = 4000;
  ThreadPool pool{2, 4};
  std::atomic<std::size_t> executed{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> helpers;
  for (std::size_t h = 0; h < 3; ++h) {
    helpers.emplace_back([&pool, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        if (!pool.try_run_one()) std::this_thread::yield();
      }
    });
  }
  std::thread submitter{[&pool, &executed] {
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.post(ThreadPool::Task{
          [&executed] { executed.fetch_add(1, std::memory_order_relaxed); }});
    }
  }};
  submitter.join();
  pool.wait_idle();
  stop.store(true, std::memory_order_release);
  for (auto& t : helpers) t.join();
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(InjectorStress, ParkUnparkChurnWithBurstySubmission) {
  // Bursts separated by quiet gaps force the workers through the full
  // park/recheck/wake cycle over and over; the Dekker handshake must not
  // strand a burst in a lane while every worker sleeps.
  ThreadPool pool{3, 4};
  std::atomic<std::size_t> executed{0};
  for (std::size_t burst = 0; burst < 40; ++burst) {
    std::vector<ThreadPool::Task> batch;
    for (std::size_t i = 0; i < 24; ++i) {
      batch.emplace_back(
          [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.submit_batch(batch);
    pool.wait_idle();  // quiet gap: every worker parks again
    EXPECT_EQ(executed.load(), (burst + 1) * 24);
  }
}

TEST(InjectorStress, DestructionRacesInFlightExternalWork) {
  // Pools torn down while submitters are still finishing must drain every
  // accepted task before joining (workers only exit at pending_ == 0).
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> executed{0};
    std::thread submitter;
    {
      ThreadPool pool{2, 2};
      submitter = std::thread{[&pool, &executed] {
        for (int i = 0; i < 200; ++i) {
          pool.post(ThreadPool::Task{
              [&executed] { executed.fetch_add(1, std::memory_order_relaxed); }});
        }
      }};
      submitter.join();  // all tasks accepted before ~ThreadPool
    }
    EXPECT_EQ(executed.load(), 200u);
  }
}

TEST(InjectorStress, SingleLaneShapeStillCorrectUnderContention) {
  // The lanes=1 baseline (used by the benchmarks as the contended
  // comparison point) must stay correct, not just slow.
  constexpr std::size_t kSubmitters = 8;
  constexpr std::size_t kPer = 300;
  ThreadPool pool{2, 1};
  std::atomic<std::size_t> executed{0};
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &executed] {
      for (std::size_t i = 0; i < kPer; ++i) {
        pool.post(ThreadPool::Task{
            [&executed] { executed.fetch_add(1, std::memory_order_relaxed); }});
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kSubmitters * kPer);
}

}  // namespace
}  // namespace redundancy::util
