#include "rollback/distsim.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace redundancy::rollback {
namespace {

Simulation::Config base(Protocol protocol, std::uint64_t seed = 1) {
  Simulation::Config cfg;
  cfg.processes = 4;
  cfg.protocol = protocol;
  cfg.checkpoint_every = 10;
  cfg.send_probability = 0.5;
  cfg.seed = seed;
  return cfg;
}

TEST(DistSim, DeterministicForEqualSeeds) {
  Simulation a{base(Protocol::uncoordinated, 7)};
  Simulation b{base(Protocol::uncoordinated, 7)};
  a.run(500);
  b.run(500);
  EXPECT_EQ(a.total_work(), b.total_work());
  for (std::size_t p = 0; p < a.processes(); ++p) {
    EXPECT_EQ(a.digest_of(p), b.digest_of(p));
  }
}

TEST(DistSim, WorkAccumulatesAndMessagesFlow) {
  Simulation sim{base(Protocol::uncoordinated)};
  sim.run(400);
  EXPECT_EQ(sim.total_work(), 400u);
  EXPECT_TRUE(sim.consistent());
  EXPECT_GT(sim.checkpoints_taken(), 0u);
}

class ProtocolTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolTest, RecoveryPreservesConsistency) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Simulation sim{base(GetParam(), seed)};
    sim.run(300);
    auto report = sim.crash_and_recover(seed % sim.processes());
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(sim.consistent())
        << to_string(GetParam()) << " seed " << seed;
    // The system can keep running after recovery.
    sim.run(100);
    EXPECT_TRUE(sim.consistent());
  }
}

TEST_P(ProtocolTest, CrashOfUnknownProcessFails) {
  Simulation sim{base(GetParam())};
  EXPECT_FALSE(sim.crash_and_recover(99).has_value());
}

INSTANTIATE_TEST_SUITE_P(All, ProtocolTest,
                         ::testing::Values(Protocol::uncoordinated,
                                           Protocol::coordinated,
                                           Protocol::message_logging,
                                           Protocol::optimistic_logging));

TEST(DistSim, OptimisticLoggingLosesOnlyTheUnloggedTail) {
  // With a lag shorter than the run, the victim loses at most the receives
  // of the last `log_lag` steps plus dependent work — far less than an
  // uncoordinated rollback, and a bounded cascade.
  util::Accumulator rolled_opt, lost_opt, rolled_unc, lost_unc;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto cfg = base(Protocol::optimistic_logging, seed);
    cfg.log_lag = 5;
    Simulation opt{cfg};
    opt.run(400);
    auto ro = opt.crash_and_recover(0);
    ASSERT_TRUE(ro.has_value());
    EXPECT_TRUE(opt.consistent()) << "seed " << seed;
    rolled_opt.add(static_cast<double>(ro.value().processes_rolled_back));
    lost_opt.add(static_cast<double>(ro.value().work_lost));

    Simulation unc{base(Protocol::uncoordinated, seed)};
    unc.run(400);
    auto ru = unc.crash_and_recover(0);
    rolled_unc.add(static_cast<double>(ru.value().processes_rolled_back));
    lost_unc.add(static_cast<double>(ru.value().work_lost));
  }
  EXPECT_LT(lost_opt.mean(), lost_unc.mean() / 4.0);
  EXPECT_LE(rolled_opt.mean(), rolled_unc.mean());
}

TEST(DistSim, OptimisticWithZeroLagBehavesLikePessimistic) {
  auto cfg = base(Protocol::optimistic_logging, 3);
  cfg.log_lag = 0;  // every receive is durable immediately
  Simulation sim{cfg};
  sim.run(300);
  const auto work_before = sim.total_work();
  const auto digest_before = sim.digest_of(1);
  auto report = sim.crash_and_recover(1);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report.value().processes_rolled_back, 1u);
  EXPECT_EQ(report.value().work_lost, 0u);
  EXPECT_EQ(sim.total_work(), work_before);
  EXPECT_EQ(sim.digest_of(1), digest_before);
}

TEST(DistSim, OptimisticReplayReconstructsExactState) {
  auto cfg = base(Protocol::optimistic_logging, 9);
  cfg.log_lag = 4;
  Simulation sim{cfg};
  sim.run(350);
  auto report = sim.crash_and_recover(2);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(sim.consistent());
  // Recovery must match a from-scratch replay: digest determinism was
  // verified by state_at() against the live run inside truncate().
  sim.run(50);
  EXPECT_TRUE(sim.consistent());
}

TEST(DistSim, UncoordinatedRecoveryCanCascade) {
  // With chatty processes and staggered checkpoints, some seed exhibits a
  // multi-process rollback (the domino effect).
  bool saw_cascade = false;
  for (std::uint64_t seed = 1; seed <= 20 && !saw_cascade; ++seed) {
    Simulation sim{base(Protocol::uncoordinated, seed)};
    sim.run(300);
    auto report = sim.crash_and_recover(0);
    ASSERT_TRUE(report.has_value());
    saw_cascade = report.value().processes_rolled_back > 1;
  }
  EXPECT_TRUE(saw_cascade);
}

TEST(DistSim, CoordinatedRecoveryRollsEveryoneButBoundsLoss) {
  Simulation sim{base(Protocol::coordinated)};
  sim.run(300);
  const auto work_before = sim.total_work();
  auto report = sim.crash_and_recover(1);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report.value().processes_rolled_back, sim.processes());
  // Loss is bounded by one coordinated interval's worth of global work.
  EXPECT_LE(report.value().work_lost, 10u);
  EXPECT_EQ(sim.total_work(), work_before - report.value().work_lost);
  EXPECT_FALSE(report.value().rolled_to_initial_state);
}

TEST(DistSim, MessageLoggingRollsBackOnlyTheVictimAndLosesNothing) {
  Simulation sim{base(Protocol::message_logging)};
  sim.run(300);
  const auto work_before = sim.total_work();
  const auto digest_before = sim.digest_of(2);
  auto report = sim.crash_and_recover(2);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report.value().processes_rolled_back, 1u);
  EXPECT_EQ(report.value().work_lost, 0u);
  EXPECT_EQ(sim.total_work(), work_before);
  // Replay reconstructs the exact pre-crash state (piecewise determinism).
  EXPECT_EQ(sim.digest_of(2), digest_before);
}

TEST(DistSim, UncoordinatedLosesMoreThanCoordinatedOnAverage) {
  std::uint64_t lost_unc = 0, lost_coord = 0;
  std::size_t rolled_unc = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Simulation unc{base(Protocol::uncoordinated, seed)};
    unc.run(400);
    auto ru = unc.crash_and_recover(0);
    lost_unc += ru.value().work_lost;
    rolled_unc += ru.value().processes_rolled_back;

    Simulation coord{base(Protocol::coordinated, seed)};
    coord.run(400);
    auto rc = coord.crash_and_recover(0);
    lost_coord += rc.value().work_lost;
  }
  // The domino-prone protocol discards more work in aggregate.
  EXPECT_GT(lost_unc, lost_coord);
  EXPECT_GT(rolled_unc, 15u);  // more than just the victim, overall
}

TEST(DistSim, ProtocolNames) {
  EXPECT_EQ(to_string(Protocol::uncoordinated), "uncoordinated");
  EXPECT_EQ(to_string(Protocol::coordinated), "coordinated");
  EXPECT_EQ(to_string(Protocol::message_logging), "message-logging");
}

}  // namespace
}  // namespace redundancy::rollback
