// tracetool analysis model tests. Traces are synthesised through the same
// obs::to_jsonl serialiser the runtime sinks use, so these tests pin the
// producer/consumer contract: whatever the recorder writes, tracetool reads.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "obs/sink.hpp"
#include "tracetool/jsonl.hpp"
#include "tracetool/trace_model.hpp"

namespace redundancy::tracetool {
namespace {

obs::SpanRecord span(std::uint64_t id, std::uint64_t parent,
                     const std::string& name, std::uint64_t start,
                     std::uint64_t end, bool ok = true) {
  obs::SpanRecord s;
  s.trace_id = 1;
  s.span_id = id;
  s.parent_id = parent;
  s.name = name;
  s.t_start_ns = start;
  s.t_end_ns = end;
  s.ok = ok;
  return s;
}

obs::AdjudicationEvent adjudication(const std::string& technique,
                                    bool accepted, std::size_t seen,
                                    std::size_t failed, std::size_t round = 1,
                                    std::size_t stragglers = 0) {
  obs::AdjudicationEvent e;
  e.trace_id = 1;
  e.technique = technique;
  e.round = round;
  e.electorate = seen + stragglers;
  e.ballots_seen = seen;
  e.ballots_failed = failed;
  e.accepted = accepted;
  e.verdict = accepted ? "ok" : "no acceptable result";
  e.stragglers_cancelled = stragglers;
  return e;
}

/// One request per technique: an NVP vote that masked a failed ballot, a
/// recovery-blocks run whose alternatives all failed, and a self-checking
/// switchover that cancelled a straggler.
TraceData make_trace() {
  std::ostringstream out;
  // nvp: parent 1000..10000, variants windowed 2000..7000.
  out << obs::to_jsonl(span(10, 0, "nvp", 1'000, 10'000)) << "\n";
  out << obs::to_jsonl(span(11, 10, "variant", 2'000, 5'000)) << "\n";
  out << obs::to_jsonl(span(12, 10, "variant", 2'200, 6'000)) << "\n";
  out << obs::to_jsonl(span(13, 10, "variant", 2'100, 7'000)) << "\n";
  out << obs::to_jsonl(adjudication("nvp", true, 3, 1)) << "\n";
  // recovery blocks: sequential alternatives, both rejected.
  out << obs::to_jsonl(span(20, 0, "recovery_blocks", 0, 8'000)) << "\n";
  out << obs::to_jsonl(span(21, 20, "alternative", 1'000, 3'000, false))
      << "\n";
  out << obs::to_jsonl(span(22, 20, "alternative", 3'000, 6'000, false))
      << "\n";
  out << obs::to_jsonl(adjudication("recovery_blocks", false, 2, 2, 2))
      << "\n";
  // self-checking: acting + spare components, one straggler cancelled.
  out << obs::to_jsonl(span(30, 0, "self_checking", 0, 5'000)) << "\n";
  out << obs::to_jsonl(span(31, 30, "component", 0, 4'000)) << "\n";
  out << obs::to_jsonl(span(32, 30, "component", 0, 4'500)) << "\n";
  out << obs::to_jsonl(adjudication("self_checking", true, 2, 0, 1, 1))
      << "\n";

  std::istringstream in{out.str()};
  TraceData trace;
  load_trace(in, trace);
  return trace;
}

TEST(TracetoolLoad, RoundTripsRecorderSerialisation) {
  const TraceData trace = make_trace();
  ASSERT_EQ(trace.spans.size(), 10u);
  ASSERT_EQ(trace.adjudications.size(), 3u);
  EXPECT_EQ(trace.malformed_lines, 0u);
  EXPECT_EQ(trace.unknown_records, 0u);

  const obs::SpanRecord& root = trace.spans[0];
  EXPECT_EQ(root.name, "nvp");
  EXPECT_EQ(root.span_id, 10u);
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(root.t_start_ns, 1'000u);
  EXPECT_TRUE(root.ok);
  EXPECT_FALSE(trace.spans[5].ok);

  const obs::AdjudicationEvent& vote = trace.adjudications[0];
  EXPECT_EQ(vote.technique, "nvp");
  EXPECT_TRUE(vote.accepted);
  EXPECT_EQ(vote.ballots_failed, 1u);
}

TEST(TracetoolLoad, CountsMalformedAndUnknownLines) {
  std::istringstream in{
      "{\"type\":\"span\",\"trace\":1\n"      // truncated record
      "{\"type\":\"checkpoint\",\"id\":1}\n"  // parseable, unknown type
      "\n"                                    // blank lines are skipped
      "not json at all\n"};
  TraceData trace;
  load_trace(in, trace);
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.malformed_lines, 2u);
  EXPECT_EQ(trace.unknown_records, 1u);
}

TEST(TracetoolJsonl, KeepsUint64TimestampsExact) {
  // 2^63 + 3 is not representable as a double; the parser must keep it.
  const auto object = parse_flat_object(
      "{\"t\":9223372036854775811,\"s\":\"a\\\"b\\n\",\"neg\":-2.5,"
      "\"on\":true,\"off\":null}");
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->at("t").u64, 9223372036854775811ull);
  EXPECT_EQ(object->at("s").str, "a\"b\n");
  EXPECT_EQ(object->at("neg").num, -2.5);
  EXPECT_TRUE(object->at("on").b);
  EXPECT_FALSE(parse_flat_object("{\"nested\":{}}").has_value());
  EXPECT_FALSE(parse_flat_object("{\"t\":1").has_value());
  EXPECT_FALSE(parse_flat_object("{\"t\":1} trailing").has_value());
}

TEST(TracetoolAttribution, AttributesVerdictsPerTechniqueWithFaultClass) {
  const auto rows = attribute(make_trace());
  ASSERT_EQ(rows.size(), 3u);
  // Sorted by technique name.
  EXPECT_EQ(rows[0].technique, "nvp");
  EXPECT_EQ(rows[1].technique, "recovery_blocks");
  EXPECT_EQ(rows[2].technique, "self_checking");

  EXPECT_EQ(rows[0].fault_class, "development");
  EXPECT_EQ(rows[0].verdicts, 1u);
  EXPECT_EQ(rows[0].accepted, 1u);
  EXPECT_EQ(rows[0].masked, 1u);
  EXPECT_EQ(rows[0].ballots_seen, 3u);
  EXPECT_EQ(rows[0].ballots_failed, 1u);
  EXPECT_DOUBLE_EQ(rows[0].mask_rate(), 1.0);
  EXPECT_DOUBLE_EQ(rows[0].failure_rate(), 0.0);

  EXPECT_EQ(rows[1].rejected, 1u);
  EXPECT_EQ(rows[1].rounds, 2u);
  EXPECT_DOUBLE_EQ(rows[1].failure_rate(), 1.0);

  EXPECT_EQ(rows[2].stragglers_cancelled, 1u);
  EXPECT_DOUBLE_EQ(rows[2].straggler_cancel_rate(), 1.0 / 3.0);
}

TEST(TracetoolAttribution, FaultClassMirrorsTable2) {
  EXPECT_EQ(fault_class_of("nvp"), "development");
  EXPECT_EQ(fault_class_of("recovery_blocks"), "development");
  EXPECT_EQ(fault_class_of("self_checking"), "development");
  EXPECT_EQ(fault_class_of("process_replicas"), "malicious");
  EXPECT_EQ(fault_class_of("checkpoint_recovery"), "Heisenbugs");
  EXPECT_EQ(fault_class_of("microreboot"), "Heisenbugs");
  EXPECT_EQ(fault_class_of("not_a_technique"), "—");
}

TEST(TracetoolLatency, DecomposesCriticalPathPerPattern) {
  const auto rows = critical_path(make_trace());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].pattern, "nvp");
  EXPECT_EQ(rows[1].pattern, "recovery_blocks");
  EXPECT_EQ(rows[2].pattern, "self_checking");

  // nvp: parent 1000..10000; variant window 2000..7000.
  EXPECT_EQ(rows[0].requests, 1u);
  EXPECT_EQ(rows[0].total_ns, 9'000u);
  EXPECT_EQ(rows[0].queue_ns, 1'000u);
  EXPECT_EQ(rows[0].variant_ns, 5'000u);
  EXPECT_EQ(rows[0].adjudication_ns, 3'000u);
  EXPECT_EQ(rows[0].variant_work_ns, 3'000u + 3'800 + 4'900);

  // recovery blocks: queue 1000, window 1000..6000, tail 2000.
  EXPECT_EQ(rows[1].queue_ns, 1'000u);
  EXPECT_EQ(rows[1].variant_ns, 5'000u);
  EXPECT_EQ(rows[1].adjudication_ns, 2'000u);

  // Decomposition tiles the parent span exactly for each request.
  for (const auto& r : rows) {
    EXPECT_EQ(r.queue_ns + r.variant_ns + r.adjudication_ns, r.total_ns)
        << r.pattern;
  }
}

TEST(TracetoolSlo, ErrorBudgetAccounting) {
  const SloReport report = slo_report(make_trace(), 99.0);
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_EQ(report.rows.back().technique, "overall");

  const SloRow& nvp = report.rows[0];
  EXPECT_DOUBLE_EQ(nvp.failure_rate, 0.0);
  EXPECT_DOUBLE_EQ(nvp.budget_consumed, 0.0);

  const SloRow& rb = report.rows[1];
  EXPECT_DOUBLE_EQ(rb.failure_rate, 1.0);
  EXPECT_NEAR(rb.budget_consumed, 100.0, 1e-9);

  const SloRow& overall = report.rows.back();
  EXPECT_EQ(overall.verdicts, 3u);
  EXPECT_EQ(overall.rejected, 1u);
  EXPECT_NEAR(overall.failure_rate, 1.0 / 3.0, 1e-12);
}

TEST(TracetoolMarkdown, RendersAllThreeReports) {
  const TraceData trace = make_trace();

  const std::string attribution = attribution_markdown(attribute(trace));
  EXPECT_NE(attribution.find("| technique | faults (Table 2) |"),
            std::string::npos);
  EXPECT_NE(attribution.find("| nvp | development | 1 | 1 | 1 | 0 |"),
            std::string::npos);
  EXPECT_NE(attribution.find("| recovery_blocks | development |"),
            std::string::npos);
  EXPECT_NE(attribution.find("| self_checking | development |"),
            std::string::npos);

  const std::string latency = latency_markdown(critical_path(trace));
  EXPECT_NE(latency.find("| nvp | 1 |"), std::string::npos);
  EXPECT_NE(latency.find("adjudication µs"), std::string::npos);

  const std::string slo = slo_markdown(slo_report(trace, 99.0));
  EXPECT_NE(slo.find("| nvp | 1 | 0 | 0.00% | 0.00% | within budget |"),
            std::string::npos);
  EXPECT_NE(slo.find("EXHAUSTED"), std::string::npos);
  EXPECT_NE(slo.find("| overall | 3 | 1 |"), std::string::npos);
}

TEST(TracetoolMarkdown, EmptyTraceRendersPlaceholders) {
  const TraceData trace;
  EXPECT_NE(attribution_markdown(attribute(trace))
                .find("_no adjudication events in trace_"),
            std::string::npos);
  EXPECT_NE(latency_markdown(critical_path(trace))
                .find("_no pattern spans in trace_"),
            std::string::npos);
}

}  // namespace
}  // namespace redundancy::tracetool
