// tracetool analysis model tests. Traces are synthesised through the same
// obs::to_jsonl serialiser the runtime sinks use, so these tests pin the
// producer/consumer contract: whatever the recorder writes, tracetool reads.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "obs/sink.hpp"
#include "tracetool/jsonl.hpp"
#include "tracetool/trace_model.hpp"

namespace redundancy::tracetool {
namespace {

obs::SpanRecord span(std::uint64_t id, std::uint64_t parent,
                     const std::string& name, std::uint64_t start,
                     std::uint64_t end, bool ok = true) {
  obs::SpanRecord s;
  s.trace_id = 1;
  s.span_id = id;
  s.parent_id = parent;
  s.name = name;
  s.t_start_ns = start;
  s.t_end_ns = end;
  s.ok = ok;
  return s;
}

obs::AdjudicationEvent adjudication(const std::string& technique,
                                    bool accepted, std::size_t seen,
                                    std::size_t failed, std::size_t round = 1,
                                    std::size_t stragglers = 0) {
  obs::AdjudicationEvent e;
  e.trace_id = 1;
  e.technique = technique;
  e.round = round;
  e.electorate = seen + stragglers;
  e.ballots_seen = seen;
  e.ballots_failed = failed;
  e.accepted = accepted;
  e.verdict = accepted ? "ok" : "no acceptable result";
  e.stragglers_cancelled = stragglers;
  return e;
}

/// One request per technique: an NVP vote that masked a failed ballot, a
/// recovery-blocks run whose alternatives all failed, and a self-checking
/// switchover that cancelled a straggler.
TraceData make_trace() {
  std::ostringstream out;
  // nvp: parent 1000..10000, variants windowed 2000..7000.
  out << obs::to_jsonl(span(10, 0, "nvp", 1'000, 10'000)) << "\n";
  out << obs::to_jsonl(span(11, 10, "variant", 2'000, 5'000)) << "\n";
  out << obs::to_jsonl(span(12, 10, "variant", 2'200, 6'000)) << "\n";
  out << obs::to_jsonl(span(13, 10, "variant", 2'100, 7'000)) << "\n";
  out << obs::to_jsonl(adjudication("nvp", true, 3, 1)) << "\n";
  // recovery blocks: sequential alternatives, both rejected.
  out << obs::to_jsonl(span(20, 0, "recovery_blocks", 0, 8'000)) << "\n";
  out << obs::to_jsonl(span(21, 20, "alternative", 1'000, 3'000, false))
      << "\n";
  out << obs::to_jsonl(span(22, 20, "alternative", 3'000, 6'000, false))
      << "\n";
  out << obs::to_jsonl(adjudication("recovery_blocks", false, 2, 2, 2))
      << "\n";
  // self-checking: acting + spare components, one straggler cancelled.
  out << obs::to_jsonl(span(30, 0, "self_checking", 0, 5'000)) << "\n";
  out << obs::to_jsonl(span(31, 30, "component", 0, 4'000)) << "\n";
  out << obs::to_jsonl(span(32, 30, "component", 0, 4'500)) << "\n";
  out << obs::to_jsonl(adjudication("self_checking", true, 2, 0, 1, 1))
      << "\n";

  std::istringstream in{out.str()};
  TraceData trace;
  load_trace(in, trace);
  return trace;
}

TEST(TracetoolLoad, RoundTripsRecorderSerialisation) {
  const TraceData trace = make_trace();
  ASSERT_EQ(trace.spans.size(), 10u);
  ASSERT_EQ(trace.adjudications.size(), 3u);
  EXPECT_EQ(trace.malformed_lines, 0u);
  EXPECT_EQ(trace.unknown_records, 0u);

  const obs::SpanRecord& root = trace.spans[0];
  EXPECT_EQ(root.name, "nvp");
  EXPECT_EQ(root.span_id, 10u);
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(root.t_start_ns, 1'000u);
  EXPECT_TRUE(root.ok);
  EXPECT_FALSE(trace.spans[5].ok);

  const obs::AdjudicationEvent& vote = trace.adjudications[0];
  EXPECT_EQ(vote.technique, "nvp");
  EXPECT_TRUE(vote.accepted);
  EXPECT_EQ(vote.ballots_failed, 1u);
}

TEST(TracetoolLoad, CountsMalformedAndUnknownLines) {
  std::istringstream in{
      "{\"type\":\"span\",\"trace\":1\n"      // truncated record
      "{\"type\":\"checkpoint\",\"id\":1}\n"  // parseable, unknown type
      "\n"                                    // blank lines are skipped
      "not json at all\n"};
  TraceData trace;
  load_trace(in, trace);
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.malformed_lines, 2u);
  EXPECT_EQ(trace.unknown_records, 1u);
}

TEST(TracetoolJsonl, KeepsUint64TimestampsExact) {
  // 2^63 + 3 is not representable as a double; the parser must keep it.
  const auto object = parse_flat_object(
      "{\"t\":9223372036854775811,\"s\":\"a\\\"b\\n\",\"neg\":-2.5,"
      "\"on\":true,\"off\":null}");
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->at("t").u64, 9223372036854775811ull);
  EXPECT_EQ(object->at("s").str, "a\"b\n");
  EXPECT_EQ(object->at("neg").num, -2.5);
  EXPECT_TRUE(object->at("on").b);
  EXPECT_FALSE(parse_flat_object("{\"nested\":{}}").has_value());
  EXPECT_FALSE(parse_flat_object("{\"t\":1").has_value());
  EXPECT_FALSE(parse_flat_object("{\"t\":1} trailing").has_value());
}

TEST(TracetoolAttribution, AttributesVerdictsPerTechniqueWithFaultClass) {
  const auto rows = attribute(make_trace());
  ASSERT_EQ(rows.size(), 3u);
  // Sorted by technique name.
  EXPECT_EQ(rows[0].technique, "nvp");
  EXPECT_EQ(rows[1].technique, "recovery_blocks");
  EXPECT_EQ(rows[2].technique, "self_checking");

  EXPECT_EQ(rows[0].fault_class, "development");
  EXPECT_EQ(rows[0].verdicts, 1u);
  EXPECT_EQ(rows[0].accepted, 1u);
  EXPECT_EQ(rows[0].masked, 1u);
  EXPECT_EQ(rows[0].ballots_seen, 3u);
  EXPECT_EQ(rows[0].ballots_failed, 1u);
  EXPECT_DOUBLE_EQ(rows[0].mask_rate(), 1.0);
  EXPECT_DOUBLE_EQ(rows[0].failure_rate(), 0.0);

  EXPECT_EQ(rows[1].rejected, 1u);
  EXPECT_EQ(rows[1].rounds, 2u);
  EXPECT_DOUBLE_EQ(rows[1].failure_rate(), 1.0);

  EXPECT_EQ(rows[2].stragglers_cancelled, 1u);
  EXPECT_DOUBLE_EQ(rows[2].straggler_cancel_rate(), 1.0 / 3.0);
}

TEST(TracetoolAttribution, FaultClassMirrorsTable2) {
  EXPECT_EQ(fault_class_of("nvp"), "development");
  EXPECT_EQ(fault_class_of("recovery_blocks"), "development");
  EXPECT_EQ(fault_class_of("self_checking"), "development");
  EXPECT_EQ(fault_class_of("process_replicas"), "malicious");
  EXPECT_EQ(fault_class_of("checkpoint_recovery"), "Heisenbugs");
  EXPECT_EQ(fault_class_of("microreboot"), "Heisenbugs");
  EXPECT_EQ(fault_class_of("not_a_technique"), "—");
}

TEST(TracetoolLatency, DecomposesCriticalPathPerPattern) {
  const auto rows = critical_path(make_trace());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].pattern, "nvp");
  EXPECT_EQ(rows[1].pattern, "recovery_blocks");
  EXPECT_EQ(rows[2].pattern, "self_checking");

  // nvp: parent 1000..10000; variant window 2000..7000.
  EXPECT_EQ(rows[0].requests, 1u);
  EXPECT_EQ(rows[0].total_ns, 9'000u);
  EXPECT_EQ(rows[0].queue_ns, 1'000u);
  EXPECT_EQ(rows[0].variant_ns, 5'000u);
  EXPECT_EQ(rows[0].adjudication_ns, 3'000u);
  EXPECT_EQ(rows[0].variant_work_ns, 3'000u + 3'800 + 4'900);

  // recovery blocks: queue 1000, window 1000..6000, tail 2000.
  EXPECT_EQ(rows[1].queue_ns, 1'000u);
  EXPECT_EQ(rows[1].variant_ns, 5'000u);
  EXPECT_EQ(rows[1].adjudication_ns, 2'000u);

  // Decomposition tiles the parent span exactly for each request.
  for (const auto& r : rows) {
    EXPECT_EQ(r.queue_ns + r.variant_ns + r.adjudication_ns, r.total_ns)
        << r.pattern;
  }
}

TEST(TracetoolSlo, ErrorBudgetAccounting) {
  const SloReport report = slo_report(make_trace(), 99.0);
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_EQ(report.rows.back().technique, "overall");

  const SloRow& nvp = report.rows[0];
  EXPECT_DOUBLE_EQ(nvp.failure_rate, 0.0);
  EXPECT_DOUBLE_EQ(nvp.budget_consumed, 0.0);

  const SloRow& rb = report.rows[1];
  EXPECT_DOUBLE_EQ(rb.failure_rate, 1.0);
  EXPECT_NEAR(rb.budget_consumed, 100.0, 1e-9);

  const SloRow& overall = report.rows.back();
  EXPECT_EQ(overall.verdicts, 3u);
  EXPECT_EQ(overall.rejected, 1u);
  EXPECT_NEAR(overall.failure_rate, 1.0 / 3.0, 1e-12);
}

TEST(TracetoolMarkdown, RendersAllThreeReports) {
  const TraceData trace = make_trace();

  const std::string attribution = attribution_markdown(attribute(trace));
  EXPECT_NE(attribution.find("| technique | faults (Table 2) |"),
            std::string::npos);
  EXPECT_NE(attribution.find("| nvp | development | 1 | 1 | 1 | 0 |"),
            std::string::npos);
  EXPECT_NE(attribution.find("| recovery_blocks | development |"),
            std::string::npos);
  EXPECT_NE(attribution.find("| self_checking | development |"),
            std::string::npos);

  const std::string latency = latency_markdown(critical_path(trace));
  EXPECT_NE(latency.find("| nvp | 1 |"), std::string::npos);
  EXPECT_NE(latency.find("adjudication µs"), std::string::npos);

  const std::string slo = slo_markdown(slo_report(trace, 99.0));
  EXPECT_NE(slo.find("| nvp | 1 | 0 | 0.00% | 0.00% | within budget |"),
            std::string::npos);
  EXPECT_NE(slo.find("EXHAUSTED"), std::string::npos);
  EXPECT_NE(slo.find("| overall | 3 | 1 |"), std::string::npos);
}

TEST(TracetoolFlight, LoadsSortsAndKeepsTheLastHeader) {
  std::istringstream in{
      "{\"type\":\"flight_header\",\"threads\":1,\"records_per_thread\":64,"
      "\"dropped\":0,\"t_dump_ns\":100}\n"
      "{\"type\":\"flight\",\"kind\":\"mark\",\"t_ns\":90,\"trace\":0,"
      "\"name\":\"early\",\"a\":1,\"b\":0,\"ok\":true,\"thread\":0}\n"
      // A second generation appended by a later crash dump: its header wins.
      "{\"type\":\"flight_header\",\"threads\":2,\"records_per_thread\":64,"
      "\"dropped\":3,\"t_dump_ns\":500}\n"
      "{\"type\":\"flight\",\"kind\":\"gateway\",\"t_ns\":400,\"trace\":7,"
      "\"name\":\"/vote\",\"a\":503,\"b\":120000,\"ok\":false,\"thread\":1}\n"
      "{\"type\":\"flight\",\"kind\":\"span\",\"t_ns\":200,\"trace\":7,"
      "\"name\":\"nvp.run\",\"a\":1000,\"b\":4,\"ok\":true,\"thread\":0}\n"
      "{\"type\":\"flight\",\"kind\":\"mark\",\"t_ns\":2"  // torn record
      "\n"
      "{\"type\":\"slo_window\",\"class\":\"x\"}\n"};  // wrong schema
  FlightDump dump;
  load_flight(in, dump);

  EXPECT_EQ(dump.headers, 2u);
  EXPECT_EQ(dump.threads, 2u);
  EXPECT_EQ(dump.dropped, 3u);
  EXPECT_EQ(dump.malformed_lines, 1u);
  EXPECT_EQ(dump.unknown_records, 1u);
  ASSERT_EQ(dump.events.size(), 3u);
  // Time-sorted regardless of file (dump-generation) order.
  EXPECT_EQ(dump.events[0].name, "early");
  EXPECT_EQ(dump.events[1].name, "nvp.run");
  EXPECT_EQ(dump.events[2].name, "/vote");
  EXPECT_EQ(dump.events[2].a, 503u);
  EXPECT_FALSE(dump.events[2].ok);

  const std::string md = flight_markdown(dump, 2);
  EXPECT_NE(md.find("3 across 2 thread ring(s)"), std::string::npos);
  EXPECT_NE(md.find("3 dropped over thread cap"), std::string::npos);
  EXPECT_NE(md.find("torn records are expected"), std::string::npos);
  EXPECT_NE(md.find("Last 2 events"), std::string::npos);
  // The tail keeps the newest events; the oldest one falls off.
  EXPECT_NE(md.find("| /vote |"), std::string::npos);
  EXPECT_EQ(md.find("| early |"), std::string::npos);
}

TEST(TracetoolFlight, EmptyDumpRendersPlaceholder) {
  FlightDump dump;
  EXPECT_NE(flight_markdown(dump, 8).find("_no flight events_"),
            std::string::npos);
}

TEST(TracetoolSloSnapshot, LoadsWindowsClassesAndFiringAlerts) {
  std::istringstream in{
      "{\"type\":\"slo_window\",\"class\":\"/vote\",\"window\":\"10s\","
      "\"window_s\":10,\"total\":100,\"errors\":40,\"error_rate\":0.4,"
      "\"burn_rate\":400,\"p50_ns\":1000000,\"p95_ns\":2000000,"
      "\"p99_ns\":150000000}\n"
      "{\"type\":\"slo_class\",\"class\":\"/vote\",\"latency_slo_ns\":5000000,"
      "\"availability\":0.999,\"state\":\"failing\",\"total\":1000,"
      "\"errors\":40,\"budget_allowed\":0.001,\"budget_consumed\":40,"
      "\"last_transition_ns\":123,\"alert_fast_burn\":true,"
      "\"alert_slow_burn\":false}\n"
      "garbage\n"};
  SloSnapshot snapshot;
  load_slo_snapshot(in, snapshot);

  EXPECT_EQ(snapshot.malformed_lines, 1u);
  ASSERT_EQ(snapshot.windows.size(), 1u);
  const SloWindowRow& w = snapshot.windows[0];
  EXPECT_EQ(w.request_class, "/vote");
  EXPECT_EQ(w.window, "10s");
  EXPECT_EQ(w.total, 100u);
  EXPECT_DOUBLE_EQ(w.error_rate, 0.4);
  EXPECT_DOUBLE_EQ(w.burn_rate, 400.0);
  EXPECT_DOUBLE_EQ(w.p99_ns, 150000000.0);

  ASSERT_EQ(snapshot.classes.size(), 1u);
  const SloClassRow& c = snapshot.classes[0];
  EXPECT_EQ(c.state, "failing");
  EXPECT_EQ(c.latency_slo_ns, 5000000u);
  ASSERT_EQ(c.firing.size(), 1u);  // only the true alert_ key survives
  EXPECT_EQ(c.firing[0], "fast_burn");

  const std::string md = slo_snapshot_markdown(snapshot);
  EXPECT_NE(md.find("## Classes"), std::string::npos);
  EXPECT_NE(md.find("## Windows"), std::string::npos);
  EXPECT_NE(md.find("| /vote | failing |"), std::string::npos);
  EXPECT_NE(md.find("fast_burn"), std::string::npos);
}

TEST(TracetoolSloSnapshot, EmptySnapshotRendersPlaceholders) {
  SloSnapshot snapshot;
  const std::string md = slo_snapshot_markdown(snapshot);
  EXPECT_NE(md.find("_no slo_class records_"), std::string::npos);
  EXPECT_NE(md.find("_no slo_window records_"), std::string::npos);
}

TEST(TracetoolMarkdown, EmptyTraceRendersPlaceholders) {
  const TraceData trace;
  EXPECT_NE(attribution_markdown(attribute(trace))
                .find("_no adjudication events in trace_"),
            std::string::npos);
  EXPECT_NE(latency_markdown(critical_path(trace))
                .find("_no pattern spans in trace_"),
            std::string::npos);
}

}  // namespace
}  // namespace redundancy::tracetool
