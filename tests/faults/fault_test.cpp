#include "faults/fault.hpp"

#include <gtest/gtest.h>

#include "faults/campaign.hpp"

namespace redundancy::faults {
namespace {

int golden(const int& x) { return x * 3; }

TEST(Bohrbug, DeterministicPerInput) {
  FaultInjector<int, int> v{"v", golden};
  v.add(bohrbug<int, int>("b", 0.3, 7, FailureKind::crash));
  for (int x = 0; x < 100; ++x) {
    const bool first = v(x).has_value();
    for (int rep = 0; rep < 5; ++rep) {
      EXPECT_EQ(v(x).has_value(), first) << "input " << x;
    }
  }
}

TEST(Bohrbug, DomainFractionApproximatesActivationRate) {
  FaultInjector<int, int> v{"v", golden};
  v.add(bohrbug<int, int>("b", 0.25, 11, FailureKind::crash));
  int failures = 0;
  for (int x = 0; x < 10'000; ++x) failures += v(x).has_value() ? 0 : 1;
  EXPECT_NEAR(failures / 10'000.0, 0.25, 0.02);
}

TEST(Bohrbug, SameSaltMeansCorrelatedFailureRegions) {
  FaultInjector<int, int> a{"a", golden};
  FaultInjector<int, int> b{"b", golden};
  a.add(bohrbug<int, int>("f", 0.2, 42, FailureKind::crash));
  b.add(bohrbug<int, int>("f", 0.2, 42, FailureKind::crash));
  for (int x = 0; x < 2000; ++x) {
    EXPECT_EQ(a(x).has_value(), b(x).has_value()) << x;
  }
}

TEST(Bohrbug, DistinctSaltsAreNearlyIndependent) {
  FaultInjector<int, int> a{"a", golden};
  FaultInjector<int, int> b{"b", golden};
  a.add(bohrbug<int, int>("f", 0.2, 1, FailureKind::crash));
  b.add(bohrbug<int, int>("f", 0.2, 2, FailureKind::crash));
  int both = 0, either = 0;
  for (int x = 0; x < 50'000; ++x) {
    const bool fa = !a(x).has_value();
    const bool fb = !b(x).has_value();
    both += (fa && fb) ? 1 : 0;
    either += (fa || fb) ? 1 : 0;
  }
  // Independent 0.2/0.2 regions overlap on ~4% of inputs.
  EXPECT_NEAR(both / 50'000.0, 0.04, 0.01);
  EXPECT_NEAR(either / 50'000.0, 0.36, 0.02);
}

TEST(Heisenbug, RateMatchesProbability) {
  auto rng = std::make_shared<util::Rng>(5);
  FaultInjector<int, int> v{"v", golden};
  v.add(heisenbug<int, int>("h", 0.1, rng));
  int failures = 0;
  for (int i = 0; i < 50'000; ++i) failures += v(1).has_value() ? 0 : 1;
  EXPECT_NEAR(failures / 50'000.0, 0.1, 0.01);
}

TEST(Heisenbug, SameInputCanSucceedOnRetry) {
  auto rng = std::make_shared<util::Rng>(5);
  FaultInjector<int, int> v{"v", golden};
  v.add(heisenbug<int, int>("h", 0.5, rng));
  bool saw_success = false, saw_failure = false;
  for (int i = 0; i < 100; ++i) {
    if (v(7).has_value()) {
      saw_success = true;
    } else {
      saw_failure = true;
    }
  }
  EXPECT_TRUE(saw_success);
  EXPECT_TRUE(saw_failure);
}

TEST(WrongOutputManifestation, CorruptsInsteadOfCrashing) {
  FaultInjector<int, int> v{"v", golden};
  v.add(bohrbug<int, int>("b", 1.0, 3, FailureKind::wrong_output,
                          off_by_one<int, int>()));
  auto out = v(10);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 31);  // 30 + 1
}

TEST(SkewedCorruption, DistinctSkewsDisagree) {
  FaultInjector<int, int> a{"a", golden};
  FaultInjector<int, int> b{"b", golden};
  a.add(bohrbug<int, int>("f", 1.0, 9, FailureKind::wrong_output,
                          skewed<int, int>(1)));
  b.add(bohrbug<int, int>("f", 1.0, 9, FailureKind::wrong_output,
                          skewed<int, int>(2)));
  EXPECT_NE(a(5).value(), b(5).value());
}

TEST(BurstFault, FiresForExactWindows) {
  FaultInjector<int, int> v{"v", golden};
  v.add(burst_fault<int, int>("b", 10, 3));
  // Pattern repeats every 10 executions: 3 failures then 7 successes.
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 10; ++i) {
      const bool failed = !v(42).has_value();
      EXPECT_EQ(failed, i < 3) << "cycle " << cycle << " pos " << i;
    }
  }
}

TEST(BurstFault, RetryInsideABurstKeepsFailing) {
  FaultInjector<int, int> v{"v", golden};
  v.add(burst_fault<int, int>("b", 100, 5));
  // First execution fails; 3 immediate retries land inside the burst too.
  EXPECT_FALSE(v(1).has_value());
  EXPECT_FALSE(v(1).has_value());
  EXPECT_FALSE(v(1).has_value());
  EXPECT_FALSE(v(1).has_value());
  // The 5-long burst is over on the 6th execution.
  EXPECT_FALSE(v(1).has_value());
  EXPECT_TRUE(v(1).has_value());
}

TEST(ConditionalFault, FollowsAmbientPredicate) {
  bool armed = false;
  FaultInjector<int, int> v{"v", golden};
  v.add(conditional_fault<int, int>("c", FaultClass::heisenbug,
                                    [&armed] { return armed; }));
  EXPECT_TRUE(v(1).has_value());
  armed = true;
  EXPECT_FALSE(v(1).has_value());
  armed = false;
  EXPECT_TRUE(v(1).has_value());
}

TEST(FaultInjector, FirstActivatedFaultWins) {
  FaultInjector<int, int> v{"v", golden};
  v.add(bohrbug<int, int>("first", 1.0, 1, FailureKind::timeout));
  v.add(bohrbug<int, int>("second", 1.0, 2, FailureKind::crash));
  auto out = v(0);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, FailureKind::timeout);
}

TEST(FaultInjector, CleanVariantIsGolden) {
  FaultInjector<int, int> v{"v", golden};
  for (int x = -50; x < 50; ++x) {
    auto out = v(x);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out.value(), x * 3);
  }
}

TEST(FaultInjector, AsVariantPreservesBehaviourAndMetadata) {
  FaultInjector<int, int> v{"injected", golden};
  auto variant = v.as_variant(2.5);
  EXPECT_EQ(variant.name, "injected");
  EXPECT_DOUBLE_EQ(variant.cost, 2.5);
  EXPECT_EQ(variant(4).value(), 12);
}

TEST(Campaign, CountsAllOutcomeKinds) {
  FaultInjector<int, int> v{"v", golden};
  v.add(bohrbug<int, int>("silent", 0.2, 5, FailureKind::wrong_output,
                          off_by_one<int, int>()));
  v.add(bohrbug<int, int>("loud", 0.2, 6, FailureKind::crash));
  auto report = run_campaign<int, int>(
      "mixed", 5000,
      [](std::size_t i, util::Rng&) { return static_cast<int>(i); },
      [&v](const int& x) { return v(x); },
      [](const int& x) { return x * 3; });
  EXPECT_EQ(report.requests, 5000u);
  EXPECT_EQ(report.correct + report.wrong + report.detected, 5000u);
  EXPECT_GT(report.wrong, 0u);
  EXPECT_GT(report.detected, 0u);
  EXPECT_GT(report.correct, 0u);
  // Safety counts detected failures as safe; reliability does not.
  EXPECT_GT(report.safety_value(), report.reliability_value());
  EXPECT_NE(report.summary().find("mixed"), std::string::npos);
}

TEST(Campaign, PerfectSystemScoresOne) {
  auto report = run_campaign<int, int>(
      "perfect", 100,
      [](std::size_t i, util::Rng&) { return static_cast<int>(i); },
      [](const int& x) -> core::Result<int> { return x * 3; },
      [](const int& x) { return x * 3; });
  EXPECT_DOUBLE_EQ(report.reliability_value(), 1.0);
  EXPECT_DOUBLE_EQ(report.safety_value(), 1.0);
}

TEST(InputPosition, StableAndUniform) {
  double sum = 0.0;
  for (int x = 0; x < 10'000; ++x) {
    const double p = input_position(x, 99);
    ASSERT_GE(p, 0.0);
    ASSERT_LT(p, 1.0);
    EXPECT_DOUBLE_EQ(p, input_position(x, 99));
    sum += p;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace redundancy::faults
