// Determinism contract of the parallel campaign runner: thanks to
// counter-based seed splitting (util::Rng::split), request i draws the same
// randomness no matter which worker serves it, so the merged counts are
// byte-identical for any worker count and identical to the serial runner.
#include "faults/campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "faults/fault.hpp"

namespace redundancy::faults {
namespace {

int golden(const int& x) { return x * 3; }

std::function<int(std::size_t, util::Rng&)> uniform_workload() {
  return [](std::size_t, util::Rng& rng) {
    return static_cast<int>(rng.below(100'000));
  };
}

/// A faulty system: bohrbug on ~20% of the input domain — failure is a pure
/// function of the input, so any sharding sees the same outcomes.
std::function<core::Result<int>(const int&)> faulty_system() {
  auto inj = std::make_shared<FaultInjector<int, int>>("sut", golden);
  inj->add(bohrbug<int, int>("b", 0.2, 17, core::FailureKind::crash));
  return [inj](const int& x) { return (*inj)(x); };
}

bool same_counts(const CampaignReport& a, const CampaignReport& b) {
  return a.requests == b.requests && a.correct == b.correct &&
         a.wrong == b.wrong && a.detected == b.detected &&
         a.reliability.trials() == b.reliability.trials() &&
         a.reliability.successes() == b.reliability.successes() &&
         a.safety.trials() == b.safety.trials() &&
         a.safety.successes() == b.safety.successes();
}

TEST(CampaignParallel, CountsIdenticalForAnyWorkerCount) {
  constexpr std::size_t kRequests = 2'000;
  constexpr std::uint64_t kSeed = 42;
  const auto serial = run_campaign<int, int>(
      "serial", kRequests, uniform_workload(), faulty_system(),
      std::function<int(const int&)>{golden}, kSeed);
  EXPECT_GT(serial.detected, 0u);  // the bug fires: comparison is non-trivial
  EXPECT_GT(serial.correct, 0u);
  for (std::size_t workers : {1u, 2u, 8u}) {
    const auto parallel = run_campaign_parallel<int, int>(
        "parallel", kRequests, uniform_workload(),
        [] { return faulty_system(); },
        std::function<int(const int&)>{golden}, kSeed, workers);
    EXPECT_TRUE(same_counts(serial, parallel)) << "workers=" << workers;
  }
}

TEST(CampaignParallel, SharedSystemOverloadMatchesSerial) {
  constexpr std::size_t kRequests = 1'000;
  const auto system = faulty_system();
  const auto serial = run_campaign<int, int>(
      "serial", kRequests, uniform_workload(), system,
      std::function<int(const int&)>{golden}, 7);
  const auto parallel = run_campaign_parallel<int, int>(
      "parallel", kRequests, uniform_workload(), system,
      std::function<int(const int&)>{golden}, 7, 4);
  EXPECT_TRUE(same_counts(serial, parallel));
}

TEST(CampaignParallel, FactoryBuildsOneSystemPerShard) {
  std::atomic<int> built{0};
  (void)run_campaign_parallel<int, int>(
      "count", 100, uniform_workload(),
      [&built]() -> std::function<core::Result<int>(const int&)> {
        built.fetch_add(1);
        return [](const int& x) -> core::Result<int> { return golden(x); };
      },
      std::function<int(const int&)>{golden}, 1, 4);
  EXPECT_EQ(built.load(), 4);
}

TEST(CampaignParallel, WorkerCountClampedToRequests) {
  const auto report = run_campaign_parallel<int, int>(
      "tiny", 3, uniform_workload(),
      [] { return faulty_system(); }, std::function<int(const int&)>{golden},
      1, 16);
  EXPECT_EQ(report.requests, 3u);
}

TEST(CampaignParallel, SystemExceptionReachesCaller) {
  EXPECT_THROW(
      (run_campaign_parallel<int, int>(
          "throwing", 50, uniform_workload(),
          []() -> std::function<core::Result<int>(const int&)> {
            return [](const int&) -> core::Result<int> {
              throw std::runtime_error{"sut exploded"};
            };
          },
          std::function<int(const int&)>{golden}, 1, 2)),
      std::runtime_error);
}

TEST(CampaignReportMerge, SumsCountsAndProportions) {
  CampaignReport a;
  a.name = "a";
  a.requests = 10;
  a.correct = 7;
  a.wrong = 1;
  a.detected = 2;
  for (int i = 0; i < 7; ++i) a.reliability.add(true);
  for (int i = 0; i < 3; ++i) a.reliability.add(false);
  for (int i = 0; i < 9; ++i) a.safety.add(true);
  a.safety.add(false);

  CampaignReport b;
  b.name = "b";
  b.requests = 5;
  b.correct = 5;
  for (int i = 0; i < 5; ++i) {
    b.reliability.add(true);
    b.safety.add(true);
  }

  a.merge(b);
  EXPECT_EQ(a.name, "a");  // merge keeps the receiver's name
  EXPECT_EQ(a.requests, 15u);
  EXPECT_EQ(a.correct, 12u);
  EXPECT_EQ(a.wrong, 1u);
  EXPECT_EQ(a.detected, 2u);
  EXPECT_EQ(a.reliability.trials(), 15u);
  EXPECT_EQ(a.reliability.successes(), 12u);
  EXPECT_EQ(a.safety.trials(), 15u);
  EXPECT_EQ(a.safety.successes(), 14u);
}

TEST(CampaignReportMerge, MergeWithEmptyIsIdentity) {
  CampaignReport a;
  a.requests = 4;
  a.correct = 4;
  for (int i = 0; i < 4; ++i) {
    a.reliability.add(true);
    a.safety.add(true);
  }
  a.merge(CampaignReport{});
  EXPECT_EQ(a.requests, 4u);
  EXPECT_DOUBLE_EQ(a.reliability_value(), 1.0);
}

}  // namespace
}  // namespace redundancy::faults
