#include "techniques/rejuvenation.hpp"

#include <gtest/gtest.h>

namespace redundancy::techniques {
namespace {

env::AgingConfig fast_aging() {
  env::AgingConfig cfg;
  cfg.capacity = 1000.0;
  cfg.mean_leak = 5.0;
  cfg.hazard_scale = 0.08;
  cfg.reboot_time = 200.0;
  return cfg;
}

TEST(Rejuvenation, PeriodicPolicyPreventsCrashes) {
  const auto aging = fast_aging();
  const auto none =
      serve_with_rejuvenation(aging, RejuvenationPolicy::none(), 5000, 1);
  const auto periodic = serve_with_rejuvenation(
      aging, RejuvenationPolicy::periodic(100), 5000, 1);
  EXPECT_GT(none.crashes, 0u);
  EXPECT_LT(periodic.crashes, none.crashes);
  EXPECT_GT(periodic.rejuvenations, 0u);
}

TEST(Rejuvenation, ThresholdPolicyPreventsCrashes) {
  const auto aging = fast_aging();
  const auto threshold = serve_with_rejuvenation(
      aging, RejuvenationPolicy::threshold(0.5), 5000, 1);
  const auto none =
      serve_with_rejuvenation(aging, RejuvenationPolicy::none(), 5000, 1);
  EXPECT_LT(threshold.crashes, none.crashes);
}

TEST(Rejuvenation, GoodputImprovesWhenPlannedDowntimeIsCheap) {
  const auto aging = fast_aging();
  const auto none =
      serve_with_rejuvenation(aging, RejuvenationPolicy::none(), 10'000, 3);
  const auto rejuv = serve_with_rejuvenation(
      aging, RejuvenationPolicy::periodic(100, /*downtime=*/20.0), 10'000, 3);
  EXPECT_GT(rejuv.goodput(), none.goodput());
  EXPECT_GT(rejuv.availability(), none.availability());
}

TEST(Rejuvenation, OverAggressivePeriodWastesAvailability) {
  // Rejuvenating after every request pays planned downtime constantly: the
  // classic period trade-off has an interior optimum.
  const auto aging = fast_aging();
  const auto sane = serve_with_rejuvenation(
      aging, RejuvenationPolicy::periodic(100, 80.0), 3000, 5);
  const auto frantic = serve_with_rejuvenation(
      aging, RejuvenationPolicy::periodic(1, 80.0), 3000, 5);
  EXPECT_GT(sane.availability(), frantic.availability());
}

TEST(Rejuvenation, AccountingIsConsistent) {
  const auto run = serve_with_rejuvenation(
      fast_aging(), RejuvenationPolicy::periodic(200), 2000, 9);
  EXPECT_EQ(run.offered, 2000u);
  EXPECT_EQ(run.served + run.failed, run.offered);
  EXPECT_GE(run.elapsed, run.downtime);
}

TEST(Rejuvenation, NoPolicyMeansNoRejuvenations) {
  const auto run =
      serve_with_rejuvenation(fast_aging(), RejuvenationPolicy::none(), 1000, 2);
  EXPECT_EQ(run.rejuvenations, 0u);
}

TEST(Rejuvenation, PolicyDescriptions) {
  EXPECT_EQ(RejuvenationPolicy::none().describe(), "none");
  EXPECT_NE(RejuvenationPolicy::periodic(50).describe().find("50"),
            std::string::npos);
  EXPECT_NE(RejuvenationPolicy::threshold(0.6).describe().find("60%"),
            std::string::npos);
}

TEST(Rejuvenation, TaxonomyMatchesPaperRow) {
  const auto t = rejuvenation_taxonomy();
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::preventive);
  EXPECT_EQ(t.faults, core::TargetFaults::heisenbugs);
  EXPECT_EQ(t.type, core::RedundancyType::environment);
}

}  // namespace
}  // namespace redundancy::techniques
