#include "techniques/process_pair.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "util/rng.hpp"

namespace redundancy::techniques {
namespace {

class Counter final : public env::Checkpointable {
 public:
  std::int64_t value = 0;
  [[nodiscard]] util::ByteBuffer snapshot() const override {
    util::ByteBuffer buf;
    buf.put(value);
    return buf;
  }
  void restore(const util::ByteBuffer& state) override {
    value = state.reader().get<std::int64_t>();
  }
};

TEST(ProcessPair, HealthyPrimaryServesAlone) {
  Counter state;
  ProcessPair pair{state};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pair.run([&state] {
                      state.value += 1;
                      return core::ok_status();
                    }).has_value());
  }
  EXPECT_EQ(pair.acting(), 0u);
  EXPECT_EQ(pair.takeovers(), 0u);
  EXPECT_EQ(state.value, 20);
  EXPECT_GT(pair.checkpoints_shipped(), 1u);
}

TEST(ProcessPair, BackupTakesOverOnHeisenbugCrash) {
  Counter state;
  ProcessPair pair{state, {.ship_every = 1, .max_takeovers = 2}};
  int attempt = 0;
  auto status = pair.run([&state, &attempt] {
    state.value += 1;
    // First execution hits a Heisenbug; the re-execution on the backup
    // draws fresh conditions and passes.
    if (++attempt == 1) {
      return core::Status{core::failure(core::FailureKind::crash, "heisen",
                                        core::FaultClass::heisenbug)};
    }
    return core::ok_status();
  });
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(pair.acting(), 1u);   // the backup is now acting
  EXPECT_EQ(pair.takeovers(), 1u);
  EXPECT_EQ(state.value, 1);      // the failed attempt's delta was discarded
}

TEST(ProcessPair, WorkSinceLastShipmentIsLostOnTakeover) {
  Counter state;
  ProcessPair pair{state, {.ship_every = 100, .max_takeovers = 1}};
  // 5 successful ops; none shipped yet (interval 100).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pair.run([&state] {
                      state.value += 1;
                      return core::ok_status();
                    }).has_value());
  }
  int attempt = 0;
  ASSERT_TRUE(pair.run([&state, &attempt] {
                    state.value += 1;
                    return ++attempt == 1
                               ? core::Status{core::failure(
                                     core::FailureKind::crash)}
                               : core::ok_status();
                  }).has_value());
  // The takeover restored the *initial* shipped state; the 5 units of
  // unshipped work were lost and only the re-executed op's unit remains.
  EXPECT_EQ(state.value, 1);
}

TEST(ProcessPair, BohrbugDefeatsBothSides) {
  Counter state;
  ProcessPair pair{state, {.ship_every = 1, .max_takeovers = 3}};
  auto status = pair.run([&state] {
    state.value += 1;
    return core::Status{core::failure(core::FailureKind::wrong_output,
                                      "deterministic",
                                      core::FaultClass::bohrbug)};
  });
  EXPECT_FALSE(status.has_value());
  EXPECT_EQ(pair.unrecovered(), 1u);
  EXPECT_EQ(pair.takeovers(), 3u);  // it tried; the peer fails identically
}

TEST(ProcessPair, LongHaulUnderSporadicCrashes) {
  Counter state;
  ProcessPair pair{state, {.ship_every = 1, .max_takeovers = 2}};
  auto rng = std::make_shared<util::Rng>(5);
  std::int64_t committed = 0;
  for (int i = 0; i < 2000; ++i) {
    auto status = pair.run([&state, rng] {
      state.value += 1;
      if (rng->chance(0.1)) {
        return core::Status{core::failure(core::FailureKind::crash, "heisen",
                                          core::FaultClass::heisenbug)};
      }
      return core::ok_status();
    });
    if (status.has_value()) ++committed;
  }
  // With ship_every=1 and re-rolling faults, nearly everything commits and
  // the counter exactly tracks the committed operations.
  EXPECT_GT(committed, 1950);
  EXPECT_EQ(state.value, committed);
  EXPECT_GT(pair.takeovers(), 100u);
}

TEST(ProcessPair, TaxonomyIsGraysRow) {
  const auto t = ProcessPair::taxonomy();
  EXPECT_EQ(t.type, core::RedundancyType::environment);
  EXPECT_EQ(t.faults, core::TargetFaults::heisenbugs);
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::reactive_explicit);
}

}  // namespace
}  // namespace redundancy::techniques
