#include "techniques/recovery_blocks.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "faults/fault.hpp"
#include "util/thread_pool.hpp"

namespace redundancy::techniques {
namespace {

using core::Result;

core::Variant<int, int> square(std::string name) {
  return core::make_variant<int, int>(std::move(name),
                                      [](const int& x) -> Result<int> {
                                        return x * x;
                                      });
}

core::Variant<int, int> wrong(std::string name) {
  return core::make_variant<int, int>(std::move(name),
                                      [](const int& x) -> Result<int> {
                                        return x * x + 1;
                                      });
}

core::AcceptanceTest<int, int> square_acceptance() {
  return [](const int& x, const int& out) { return out == x * x; };
}

TEST(RecoveryBlocks, PrimaryPassesAcceptance) {
  RecoveryBlocks<int, int> rb{{square("primary"), square("alt")},
                              square_acceptance()};
  auto out = rb.run(5);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 25);
  EXPECT_EQ(rb.last_used_alternate(), 0u);
  EXPECT_EQ(rb.metrics().variant_executions, 1u);
}

TEST(RecoveryBlocks, AlternateRunsWhenPrimaryRejected) {
  RecoveryBlocks<int, int> rb{{wrong("primary"), square("alt")},
                              square_acceptance()};
  auto out = rb.run(5);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 25);
  EXPECT_EQ(rb.last_used_alternate(), 1u);
  EXPECT_EQ(rb.metrics().recoveries, 1u);
}

TEST(RecoveryBlocks, WeakAcceptanceLetsWrongResultsThrough) {
  // The acceptance test is the single point of trust: a vacuous test
  // accepts the faulty primary and the redundancy never engages.
  RecoveryBlocks<int, int> rb{{wrong("primary"), square("alt")},
                              core::accept_all<int, int>()};
  auto out = rb.run(5);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 26);
}

TEST(RecoveryBlocks, ExhaustionFails) {
  RecoveryBlocks<int, int> rb{{wrong("a"), wrong("b")}, square_acceptance()};
  auto out = rb.run(2);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, core::FailureKind::no_alternatives);
}

/// Stateful subject: alternates mutate shared state; rollback must undo it.
class Ledger final : public env::Checkpointable {
 public:
  std::vector<std::int64_t> entries;
  [[nodiscard]] util::ByteBuffer snapshot() const override {
    util::ByteBuffer buf;
    buf.put(static_cast<std::uint32_t>(entries.size()));
    for (auto v : entries) buf.put(v);
    return buf;
  }
  void restore(const util::ByteBuffer& state) override {
    auto r = state.reader();
    entries.assign(r.get<std::uint32_t>(), 0);
    for (auto& v : entries) v = r.get<std::int64_t>();
  }
};

TEST(RecoveryBlocks, RollbackUndoesPartialStateBeforeAlternate) {
  Ledger ledger;
  ledger.entries = {1, 2};
  // Primary appends garbage then fails acceptance; the alternate must see
  // the pre-primary state.
  auto dirty_primary = core::make_variant<int, int>(
      "dirty", [&ledger](const int& x) -> Result<int> {
        ledger.entries.push_back(-999);
        return x * x + 1;  // will be rejected
      });
  std::size_t observed_size_at_alt = 0;
  auto clean_alt = core::make_variant<int, int>(
      "clean", [&ledger, &observed_size_at_alt](const int& x) -> Result<int> {
        observed_size_at_alt = ledger.entries.size();
        ledger.entries.push_back(x);
        return x * x;
      });
  RecoveryBlocks<int, int> rb{{dirty_primary, clean_alt}, square_acceptance(),
                              ledger};
  auto out = rb.run(3);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(observed_size_at_alt, 2u);  // the -999 was rolled back
  EXPECT_EQ(ledger.entries, (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(rb.metrics().rollbacks, 1u);
}

TEST(RecoveryBlocks, SequentialCostOnlyWhatRan) {
  RecoveryBlocks<int, int> rb{{square("p"), square("a1"), square("a2")},
                              square_acceptance()};
  for (int i = 0; i < 10; ++i) (void)rb.run(i);
  EXPECT_DOUBLE_EQ(rb.metrics().executions_per_request(), 1.0);
}

TEST(RecoveryBlocks, CrashingPrimaryAlsoTriggersAlternate) {
  faults::FaultInjector<int, int> crashy{"crashy", [](const int& x) {
    return x * x;
  }};
  crashy.add(faults::bohrbug<int, int>("b", 1.0, 3, core::FailureKind::crash));
  RecoveryBlocks<int, int> rb{{crashy.as_variant(), square("alt")},
                              square_acceptance()};
  auto out = rb.run(4);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 16);
}

TEST(RecoveryBlocks, TaxonomyMatchesPaperRow) {
  const auto t = RecoveryBlocks<int, int>::taxonomy();
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::reactive_explicit);
  EXPECT_EQ(t.pattern, core::ArchitecturalPattern::sequential_alternatives);
}

TEST(RecoveryBlocks, EnableCacheSkipsAlternatesOnRepeats) {
  RecoveryBlocks<int, int> rb{{wrong("primary"), square("alt")},
                              square_acceptance()};
  rb.enable_cache();
  for (int i = 0; i < 4; ++i) {
    auto out = rb.run(5);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out.value(), 25);
  }
  if (core::kCacheCompiledIn) {
    // The miss ran primary + alternate; hits ran neither.
    EXPECT_EQ(rb.metrics().variant_executions, 2u);
    EXPECT_EQ(rb.metrics().requests, 4u);
  }
}

TEST(RecoveryBlocks, EnableHedgingRacesAlternatesOnSlowPrimary) {
  RecoveryBlocks<int, int> rb{
      {core::make_variant<int, int>("slow-primary",
                                    [](const int& x) -> Result<int> {
                                      std::this_thread::sleep_for(
                                          std::chrono::milliseconds(100));
                                      return x * x;
                                    }),
       square("fast-alt")},
      square_acceptance()};
  typename core::SequentialAlternatives<int, int>::Options::Hedge hedge;
  hedge.enabled = true;
  hedge.fallback_budget_ns = 2'000'000;  // hedge after 2ms
  hedge.min_samples = 1'000'000;         // pin to the fallback budget
  hedge.min_budget_ns = 0;
  rb.enable_hedging(hedge);
  EXPECT_EQ(rb.hedge_budget_ns(), 2'000'000u);

  const auto start = std::chrono::steady_clock::now();
  auto out = rb.run(6);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 36);
  EXPECT_LT(elapsed, std::chrono::milliseconds(80))
      << "the fast alternate should win long before the primary finishes";
  util::ThreadPool::shared().wait_idle();
  EXPECT_GE(rb.metrics().hedged_launches, 1u);
}

// --- concurrent form --------------------------------------------------------

TEST(ConcurrentRecoveryBlocks, FirstPassingResultWins) {
  ConcurrentRecoveryBlocks<int, int> rb{{wrong("primary"), square("alt")},
                                        square_acceptance()};
  auto out = rb.run(5);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 25);
  EXPECT_EQ(rb.last_used_alternate(), 1u);
  util::ThreadPool::shared().wait_idle();
}

TEST(ConcurrentRecoveryBlocks, RejectedAlternateStaysInService) {
  ConcurrentRecoveryBlocks<int, int> rb{{wrong("primary"), square("alt")},
                                        square_acceptance()};
  for (int i = 0; i < 5; ++i) {
    auto out = rb.run(i);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out.value(), i * i);
  }
  util::ThreadPool::shared().wait_idle();
  // Rejection reflects the input, not component death: the primary keeps
  // being tried (and keeps failing) on every request.
  EXPECT_EQ(rb.metrics().disabled_components, 0u);
}

TEST(ConcurrentRecoveryBlocks, ExhaustionFails) {
  ConcurrentRecoveryBlocks<int, int> rb{{wrong("a"), wrong("b")},
                                        square_acceptance()};
  auto out = rb.run(2);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, core::FailureKind::no_alternatives);
  util::ThreadPool::shared().wait_idle();
}

}  // namespace
}  // namespace redundancy::techniques
