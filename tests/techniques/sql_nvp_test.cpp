#include "techniques/sql_nvp.hpp"

#include <gtest/gtest.h>

#include "sql/chaos.hpp"

namespace redundancy::techniques {
namespace {

using sql::Condition;
using sql::Row;

ReplicatedSqlServer healthy_triple() {
  std::vector<sql::StorePtr> replicas;
  replicas.push_back(sql::make_vector_store());
  replicas.push_back(sql::make_btree_store());
  replicas.push_back(sql::make_log_store());
  return ReplicatedSqlServer{std::move(replicas)};
}

TEST(ReplicatedSql, BehavesLikeASingleStore) {
  auto server = healthy_triple();
  ASSERT_TRUE(server.create_table("inv", {"id", "qty"}).has_value());
  ASSERT_TRUE(server.insert("inv", {1, 10}).has_value());
  ASSERT_TRUE(server.insert("inv", {2, 20}).has_value());
  EXPECT_EQ(server.select("inv", std::nullopt).value(),
            (std::vector<Row>{{1, 10}, {2, 20}}));
  EXPECT_EQ(
      server.update("inv", Condition{"id", Condition::Op::eq, 2}, "qty", 25)
          .value(),
      1);
  EXPECT_EQ(server.remove("inv", Condition{"qty", Condition::Op::lt, 20})
                .value(),
            1);
  EXPECT_EQ(server.replicas_in_service(), 3u);
  EXPECT_EQ(server.divergences_masked(), 0u);
}

TEST(ReplicatedSql, ErrorsVoteLikeValues) {
  auto server = healthy_triple();
  ASSERT_TRUE(server.create_table("t", {"id"}).has_value());
  ASSERT_TRUE(server.insert("t", {1}).has_value());
  // Every correct engine reports the duplicate key: the verdict is the
  // *failure*, unanimously, and nobody gets evicted.
  auto dup = server.insert("t", {1});
  EXPECT_FALSE(dup.has_value());
  EXPECT_EQ(server.replicas_in_service(), 3u);
}

TEST(ReplicatedSql, MasksCorruptReadsAndEvictsTheLiar) {
  std::vector<sql::StorePtr> replicas;
  replicas.push_back(sql::make_vector_store());
  replicas.push_back(sql::make_btree_store());
  replicas.push_back(sql::make_chaotic_store(
      sql::make_log_store(),
      {.lose_mutation_probability = 0, .corrupt_read_probability = 1.0,
       .seed = 3}));
  ReplicatedSqlServer server{std::move(replicas)};
  ASSERT_TRUE(server.create_table("t", {"id", "v"}).has_value());
  ASSERT_TRUE(server.insert("t", {1, 100}).has_value());
  auto rows = server.select("t", std::nullopt);
  ASSERT_TRUE(rows.has_value());
  EXPECT_EQ(rows.value(), (std::vector<Row>{{1, 100}}));  // corruption masked
  EXPECT_GE(server.divergences_masked(), 1u);
  EXPECT_EQ(server.replicas_in_service(), 2u);  // the chaotic engine is out
}

TEST(ReplicatedSql, ReconciliationCatchesLostUpdates) {
  std::vector<sql::StorePtr> replicas;
  replicas.push_back(sql::make_vector_store());
  replicas.push_back(sql::make_btree_store());
  replicas.push_back(sql::make_chaotic_store(
      sql::make_log_store(),
      {.lose_mutation_probability = 1.0, .corrupt_read_probability = 0,
       .seed = 5}));
  ReplicatedSqlServer server{std::move(replicas),
                             {.reconcile_every = 0, .evict_divergent = true}};
  ASSERT_TRUE(server.create_table("t", {"id", "v"}).has_value());
  // The lost insert is acknowledged everywhere — outputs agree, nothing is
  // detected yet. Only the *state* diverged.
  ASSERT_TRUE(server.insert("t", {1, 100}).has_value());
  EXPECT_EQ(server.replicas_in_service(), 3u);
  ASSERT_TRUE(server.reconcile().has_value());
  EXPECT_EQ(server.replicas_in_service(), 2u);
  // And the surviving quorum has the row.
  EXPECT_EQ(server.select("t", std::nullopt).value(),
            (std::vector<Row>{{1, 100}}));
}

TEST(ReplicatedSql, PeriodicReconciliationIsAutomatic) {
  std::vector<sql::StorePtr> replicas;
  replicas.push_back(sql::make_vector_store());
  replicas.push_back(sql::make_btree_store());
  replicas.push_back(sql::make_chaotic_store(
      sql::make_log_store(), {.lose_mutation_probability = 1.0, .seed = 7}));
  ReplicatedSqlServer server{std::move(replicas), {.reconcile_every = 4}};
  ASSERT_TRUE(server.create_table("t", {"id"}).has_value());
  for (std::int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(server.insert("t", {i}).has_value());
  }
  EXPECT_EQ(server.replicas_in_service(), 2u);
}

TEST(ReplicatedSql, TwoLiarsOutvoteTheTruthTeller) {
  // The voting limit, reproduced at the database level: with 2 of 3
  // replicas wrong *in the same way*, the majority verdict is wrong.
  std::vector<sql::StorePtr> replicas;
  replicas.push_back(sql::make_chaotic_store(
      sql::make_vector_store(), {.lose_mutation_probability = 1.0, .seed = 9}));
  replicas.push_back(sql::make_chaotic_store(
      sql::make_btree_store(), {.lose_mutation_probability = 1.0, .seed = 9}));
  replicas.push_back(sql::make_log_store());
  ReplicatedSqlServer server{std::move(replicas), {.reconcile_every = 0}};
  ASSERT_TRUE(server.create_table("t", {"id"}).has_value());
  ASSERT_TRUE(server.insert("t", {1}).has_value());
  (void)server.reconcile();
  // The honest log engine is the minority — it gets evicted.
  EXPECT_TRUE(server.evicted().contains(2));
  EXPECT_EQ(server.select("t", std::nullopt).value(), (std::vector<Row>{}));
}

TEST(ReplicatedSql, AllEvictedMeansOutage) {
  std::vector<sql::StorePtr> replicas;
  replicas.push_back(sql::make_vector_store());
  ReplicatedSqlServer server{std::move(replicas)};
  ASSERT_TRUE(server.create_table("t", {"id"}).has_value());
  // A single replica can never be evicted by a vote of one; simulate a
  // two-replica split instead.
  std::vector<sql::StorePtr> pair;
  pair.push_back(sql::make_vector_store());
  pair.push_back(sql::make_chaotic_store(
      sql::make_btree_store(), {.corrupt_read_probability = 1.0, .seed = 2}));
  ReplicatedSqlServer split{std::move(pair), {.reconcile_every = 0}};
  ASSERT_TRUE(split.create_table("t", {"id", "v"}).has_value());
  ASSERT_TRUE(split.insert("t", {1, 5}).has_value());
  // 1-vs-1 disagreement: no majority of the 2 ballots.
  auto rows = split.select("t", std::nullopt);
  EXPECT_FALSE(rows.has_value());
  EXPECT_EQ(rows.error().kind, core::FailureKind::adjudication_failed);
}

TEST(ReplicatedSql, MetricsAccount) {
  auto server = healthy_triple();
  ASSERT_TRUE(server.create_table("t", {"id"}).has_value());
  ASSERT_TRUE(server.insert("t", {1}).has_value());
  EXPECT_GE(server.metrics().requests, 2u);
  EXPECT_GE(server.metrics().variant_executions, 6u);
}

TEST(ReplicatedSql, SelectCacheServesRepeatsWithoutReVoting) {
  auto server = healthy_triple();
  server.enable_select_cache();
  ASSERT_TRUE(server.create_table("inv", {"id", "qty"}).has_value());
  ASSERT_TRUE(server.insert("inv", {1, 10}).has_value());
  const std::size_t runs_before = server.metrics().variant_executions;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(server.select("inv", std::nullopt).value(),
              (std::vector<Row>{{1, 10}}));
  }
  if (core::kCacheCompiledIn) {
    // One adjudicated select fanned out to 3 replicas; three hits ran none.
    EXPECT_EQ(server.metrics().variant_executions, runs_before + 3);
    ASSERT_NE(server.select_cache(), nullptr);
    EXPECT_GE(server.select_cache()->stats().hits, 3u);
  }
}

TEST(ReplicatedSql, MutationsInvalidateTheSelectCache) {
  auto server = healthy_triple();
  server.enable_select_cache();
  ASSERT_TRUE(server.create_table("inv", {"id", "qty"}).has_value());
  ASSERT_TRUE(server.insert("inv", {1, 10}).has_value());
  EXPECT_EQ(server.select("inv", std::nullopt).value(),
            (std::vector<Row>{{1, 10}}));
  // The cached verdict must not survive the write: a stale read here would
  // be a correctness bug, not a performance artifact.
  ASSERT_TRUE(server.insert("inv", {2, 20}).has_value());
  EXPECT_EQ(server.select("inv", std::nullopt).value(),
            (std::vector<Row>{{1, 10}, {2, 20}}));
  ASSERT_TRUE(
      server.update("inv", Condition{"id", Condition::Op::eq, 1}, "qty", 15)
          .has_value());
  EXPECT_EQ(server.select("inv", Condition{"id", Condition::Op::eq, 1}).value(),
            (std::vector<Row>{{1, 15}}));
  ASSERT_TRUE(
      server.remove("inv", Condition{"id", Condition::Op::eq, 2}).has_value());
  EXPECT_EQ(server.select("inv", std::nullopt).value(),
            (std::vector<Row>{{1, 15}}));
}

TEST(ReplicatedSql, SelectCacheKeysDistinguishConditions) {
  auto server = healthy_triple();
  server.enable_select_cache();
  ASSERT_TRUE(server.create_table("t", {"id", "v"}).has_value());
  ASSERT_TRUE(server.insert("t", {1, 10}).has_value());
  ASSERT_TRUE(server.insert("t", {2, 20}).has_value());
  EXPECT_EQ(server.select("t", std::nullopt).value().size(), 2u);
  EXPECT_EQ(server.select("t", Condition{"id", Condition::Op::eq, 1}).value(),
            (std::vector<Row>{{1, 10}}));
  EXPECT_EQ(server.select("t", Condition{"id", Condition::Op::lt, 2}).value(),
            (std::vector<Row>{{1, 10}}));
  // Same column+value, different op: must not collide.
  EXPECT_EQ(server.select("t", Condition{"id", Condition::Op::gt, 1}).value(),
            (std::vector<Row>{{2, 20}}));
}

TEST(ReplicatedSql, EvictionInvalidatesCachedQuorumVerdicts) {
  std::vector<sql::StorePtr> replicas;
  replicas.push_back(sql::make_vector_store());
  replicas.push_back(sql::make_btree_store());
  replicas.push_back(sql::make_chaotic_store(
      sql::make_log_store(),
      {.lose_mutation_probability = 0, .corrupt_read_probability = 1.0,
       .seed = 3}));
  ReplicatedSqlServer server{std::move(replicas)};
  server.enable_select_cache();
  ASSERT_TRUE(server.create_table("t", {"id", "v"}).has_value());
  ASSERT_TRUE(server.insert("t", {1, 100}).has_value());
  // Warm a verdict while the liar is still in the electorate. Corruption
  // flips one cell of one row — an empty result set passes through intact,
  // so this vote is unanimous and nobody is evicted yet.
  const Condition none{"id", Condition::Op::gt, 5};
  EXPECT_EQ(server.select("t", none).value(), (std::vector<Row>{}));
  EXPECT_EQ(server.replicas_in_service(), 3u);
  // A select over real rows diverges, masks the liar, evicts it — and must
  // strand every verdict the old 3-replica quorum voted.
  EXPECT_EQ(server.select("t", std::nullopt).value(),
            (std::vector<Row>{{1, 100}}));
  EXPECT_EQ(server.replicas_in_service(), 2u);
  const std::size_t runs_before = server.metrics().variant_executions;
  EXPECT_EQ(server.select("t", none).value(), (std::vector<Row>{}));
  if (core::kCacheCompiledIn) {
    // Re-adjudicated by the surviving pair, not served from the stale entry.
    EXPECT_EQ(server.metrics().variant_executions, runs_before + 2);
    EXPECT_GE(server.select_cache()->stats().invalidations, 1u);
  }
}

}  // namespace
}  // namespace redundancy::techniques
