#include "techniques/rx.hpp"

#include <gtest/gtest.h>

namespace redundancy::techniques {
namespace {

/// Trivial checkpointable state for the rollback plumbing.
class Cell final : public env::Checkpointable {
 public:
  std::int64_t value = 0;
  [[nodiscard]] util::ByteBuffer snapshot() const override {
    util::ByteBuffer buf;
    buf.put(value);
    return buf;
  }
  void restore(const util::ByteBuffer& state) override {
    value = state.reader().get<std::int64_t>();
  }
};

/// An operation whose failure depends on the ambient environment.
core::Status run_under(const std::function<bool()>& bug, Cell& cell) {
  cell.value += 1;  // side effect that must be rolled back on failure
  if (bug()) {
    return core::failure(core::FailureKind::crash, "env-dependent failure");
  }
  return core::ok_status();
}

TEST(Rx, CuresOverflowBugByPadding) {
  env::SimEnv environment;  // compact allocation: the bug fires
  Cell cell;
  RxRecovery rx{environment, cell};
  auto bug = env::overflow_condition(environment, 32);
  auto status = rx.execute([&] { return run_under(bug, cell); });
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(rx.recoveries(), 1u);
  EXPECT_TRUE(rx.cures().contains("pad-allocations"));
  EXPECT_EQ(environment.alloc, env::AllocStrategy::padded);
}

TEST(Rx, CuresOrderBugByShuffling) {
  env::SimEnv environment;  // fifo: the bug fires
  Cell cell;
  RxRecovery rx{environment, cell};
  auto bug = env::order_condition(environment);
  auto status = rx.execute([&] { return run_under(bug, cell); });
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(rx.cures().contains("shuffle-messages"));
}

TEST(Rx, CuresOverloadBySheddingLoad) {
  env::SimEnv environment;
  environment.admitted_load = 1.0;
  Cell cell;
  RxRecovery rx{environment, cell};
  auto bug = env::overload_condition(environment, 0.6);
  auto status = rx.execute([&] { return run_under(bug, cell); });
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(rx.cures().contains("shed-load"));
  EXPECT_LE(environment.admitted_load, 0.6);
}

TEST(Rx, CuresRaceByRescheduling) {
  // Find a seed where the race fires, then let RX heal it.
  env::SimEnv environment;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    environment.sched_seed = s;
    if (env::race_condition(environment, 0.5)()) break;
  }
  auto bug = env::race_condition(environment, 0.5);
  ASSERT_TRUE(bug());
  Cell cell;
  RxRecovery rx{environment, cell};
  auto status = rx.execute([&] { return run_under(bug, cell); });
  ASSERT_TRUE(status.has_value());
  EXPECT_GE(rx.rollbacks(), 1u);
}

TEST(Rx, RollbackUndoesSideEffectsOfFailedAttempts) {
  env::SimEnv environment;
  Cell cell;
  RxRecovery rx{environment, cell};
  auto bug = env::order_condition(environment);  // cured on 3rd perturbation
  ASSERT_TRUE(rx.execute([&] { return run_under(bug, cell); }).has_value());
  // Only the successful execution's side effect remains.
  EXPECT_EQ(cell.value, 1);
}

TEST(Rx, HealthyOperationNeedsNoPerturbation) {
  env::SimEnv environment;
  Cell cell;
  RxRecovery rx{environment, cell};
  auto status = rx.execute([&] {
    cell.value += 1;
    return core::ok_status();
  });
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(rx.rollbacks(), 0u);
  EXPECT_EQ(environment, env::SimEnv{});  // untouched
}

TEST(Rx, UncurableBugExhaustsMenuAndRestoresWorld) {
  env::SimEnv environment;
  const env::SimEnv original = environment;
  Cell cell;
  RxRecovery rx{environment, cell};
  auto status = rx.execute([&] {
    cell.value += 1;
    return core::Status{core::failure(core::FailureKind::crash, "bohrbug")};
  });
  ASSERT_FALSE(status.has_value());
  EXPECT_EQ(rx.unrecovered(), 1u);
  EXPECT_EQ(environment, original);  // environment restored
  EXPECT_EQ(cell.value, 0);          // state rolled back
}

TEST(Rx, RevertEnvAfterSuccessOption) {
  env::SimEnv environment;
  const env::SimEnv original = environment;
  Cell cell;
  RxRecovery::Options opts;
  opts.revert_env_after_success = true;
  RxRecovery rx{environment, cell, env::standard_perturbations(), opts};
  auto bug = env::order_condition(environment);
  ASSERT_TRUE(rx.execute([&] { return run_under(bug, cell); }).has_value());
  EXPECT_EQ(environment, original);
}

TEST(Rx, PlainRetryCannotCureEnvDeterministicBug) {
  // Contrast experiment: an empty perturbation menu turns RX into plain
  // checkpoint-retry, which keeps failing because nothing changes.
  env::SimEnv environment;
  Cell cell;
  RxRecovery plain{environment, cell, {}, RxRecovery::Options{}};
  auto bug = env::order_condition(environment);
  auto status = plain.execute([&] { return run_under(bug, cell); });
  EXPECT_FALSE(status.has_value());
  EXPECT_EQ(plain.unrecovered(), 1u);
}

TEST(Rx, TaxonomyMatchesPaperRow) {
  const auto t = RxRecovery::taxonomy();
  EXPECT_EQ(t.type, core::RedundancyType::environment);
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::reactive_explicit);
}

}  // namespace
}  // namespace redundancy::techniques
