#include "techniques/process_replicas.hpp"

#include <gtest/gtest.h>

#include "vm/attacks.hpp"

namespace redundancy::techniques {
namespace {

using vm::ServerLayout;

ProcessReplicas make_replicas(ProcessReplicas::Options opts) {
  return ProcessReplicas{
      vm::vulnerable_server(), opts,
      [](vm::Vm& machine, std::size_t base) {
        (void)machine.poke(base + ServerLayout::secret, vm::kSecretValue);
      }};
}

TEST(ProcessReplicas, BenignRequestsBehaveIdentically) {
  auto replicas = make_replicas({.replicas = 3});
  for (int i = 0; i < 20; ++i) {
    auto out = replicas.serve(vm::benign_request(i, 100 - i));
    ASSERT_TRUE(out.has_value()) << out.error().describe();
    EXPECT_EQ(out.value().ret, 100);
    replicas.reset();
  }
  EXPECT_EQ(replicas.detections(), 0u);
}

TEST(ProcessReplicas, AbsoluteAddressAttackDetectedByPartitioning) {
  auto replicas = make_replicas(
      {.replicas = 2, .partition_addresses = true, .tag_instructions = false});
  const auto attack =
      vm::absolute_address_attack(replicas.partitions()[0].base);
  auto out = replicas.serve(attack);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, core::FailureKind::detected_attack);
  EXPECT_EQ(replicas.detections(), 1u);
}

TEST(ProcessReplicas, CodeInjectionDetectedByTagging) {
  auto replicas = make_replicas(
      {.replicas = 2, .partition_addresses = false, .tag_instructions = true});
  // Attacker knows the layout (no partitioning) and guesses replica 0's tag.
  auto out = replicas.serve(vm::code_injection_attack(0, 1));
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, core::FailureKind::detected_attack);
}

TEST(ProcessReplicas, UnprotectedSingleReplicaIsCompromised) {
  auto victim = make_replicas(
      {.replicas = 1, .partition_addresses = false, .tag_instructions = false});
  auto out = victim.serve(vm::absolute_address_attack(0));
  // One replica, no diversity: the attack output is accepted as valid.
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value().ret, vm::kSecretValue);
  EXPECT_EQ(victim.detections(), 0u);
}

TEST(ProcessReplicas, UndiversifiedReplicasMissTheAttack) {
  // Replication without diversification: both replicas are compromised the
  // same way, behaviours agree, nothing is detected — diversity, not
  // replication, is what defends.
  auto replicas = make_replicas(
      {.replicas = 2, .partition_addresses = false, .tag_instructions = false});
  auto out = replicas.serve(vm::absolute_address_attack(0));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value().ret, vm::kSecretValue);
  EXPECT_EQ(replicas.detections(), 0u);
}

TEST(ProcessReplicas, TaggingAloneMissesAbsoluteAddressAttacks) {
  // The leak gadget is legitimate (properly tagged) code, so tagging does
  // not catch a pure control-flow redirect; Cox's mechanisms are
  // complementary, not interchangeable.
  auto replicas = make_replicas(
      {.replicas = 2, .partition_addresses = false, .tag_instructions = true});
  auto out = replicas.serve(vm::absolute_address_attack(0));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value().ret, vm::kSecretValue);
}

TEST(ProcessReplicas, FullDiversityCatchesBothAttacks) {
  auto replicas = make_replicas({.replicas = 3});
  const auto base0 = replicas.partitions()[0].base;
  EXPECT_FALSE(replicas.serve(vm::absolute_address_attack(base0)).has_value());
  replicas.reset();
  EXPECT_FALSE(
      replicas.serve(vm::code_injection_attack(base0, 1)).has_value());
  EXPECT_EQ(replicas.detections(), 2u);
}

TEST(ProcessReplicas, ResetRestoresPristineState) {
  auto replicas = make_replicas({.replicas = 2});
  const auto base0 = replicas.partitions()[0].base;
  (void)replicas.serve(vm::absolute_address_attack(base0));
  replicas.reset();
  auto out = replicas.serve(vm::benign_request(1, 2));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value().ret, 3);
}

TEST(ProcessReplicas, PartitionsAreDisjoint) {
  auto replicas = make_replicas({.replicas = 4});
  const auto& parts = replicas.partitions();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      EXPECT_FALSE(parts[i].overlaps(parts[j]));
    }
  }
}

TEST(ProcessReplicas, TaxonomyMatchesPaperRow) {
  const auto t = ProcessReplicas::taxonomy();
  EXPECT_EQ(t.type, core::RedundancyType::environment);
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::reactive_implicit);
  EXPECT_EQ(t.faults, core::TargetFaults::malicious);
}

}  // namespace
}  // namespace redundancy::techniques
