#include "techniques/robust_data.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace redundancy::techniques {
namespace {

RobustList make_list(std::size_t n) {
  RobustList list;
  for (std::size_t i = 0; i < n; ++i) {
    list.push_back(static_cast<std::int64_t>(i * 10));
  }
  return list;
}

TEST(RobustList, PushPopFifo) {
  RobustList list = make_list(3);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.pop_front().value(), 0);
  EXPECT_EQ(list.pop_front().value(), 10);
  EXPECT_EQ(list.pop_front().value(), 20);
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(list.pop_front().has_value());
}

TEST(RobustList, ToVectorWalksForward) {
  EXPECT_EQ(make_list(4).to_vector(),
            (std::vector<std::int64_t>{0, 10, 20, 30}));
}

TEST(RobustList, CleanAuditFindsNothing) {
  RobustList list = make_list(10);
  const auto report = list.audit();
  EXPECT_EQ(report.errors_detected, 0u);
  EXPECT_EQ(report.errors_repaired, 0u);
  EXPECT_TRUE(report.structurally_sound);
  EXPECT_EQ(report.nodes_checked, 10u);
}

TEST(RobustList, RepairsSmashedForwardPointer) {
  RobustList list = make_list(5);
  list.corrupt_next(1, 77777);  // node 1 -> garbage
  auto report = list.audit();
  EXPECT_GE(report.errors_detected, 1u);
  EXPECT_GE(report.errors_repaired, 1u);
  EXPECT_TRUE(report.structurally_sound);
  EXPECT_EQ(list.to_vector(), (std::vector<std::int64_t>{0, 10, 20, 30, 40}));
}

TEST(RobustList, RepairsSmashedBackwardPointer) {
  RobustList list = make_list(5);
  list.corrupt_prev(3, 77777);
  auto report = list.audit();
  EXPECT_GE(report.errors_repaired, 1u);
  EXPECT_TRUE(report.structurally_sound);
  EXPECT_EQ(list.to_vector(), (std::vector<std::int64_t>{0, 10, 20, 30, 40}));
  // And the repair is real: a second audit is clean.
  EXPECT_EQ(list.audit().errors_detected, 0u);
}

TEST(RobustList, RepairsSmashedCount) {
  RobustList list = make_list(5);
  list.corrupt_count(999);
  auto report = list.audit();
  EXPECT_GE(report.errors_repaired, 1u);
  EXPECT_EQ(list.size(), 5u);
}

TEST(RobustList, RepairsSmashedIdentifier) {
  RobustList list = make_list(5);
  list.corrupt_id(2, 0xbadbadbadULL);
  auto report = list.audit();
  EXPECT_EQ(report.errors_detected, 1u);
  EXPECT_EQ(report.errors_repaired, 1u);
  EXPECT_EQ(list.audit().errors_detected, 0u);
}

TEST(RobustList, PopAfterRepairStillWorks) {
  RobustList list = make_list(4);
  list.corrupt_next(0, 55555);
  (void)list.audit();
  EXPECT_EQ(list.pop_front().value(), 0);
  EXPECT_EQ(list.pop_front().value(), 10);
  EXPECT_EQ(list.size(), 2u);
}

// Property: any *single* corruption of a pointer/count/id field is repaired
// and the element sequence is preserved (Taylor's single-fault guarantee).
class SingleFaultTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SingleFaultTest, AnySingleCorruptionIsRepaired) {
  util::Rng rng{GetParam()};
  const std::size_t n = 3 + rng.index(10);
  RobustList list = make_list(n);
  const auto expected = list.to_vector();
  const std::size_t pos = rng.index(n);
  const auto garbage = static_cast<std::size_t>(rng.below(100'000) + 1000);
  switch (rng.below(4)) {
    case 0: list.corrupt_next(pos, garbage); break;
    case 1: list.corrupt_prev(pos, garbage); break;
    case 2: list.corrupt_count(garbage); break;
    default: list.corrupt_id(pos, garbage); break;
  }
  const auto report = list.audit();
  EXPECT_TRUE(report.structurally_sound);
  EXPECT_EQ(list.to_vector(), expected);
  EXPECT_EQ(list.size(), expected.size());
  EXPECT_EQ(list.audit().errors_detected, 0u);  // idempotent repair
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleFaultTest,
                         ::testing::Range<std::uint64_t>(0, 50));

TEST(SoftwareAudit, PeriodicTicksRunChecks) {
  RobustList list = make_list(4);
  SoftwareAudit audit{4};
  audit.watch("list", [&list] { return list.audit(); });
  for (int i = 0; i < 12; ++i) audit.tick();
  EXPECT_EQ(audit.runs(), 3u);
  EXPECT_EQ(audit.totals().nodes_checked, 12u);
}

TEST(SoftwareAudit, DetectsAndRepairsInBackground) {
  RobustList list = make_list(6);
  SoftwareAudit audit{1};
  audit.watch("list", [&list] { return list.audit(); });
  list.corrupt_next(2, 424242);
  audit.tick();
  EXPECT_GE(audit.totals().errors_repaired, 1u);
  EXPECT_EQ(list.to_vector().size(), 6u);
}

TEST(SoftwareAudit, RunNowAggregatesMultipleStructures) {
  RobustList a = make_list(2);
  RobustList b = make_list(3);
  SoftwareAudit audit;
  audit.watch("a", [&a] { return a.audit(); });
  audit.watch("b", [&b] { return b.audit(); });
  const auto round = audit.run_now();
  EXPECT_EQ(round.nodes_checked, 5u);
}

TEST(RobustList, TaxonomyMatchesPaperRow) {
  const auto t = RobustList::taxonomy();
  EXPECT_EQ(t.type, core::RedundancyType::data);
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::reactive_implicit);
}

}  // namespace
}  // namespace redundancy::techniques
