#include "techniques/service_substitution.hpp"

#include <gtest/gtest.h>

namespace redundancy::techniques {
namespace {

using services::Endpoint;
using services::EndpointPtr;
using services::Interface;
using services::Message;
using services::Qos;
using services::Registry;

Interface weather_iface() {
  return Interface{"forecast", {"city"}, {"temp"}};
}

EndpointPtr provider(std::string id, std::int64_t temp) {
  return std::make_shared<Endpoint>(
      std::move(id), weather_iface(),
      [temp](const Message&) -> core::Result<Message> {
        return Message{{"temp", temp}};
      });
}

TEST(ServiceSubstitution, ServesFromPrimaryWhenHealthy) {
  Registry reg;
  reg.add(provider("meteo-a", 20));
  reg.add(provider("meteo-b", 21));
  ServiceSubstitution sub{weather_iface(), reg};
  auto out = sub.call({{"city", std::string{"Lugano"}}});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("temp")), 20);
  EXPECT_EQ(sub.metrics().recoveries, 0u);
}

TEST(ServiceSubstitution, MasksProviderOutage) {
  Registry reg;
  auto a = provider("meteo-a", 20);
  reg.add(a);
  reg.add(provider("meteo-b", 21));
  ServiceSubstitution sub{weather_iface(), reg};
  (void)sub.call({{"city", std::string{"Lugano"}}});
  a->kill();
  auto out = sub.call({{"city", std::string{"Lugano"}}});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("temp")), 21);
  EXPECT_EQ(sub.metrics().recoveries, 1u);
  EXPECT_EQ(sub.metrics().unrecovered, 0u);
}

TEST(ServiceSubstitution, AdaptsSimilarInterfaceWhenExactPoolDry) {
  Registry reg;
  auto a = provider("meteo-a", 20);
  reg.add(a);
  reg.add(std::make_shared<Endpoint>(
      "legacy", Interface{"forecast", {"city"}, {"temperature"}},
      [](const Message&) -> core::Result<Message> {
        return Message{{"temperature", std::int64_t{19}}};
      }));
  ServiceSubstitution sub{weather_iface(), reg};
  a->kill();
  auto out = sub.call({{"city", std::string{"Lugano"}}});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("temp")), 19);
  EXPECT_EQ(sub.binding()->converted_rebinds(), 1u);
}

TEST(ServiceSubstitution, AllProvidersDeadIsUnrecovered) {
  Registry reg;
  auto a = provider("meteo-a", 20);
  auto b = provider("meteo-b", 21);
  reg.add(a);
  reg.add(b);
  ServiceSubstitution sub{weather_iface(), reg};
  a->kill();
  b->kill();
  auto out = sub.call({});
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(sub.metrics().unrecovered, 1u);
}

TEST(ServiceSubstitution, MetricsCountRequests) {
  Registry reg;
  reg.add(provider("a", 1));
  ServiceSubstitution sub{weather_iface(), reg};
  for (int i = 0; i < 7; ++i) (void)sub.call({});
  EXPECT_EQ(sub.metrics().requests, 7u);
}

TEST(ServiceSubstitution, TaxonomyMatchesPaperRow) {
  const auto t = ServiceSubstitution::taxonomy();
  EXPECT_EQ(t.intention, core::Intention::opportunistic);
  EXPECT_EQ(t.type, core::RedundancyType::code);
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::reactive_explicit);
}

}  // namespace
}  // namespace redundancy::techniques
