#include "techniques/self_checking.hpp"

#include <gtest/gtest.h>

namespace redundancy::techniques {
namespace {

using SC = SelfCheckingProgramming<int, int>;
using core::Result;

core::Variant<int, int> twice(std::string name) {
  return core::make_variant<int, int>(std::move(name),
                                      [](const int& x) -> Result<int> {
                                        return 2 * x;
                                      });
}

core::Variant<int, int> broken(std::string name) {
  return core::make_variant<int, int>(std::move(name),
                                      [](const int&) -> Result<int> {
                                        return core::failure(
                                            core::FailureKind::crash);
                                      });
}

core::AcceptanceTest<int, int> even_check() {
  return [](const int&, const int& out) { return out % 2 == 0; };
}

TEST(SelfChecking, ActingComponentServes) {
  SC sc{{SC::checked(twice("acting"), even_check()),
         SC::checked(twice("spare"), even_check())}};
  auto out = sc.run(21);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 42);
  EXPECT_EQ(sc.acting(), 0u);
  EXPECT_EQ(sc.in_service(), 2u);
}

TEST(SelfChecking, HotSpareTakesOverWithoutRollback) {
  SC sc{{SC::checked(broken("acting"), even_check()),
         SC::checked(twice("spare"), even_check())}};
  auto out = sc.run(21);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 42);
  EXPECT_EQ(sc.acting(), 1u);
  EXPECT_EQ(sc.in_service(), 1u);  // failed acting component discarded
  EXPECT_EQ(sc.metrics().rollbacks, 0u);  // the defining contrast with RB
}

TEST(SelfChecking, RedundancyConsumedUntilExhausted) {
  SC sc{{SC::checked(broken("a"), even_check()),
         SC::checked(broken("b"), even_check()),
         SC::checked(twice("c"), even_check())}};
  ASSERT_TRUE(sc.run(1).has_value());
  EXPECT_EQ(sc.in_service(), 1u);
  ASSERT_TRUE(sc.run(2).has_value());
  EXPECT_EQ(sc.in_service(), 1u);
}

TEST(SelfChecking, AllConsumedMeansOutage) {
  SC sc{{SC::checked(broken("a"), even_check())}};
  EXPECT_FALSE(sc.run(1).has_value());
  EXPECT_FALSE(sc.run(2).has_value());
  EXPECT_EQ(sc.in_service(), 0u);
  sc.redeploy_all();
  EXPECT_EQ(sc.in_service(), 1u);
}

TEST(SelfChecking, ComparedPairDetectsInternalDisagreement) {
  auto off = core::make_variant<int, int>("off",
                                          [](const int& x) -> Result<int> {
                                            return 2 * x + 2;
                                          });
  SC sc{{SC::compared(twice("first"), off),
         SC::checked(twice("spare"), even_check())}};
  auto out = sc.run(10);
  // The pair disagrees -> its component fails its implicit check -> spare.
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 20);
  EXPECT_EQ(sc.acting(), 1u);
}

TEST(SelfChecking, ComparedPairAgreementServes) {
  SC sc{{SC::compared(twice("first"), twice("second"))}};
  auto out = sc.run(8);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 16);
}

TEST(SelfChecking, ComparedPairCostIsSumOfBoth) {
  auto pair = SC::compared(twice("a"), twice("b"));
  EXPECT_DOUBLE_EQ(pair.variant.cost, 2.0);
}

TEST(SelfChecking, WrongOutputCaughtByBuiltInTest) {
  auto odd = core::make_variant<int, int>("odd",
                                          [](const int& x) -> Result<int> {
                                            return 2 * x + 1;
                                          });
  SC sc{{SC::checked(odd, even_check()),
         SC::checked(twice("spare"), even_check())}};
  auto out = sc.run(3);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 6);
}

TEST(SelfChecking, TaxonomyMatchesPaperRow) {
  const auto t = SC::taxonomy();
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::reactive_hybrid);
  EXPECT_EQ(t.pattern, core::ArchitecturalPattern::parallel_selection);
}

}  // namespace
}  // namespace redundancy::techniques
