#include "techniques/genetic_repair.hpp"

#include <gtest/gtest.h>

#include "vm/assembler.hpp"

namespace redundancy::techniques {
namespace {

TestSuite sum_suite() {
  TestSuite suite;
  for (std::int64_t a = 0; a < 5; ++a) {
    for (std::int64_t b = 0; b < 4; ++b) {
      suite.push_back({{a, b}, a + b});
    }
  }
  return suite;
}

vm::Program correct_sum() {
  return vm::assemble("sum", "arg 0\narg 1\nadd\nhalt").take();
}

TEST(Fitness, PerfectProgramScoresOne) {
  EXPECT_DOUBLE_EQ(fitness(correct_sum(), sum_suite()), 1.0);
}

TEST(Fitness, CrashingProgramScoresZero) {
  auto crash = vm::assemble("crash", "pop\nhalt").take();
  EXPECT_DOUBLE_EQ(fitness(crash, sum_suite()), 0.0);
}

TEST(Fitness, PartiallyCorrectProgramScoresBetween) {
  // Returns arg0: right whenever b == 0 (5 of 20 cases).
  auto partial = vm::assemble("partial", "arg 0\nhalt").take();
  EXPECT_NEAR(fitness(partial, sum_suite()), 5.0 / 20.0, 1e-12);
}

TEST(Fitness, EmptySuiteIsVacuouslyPerfect) {
  EXPECT_DOUBLE_EQ(fitness(correct_sum(), {}), 1.0);
}

TEST(GeneticOperators, MutateKeepsLengthBounded) {
  GeneticRepairConfig cfg;
  cfg.max_program_len = 8;
  GeneticRepair gp{cfg, 5};
  vm::Program p = correct_sum();
  for (int i = 0; i < 500; ++i) {
    p = gp.mutate(p);
    ASSERT_GE(p.size(), 1u);
    ASSERT_LE(p.size(), 9u);  // insert checks the cap before growing
  }
}

TEST(GeneticOperators, CrossoverMixesParents) {
  GeneticRepair gp{7};
  const vm::Program a = correct_sum();
  const auto b = vm::assemble("other", "push 1\npush 2\nmul\nhalt").take();
  bool differs_from_both = false;
  for (int i = 0; i < 100 && !differs_from_both; ++i) {
    const vm::Program child = gp.crossover(a, b);
    ASSERT_GE(child.size(), 1u);
    differs_from_both = !(child == a) && !(child == b);
  }
  EXPECT_TRUE(differs_from_both);
}

TEST(GeneticRepair, AlreadyCorrectProgramReturnsImmediately) {
  GeneticRepair gp{11};
  auto outcome = gp.repair(correct_sum(), sum_suite());
  ASSERT_TRUE(outcome.success());
  EXPECT_EQ(outcome.generations, 1u);
  EXPECT_DOUBLE_EQ(fitness(*outcome.repaired, sum_suite()), 1.0);
}

TEST(GeneticRepair, FixesWrongOpcodeBug) {
  // Single-point fault: 'sub' where 'add' belongs — the canonical seeded
  // mutant. The test suite is the adjudicator.
  auto faulty = vm::assemble("sum-buggy", "arg 0\narg 1\nsub\nhalt").take();
  ASSERT_LT(fitness(faulty, sum_suite()), 1.0);
  GeneticRepairConfig cfg;
  cfg.population = 64;
  cfg.max_generations = 80;
  GeneticRepair gp{cfg, 13};
  auto outcome = gp.repair(faulty, sum_suite());
  ASSERT_TRUE(outcome.success());
  EXPECT_DOUBLE_EQ(fitness(*outcome.repaired, sum_suite()), 1.0);
  EXPECT_GT(outcome.evaluations, 0u);
}

TEST(GeneticRepair, FixesWrongConstantBug) {
  // max(a,b) implemented with a broken comparison constant.
  TestSuite suite;
  for (std::int64_t a = 0; a < 4; ++a) {
    for (std::int64_t b = 0; b < 4; ++b) {
      suite.push_back({{a, b}, a * 2});
    }
  }
  auto faulty = vm::assemble("dbl-buggy", "arg 0\npush 3\nmul\nhalt").take();
  GeneticRepairConfig cfg;
  cfg.population = 48;
  cfg.max_generations = 60;
  GeneticRepair gp{cfg, 17};
  auto outcome = gp.repair(faulty, suite);
  ASSERT_TRUE(outcome.success());
  EXPECT_DOUBLE_EQ(fitness(*outcome.repaired, suite), 1.0);
}

TEST(GeneticRepair, ReportsBestFitnessEvenOnFailure) {
  // An adversarial suite no tiny program will satisfy within the budget.
  TestSuite impossible;
  for (std::int64_t a = 0; a < 6; ++a) {
    impossible.push_back({{a}, (a * 37 + 11) % 97});
  }
  GeneticRepairConfig cfg;
  cfg.population = 32;
  cfg.max_generations = 10;
  GeneticRepair gp{cfg, 19};
  auto faulty = vm::assemble("f", "arg 0\nhalt").take();
  auto outcome = gp.repair(faulty, impossible);
  EXPECT_FALSE(outcome.success());
  EXPECT_EQ(outcome.generations, 10u);
  EXPECT_EQ(outcome.evaluations, 320u);  // population x generations
  // No tiny program satisfies the whole pseudo-random table.
  EXPECT_LT(outcome.best_fitness, 1.0);
  EXPECT_FALSE(outcome.repaired.has_value());
}

TEST(GeneticRepair, DeterministicForFixedSeed) {
  auto faulty = vm::assemble("sum-buggy", "arg 0\narg 1\nsub\nhalt").take();
  GeneticRepairConfig cfg;
  cfg.population = 32;
  cfg.max_generations = 40;
  GeneticRepair gp1{cfg, 23};
  GeneticRepair gp2{cfg, 23};
  const auto o1 = gp1.repair(faulty, sum_suite());
  const auto o2 = gp2.repair(faulty, sum_suite());
  EXPECT_EQ(o1.success(), o2.success());
  EXPECT_EQ(o1.generations, o2.generations);
  EXPECT_EQ(o1.evaluations, o2.evaluations);
}

TEST(GeneticRepair, TaxonomyMatchesPaperRow) {
  const auto t = GeneticRepair::taxonomy();
  EXPECT_EQ(t.intention, core::Intention::opportunistic);
  EXPECT_EQ(t.faults, core::TargetFaults::bohrbugs);
}

}  // namespace
}  // namespace redundancy::techniques
