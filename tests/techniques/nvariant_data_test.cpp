#include "techniques/nvariant_data.hpp"

#include <gtest/gtest.h>

namespace redundancy::techniques {
namespace {

TEST(NVariantData, WriteReadRoundTrip) {
  NVariantStore store{8, 3, 42};
  ASSERT_TRUE(store.write(0, 123).has_value());
  ASSERT_TRUE(store.write(7, -9).has_value());
  EXPECT_EQ(store.read(0).value(), 123);
  EXPECT_EQ(store.read(7).value(), -9);
  EXPECT_EQ(store.read(3).value(), 0);  // untouched cells read as zero
}

TEST(NVariantData, OutOfRangeAccessFails) {
  NVariantStore store{4, 2, 1};
  EXPECT_FALSE(store.write(4, 1).has_value());
  EXPECT_FALSE(store.read(4).has_value());
}

TEST(NVariantData, UniformSmashIsDetected) {
  NVariantStore store{4, 2, 7};
  ASSERT_TRUE(store.write(1, 1000).has_value());
  // The attacker overwrites the cell's physical storage with one raw value
  // in every variant — identical concrete values, different interpretations.
  store.smash_all_variants(1, 0x41414141);
  auto out = store.read(1);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, core::FailureKind::detected_attack);
  EXPECT_EQ(out.error().cause, core::FaultClass::malicious);
  EXPECT_EQ(store.detections(), 1u);
}

TEST(NVariantData, PartialSmashIsDetected) {
  NVariantStore store{4, 3, 7};
  ASSERT_TRUE(store.write(2, 55).has_value());
  store.smash_one_variant(2, 1, 0xdead);
  EXPECT_FALSE(store.read(2).has_value());
}

TEST(NVariantData, OtherCellsUnaffectedBySmash) {
  NVariantStore store{4, 2, 7};
  ASSERT_TRUE(store.write(0, 11).has_value());
  ASSERT_TRUE(store.write(1, 22).has_value());
  store.smash_all_variants(1, 99);
  EXPECT_EQ(store.read(0).value(), 11);
  EXPECT_FALSE(store.read(1).has_value());
}

TEST(NVariantData, LegitimateRewriteClearsOldCorruption) {
  NVariantStore store{2, 2, 7};
  store.smash_all_variants(0, 5);
  EXPECT_FALSE(store.read(0).has_value());
  ASSERT_TRUE(store.write(0, 8).has_value());
  EXPECT_EQ(store.read(0).value(), 8);
}

TEST(NVariantData, SingleVariantDegradesToPlainStorage) {
  // With one variant there is no redundancy: the smash goes undetected and
  // the attacker's raw value is *believed* — the vulnerable baseline.
  NVariantStore store{2, 1, 7};
  ASSERT_TRUE(store.write(0, 1000).has_value());
  store.smash_all_variants(0, 0x41414141);
  auto out = store.read(0);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 0x41414141);
  EXPECT_EQ(store.detections(), 0u);
}

class VariantCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VariantCountTest, DetectionHoldsForAnyWidthAboveOne) {
  NVariantStore store{4, GetParam(), 99};
  ASSERT_TRUE(store.write(0, 77).has_value());
  EXPECT_EQ(store.read(0).value(), 77);
  store.smash_all_variants(0, 123456);
  EXPECT_FALSE(store.read(0).has_value());
}

INSTANTIATE_TEST_SUITE_P(Widths, VariantCountTest,
                         ::testing::Values(2, 3, 4, 5, 8));

TEST(NVariantData, TaxonomyMatchesPaperRow) {
  const auto t = NVariantStore::taxonomy();
  EXPECT_EQ(t.type, core::RedundancyType::data);
  EXPECT_EQ(t.faults, core::TargetFaults::malicious);
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::reactive_implicit);
}

}  // namespace
}  // namespace redundancy::techniques
