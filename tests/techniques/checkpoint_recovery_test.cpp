#include "techniques/checkpoint_recovery.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "util/rng.hpp"

namespace redundancy::techniques {
namespace {

class Store final : public env::Checkpointable {
 public:
  std::int64_t committed = 0;
  [[nodiscard]] util::ByteBuffer snapshot() const override {
    util::ByteBuffer buf;
    buf.put(committed);
    return buf;
  }
  void restore(const util::ByteBuffer& state) override {
    committed = state.reader().get<std::int64_t>();
  }
};

TEST(CheckpointRecovery, HealthyOperationsJustRun) {
  Store store;
  CheckpointRecovery cr{store};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cr.run([&store] {
                    store.committed += 1;
                    return core::ok_status();
                  }).has_value());
  }
  EXPECT_EQ(store.committed, 20);
  EXPECT_EQ(cr.rollbacks(), 0u);
}

TEST(CheckpointRecovery, PeriodicCheckpointCadence) {
  Store store;
  CheckpointRecovery cr{store, {.checkpoint_every = 5, .max_retries = 1}};
  for (int i = 0; i < 20; ++i) {
    (void)cr.run([&store] {
      store.committed += 1;
      return core::ok_status();
    });
  }
  // 1 initial + one every 5 successful ops (taken lazily before the op).
  EXPECT_EQ(cr.checkpoints_taken(), 4u);
}

TEST(CheckpointRecovery, HeisenbugRecoveredByReExecution) {
  Store store;
  CheckpointRecovery cr{store, {.checkpoint_every = 1, .max_retries = 8}};
  auto rng = std::make_shared<util::Rng>(3);
  std::size_t heisen_failures = 0;
  for (int i = 0; i < 500; ++i) {
    auto status = cr.run([&store, &rng, &heisen_failures] {
      store.committed += 1;
      if (rng->chance(0.3)) {  // transient condition re-rolls per retry
        ++heisen_failures;
        return core::Status{core::failure(core::FailureKind::crash,
                                          "transient",
                                          core::FaultClass::heisenbug)};
      }
      return core::ok_status();
    });
    ASSERT_TRUE(status.has_value()) << "iteration " << i;
  }
  EXPECT_GT(heisen_failures, 0u);
  EXPECT_GT(cr.recoveries(), 0u);
  EXPECT_EQ(cr.unrecovered(), 0u);
  // Rollback discarded the failed attempts' increments: exactly 500 remain.
  EXPECT_EQ(store.committed, 500);
}

TEST(CheckpointRecovery, BohrbugDefeatsRetry) {
  // Deterministic failure: every re-execution repeats it — checkpoint
  // recovery addresses Heisenbugs, not Bohrbugs (the Table 2 claim).
  Store store;
  CheckpointRecovery cr{store, {.checkpoint_every = 1, .max_retries = 6}};
  auto status = cr.run([&store] {
    store.committed += 1;
    return core::Status{core::failure(core::FailureKind::wrong_output,
                                      "deterministic",
                                      core::FaultClass::bohrbug)};
  });
  EXPECT_FALSE(status.has_value());
  EXPECT_EQ(cr.unrecovered(), 1u);
  EXPECT_EQ(cr.rollbacks(), 7u);  // 6 retries + the final fail-stop restore
  EXPECT_EQ(store.committed, 0);  // final rollback left clean state
}

TEST(CheckpointRecovery, RollbackRestoresPreFailureState) {
  Store store;
  CheckpointRecovery cr{store, {.checkpoint_every = 100, .max_retries = 1}};
  ASSERT_TRUE(cr.run([&store] {
                  store.committed = 7;
                  return core::ok_status();
                }).has_value());
  // Fails twice (op + 1 retry): state must return to the checkpoint, which
  // was taken before the first op (committed == 0).
  auto status = cr.run([&store] {
    store.committed += 100;
    return core::Status{core::failure(core::FailureKind::crash)};
  });
  EXPECT_FALSE(status.has_value());
  EXPECT_EQ(store.committed, 0);
}

TEST(CheckpointRecovery, ManualCheckpointPinsState) {
  Store store;
  CheckpointRecovery cr{store, {.checkpoint_every = 1000, .max_retries = 1}};
  store.committed = 55;
  cr.checkpoint();
  auto status = cr.run([&store] {
    store.committed = -1;
    return core::Status{core::failure(core::FailureKind::crash)};
  });
  EXPECT_FALSE(status.has_value());
  EXPECT_EQ(store.committed, 55);
}

TEST(CheckpointRecovery, FirstRetrySuccessCountsOneRecovery) {
  Store store;
  CheckpointRecovery cr{store, {.checkpoint_every = 1, .max_retries = 3}};
  int attempts = 0;
  auto status = cr.run([&attempts] {
    return ++attempts == 1
               ? core::Status{core::failure(core::FailureKind::crash)}
               : core::ok_status();
  });
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(cr.recoveries(), 1u);
  EXPECT_EQ(cr.rollbacks(), 1u);
}

TEST(CheckpointRecovery, TaxonomyMatchesPaperRow) {
  const auto t = CheckpointRecovery::taxonomy();
  EXPECT_EQ(t.intention, core::Intention::opportunistic);
  EXPECT_EQ(t.faults, core::TargetFaults::heisenbugs);
}

}  // namespace
}  // namespace redundancy::techniques
