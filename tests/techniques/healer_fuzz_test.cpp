// Property tests for the heap healer: under *any* random workload of
// mallocs, frees, and writes (many deliberately out of bounds), a heap
// accessed only through the healer never exhibits cross-block corruption —
// the Fetzer guarantee — while the same workload applied raw does.
#include <gtest/gtest.h>

#include "techniques/wrappers.hpp"
#include "util/rng.hpp"

namespace redundancy::techniques {
namespace {

struct Op {
  enum Kind { malloc_, free_, write_ } kind;
  std::size_t size_or_offset;
  std::size_t write_len;
  std::size_t target;  // index into live-block list (mod size)
};

std::vector<Op> random_workload(util::Rng& rng, std::size_t n) {
  std::vector<Op> ops;
  for (std::size_t i = 0; i < n; ++i) {
    const auto roll = rng.below(10);
    if (roll < 3) {
      ops.push_back({Op::malloc_, 8 + rng.index(120), 0, 0});
    } else if (roll < 4) {
      ops.push_back({Op::free_, 0, 0, rng.index(1024)});
    } else {
      // Writes: offset and length chosen so that a good fraction overflow.
      ops.push_back({Op::write_, rng.index(96), 1 + rng.index(160),
                     rng.index(1024)});
    }
  }
  return ops;
}

class HealerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HealerFuzzTest, HealedHeapNeverCrossCorrupts) {
  util::Rng rng{GetParam()};
  const auto ops = random_workload(rng, 400);
  env::HeapModel heap{1 << 15};
  HeapHealer healer{heap};
  std::vector<env::BlockId> live;
  std::vector<std::byte> payload(512, std::byte{0x7e});
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::malloc_: {
        auto id = healer.malloc(op.size_or_offset);
        if (id.has_value()) live.push_back(id.value());
        break;
      }
      case Op::free_: {
        if (live.empty()) break;
        const std::size_t i = op.target % live.size();
        (void)healer.free(live[i]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case Op::write_: {
        if (live.empty()) break;
        (void)healer.write(live[op.target % live.size()], op.size_or_offset,
                           std::span{payload}.first(op.write_len));
        break;
      }
    }
  }
  EXPECT_EQ(heap.corrupted_blocks(), 0u) << "seed " << GetParam();
}

TEST_P(HealerFuzzTest, SameWorkloadRawDoesCorrupt) {
  // Control: at least across the seed family, the raw heap suffers
  // corruption somewhere (this guards against the healed test passing
  // vacuously because the workload never actually overflowed).
  util::Rng rng{GetParam()};
  const auto ops = random_workload(rng, 400);
  env::HeapModel heap{1 << 15};
  std::vector<env::BlockId> live;
  std::vector<std::byte> payload(512, std::byte{0x7e});
  std::size_t attempted_overflows = 0;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::malloc_: {
        auto id = heap.malloc(op.size_or_offset);
        if (id.has_value()) live.push_back(id.value());
        break;
      }
      case Op::free_: {
        if (live.empty()) break;
        const std::size_t i = op.target % live.size();
        (void)heap.free(live[i]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case Op::write_: {
        if (live.empty()) break;
        const auto id = live[op.target % live.size()];
        const auto cap = heap.block_size(id).value_or(0);
        if (op.size_or_offset + op.write_len > cap) ++attempted_overflows;
        (void)heap.write_raw(id, op.size_or_offset,
                             std::span{payload}.first(op.write_len));
        break;
      }
    }
  }
  if (attempted_overflows > 5) {
    EXPECT_GT(heap.corrupted_blocks(), 0u) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HealerFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace redundancy::techniques
