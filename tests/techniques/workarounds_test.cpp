#include "techniques/workarounds.hpp"

#include <gtest/gtest.h>

#include <map>

namespace redundancy::techniques {
namespace {

TEST(GenerateWorkarounds, SingleRuleSingleSite) {
  std::vector<RewriteRule> rules{{"expand", {"addAll"}, {"add", "add"}}};
  auto alts = generate_workarounds({"open", "addAll", "close"}, rules, 1);
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(alts[0], (Sequence{"open", "add", "add", "close"}));
}

TEST(GenerateWorkarounds, AllSitesRewrittenSeparately) {
  std::vector<RewriteRule> rules{{"r", {"a"}, {"b"}}};
  auto alts = generate_workarounds({"a", "x", "a"}, rules, 1);
  ASSERT_EQ(alts.size(), 2u);
  EXPECT_EQ(alts[0], (Sequence{"b", "x", "a"}));
  EXPECT_EQ(alts[1], (Sequence{"a", "x", "b"}));
}

TEST(GenerateWorkarounds, BreadthFirstByRewriteCount) {
  std::vector<RewriteRule> rules{{"r", {"a"}, {"b"}}};
  auto alts = generate_workarounds({"a", "a"}, rules, 2);
  // Depth 1: {b,a}, {a,b}; depth 2: {b,b}.
  ASSERT_EQ(alts.size(), 3u);
  EXPECT_EQ(alts[2], (Sequence{"b", "b"}));
}

TEST(GenerateWorkarounds, DeduplicatesAndExcludesOriginal) {
  // Symmetric rules regenerate the original; it must not reappear.
  std::vector<RewriteRule> rules{{"fwd", {"a"}, {"b"}}, {"bwd", {"b"}, {"a"}}};
  auto alts = generate_workarounds({"a"}, rules, 3);
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(alts[0], (Sequence{"b"}));
}

TEST(GenerateWorkarounds, MaxCandidatesCapsOutput) {
  std::vector<RewriteRule> rules{{"r1", {"a"}, {"b"}}, {"r2", {"a"}, {"c"}},
                                 {"r3", {"a"}, {"d"}}};
  auto alts = generate_workarounds({"a", "a", "a"}, rules, 3, 5);
  EXPECT_EQ(alts.size(), 5u);
}

TEST(GenerateWorkarounds, MultiTokenPatterns) {
  std::vector<RewriteRule> rules{
      {"merge", {"add", "add"}, {"addAll"}}};
  auto alts = generate_workarounds({"add", "add", "add"}, rules, 1);
  ASSERT_EQ(alts.size(), 2u);
  EXPECT_EQ(alts[0], (Sequence{"addAll", "add"}));
}

TEST(GenerateWorkarounds, NoApplicableRuleMeansNoCandidates) {
  std::vector<RewriteRule> rules{{"r", {"zzz"}, {"y"}}};
  EXPECT_TRUE(generate_workarounds({"a", "b"}, rules, 3).empty());
}

// --- The end-to-end container scenario -------------------------------------
//
// A container whose bulk operation addAll(1,2) hits a Bohrbug, while the
// elementary add(x) operations work. The API is intrinsically redundant:
// addAll(x,y) == add(x); add(y) — the published motivating example.

core::Status run_container(const Sequence& seq) {
  std::vector<int> state;
  bool open = false;
  for (const Action& op : seq) {
    if (op == "open") {
      open = true;
    } else if (op == "close") {
      open = false;
    } else if (op == "add(1)") {
      if (!open) return core::failure(core::FailureKind::crash, "not open");
      state.push_back(1);
    } else if (op == "add(2)") {
      if (!open) return core::failure(core::FailureKind::crash, "not open");
      state.push_back(2);
    } else if (op == "addAll(1,2)") {
      return core::failure(core::FailureKind::crash, "bulk-insert bug",
                           core::FaultClass::bohrbug);
    } else {
      return core::failure(core::FailureKind::crash, "unknown op " + op);
    }
  }
  // Validation: intended effect is the container holding {1, 2}.
  if (state == std::vector<int>{1, 2} && !open) return core::ok_status();
  return core::failure(core::FailureKind::acceptance_failed, "wrong state");
}

std::vector<RewriteRule> container_rules() {
  return {
      {"bulk-to-singles", {"addAll(1,2)"}, {"add(1)", "add(2)"}},
      {"singles-to-bulk", {"add(1)", "add(2)"}, {"addAll(1,2)"}},
  };
}

TEST(AutomaticWorkarounds, HealsTheFailingBulkInsert) {
  AutomaticWorkarounds healer{container_rules(), run_container};
  const Sequence failing{"open", "addAll(1,2)", "close"};
  ASSERT_FALSE(run_container(failing).has_value());
  auto workaround = healer.heal(failing);
  ASSERT_TRUE(workaround.has_value());
  EXPECT_EQ(workaround.value(),
            (Sequence{"open", "add(1)", "add(2)", "close"}));
  EXPECT_EQ(healer.healed(), 1u);
  EXPECT_EQ(healer.candidates_tried(), 1u);  // ranked first, worked first
}

TEST(AutomaticWorkarounds, ReportsWhenNoWorkaroundExists) {
  // Equivalence rules that only shuffle between equally broken forms.
  std::vector<RewriteRule> rules{
      {"rename", {"addAll(1,2)"}, {"brokenToo"}},
  };
  auto always_fail = [](const Sequence&) -> core::Status {
    return core::failure(core::FailureKind::crash);
  };
  AutomaticWorkarounds healer{rules, always_fail};
  auto out = healer.heal({"open", "addAll(1,2)", "close"});
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, core::FailureKind::no_alternatives);
  EXPECT_EQ(healer.unhealed(), 1u);
}

TEST(AutomaticWorkarounds, CandidatesTriedCountsExecutorCalls) {
  std::vector<RewriteRule> rules{{"r1", {"a"}, {"b"}}, {"r2", {"a"}, {"c"}}};
  std::size_t calls = 0;
  AutomaticWorkarounds healer{
      rules, [&calls](const Sequence& s) -> core::Status {
        ++calls;
        if (s == Sequence{"c"}) return core::ok_status();
        return core::failure(core::FailureKind::crash);
      }};
  auto out = healer.heal({"a"});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), (Sequence{"c"}));
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(healer.candidates_tried(), 2u);
}

TEST(AutomaticWorkarounds, TaxonomyMatchesPaperRow) {
  const auto t = AutomaticWorkarounds::taxonomy();
  EXPECT_EQ(t.intention, core::Intention::opportunistic);
  EXPECT_EQ(t.pattern, core::ArchitecturalPattern::intra_component);
}

}  // namespace
}  // namespace redundancy::techniques
