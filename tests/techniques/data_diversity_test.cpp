#include "techniques/data_diversity.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace redundancy::techniques {
namespace {

using core::Result;

// A "program" with an input-dependent Bohrbug: computing a+b fails on a
// corner region where a happens to equal b (think: a buggy branch for the
// diagonal). Inputs are (a, b) pairs; a + b is preserved under the exact
// re-expression (a+d, b-d) which slides off the diagonal.
struct Pair {
  std::int64_t a = 0;
  std::int64_t b = 0;
  friend bool operator==(const Pair&, const Pair&) = default;
};

Result<std::int64_t> buggy_sum(const Pair& p) {
  if (p.a == p.b) {
    return core::failure(core::FailureKind::crash, "diagonal corner case",
                         core::FaultClass::bohrbug);
  }
  return p.a + p.b;
}

ReExpression<Pair, std::int64_t> shift(std::int64_t d) {
  return {"shift" + std::to_string(d),
          [d](const Pair& p) { return Pair{p.a + d, p.b - d}; },
          nullptr};
}

core::AcceptanceTest<Pair, std::int64_t> plausible_sum() {
  // A loose sanity test (range check): explicit adjudicator of the retry
  // block — it need not know the exact answer.
  return [](const Pair& p, const std::int64_t& out) {
    return out == p.a + p.b;
  };
}

TEST(RetryBlock, IdentityUsedWhenInputIsBenign) {
  RetryBlock<Pair, std::int64_t> rb{
      buggy_sum, {identity_reexpression<Pair, std::int64_t>(), shift(1)},
      plausible_sum()};
  auto out = rb.run(Pair{2, 5});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 7);
  EXPECT_EQ(rb.metrics().variant_executions, 1u);
}

TEST(RetryBlock, ReExpressionSlidesOffTheCornerCase) {
  RetryBlock<Pair, std::int64_t> rb{
      buggy_sum, {identity_reexpression<Pair, std::int64_t>(), shift(1)},
      plausible_sum()};
  auto out = rb.run(Pair{4, 4});  // diagonal: identity fails
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 8);
  EXPECT_EQ(rb.metrics().recoveries, 1u);
}

TEST(RetryBlock, FailsOnlyWhenAllReExpressionsHitTheFaultRegion) {
  // A pathological re-expression that maps back onto the diagonal.
  ReExpression<Pair, std::int64_t> useless{
      "useless", [](const Pair& p) { return p; }, nullptr};
  RetryBlock<Pair, std::int64_t> rb{
      buggy_sum, {identity_reexpression<Pair, std::int64_t>(), useless},
      plausible_sum()};
  EXPECT_FALSE(rb.run(Pair{3, 3}).has_value());
}

TEST(RetryBlock, RecoveryTransformMapsOutputBack) {
  // Program computes 10*a; re-express by doubling a, recover by halving.
  auto times10 = [](const Pair& p) -> Result<std::int64_t> {
    if (p.a == 7) return core::failure(core::FailureKind::crash, "corner");
    return 10 * p.a;
  };
  ReExpression<Pair, std::int64_t> doubled{
      "double-a", [](const Pair& p) { return Pair{p.a * 2, p.b}; },
      [](const Pair&, const std::int64_t& out) { return out / 2; }};
  RetryBlock<Pair, std::int64_t> rb{
      times10, {identity_reexpression<Pair, std::int64_t>(), doubled},
      [](const Pair& p, const std::int64_t& out) { return out == 10 * p.a; }};
  auto out = rb.run(Pair{7, 0});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 70);
}

TEST(NCopy, MajorityAcrossReExpressedCopies) {
  NCopyProgramming<Pair, std::int64_t> nc{
      buggy_sum,
      {identity_reexpression<Pair, std::int64_t>(), shift(1), shift(2)}};
  // On the diagonal the identity copy crashes but both shifted copies agree.
  auto out = nc.run(Pair{5, 5});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 10);
  EXPECT_EQ(nc.copies(), 3u);
  EXPECT_EQ(nc.metrics().recoveries, 1u);
}

TEST(NCopy, AllCopiesRunEveryRequest) {
  NCopyProgramming<Pair, std::int64_t> nc{
      buggy_sum,
      {identity_reexpression<Pair, std::int64_t>(), shift(1), shift(2)}};
  for (int i = 0; i < 5; ++i) (void)nc.run(Pair{i, i + 1});
  EXPECT_EQ(nc.metrics().variant_executions, 15u);
}

TEST(NCopy, ApproximateReExpressionWithApproxVoter) {
  // A numeric kernel where re-expression perturbs the result slightly:
  // approximate data diversity needs an inexact voter.
  auto kernel = [](const double& x) -> Result<double> {
    return std::sqrt(x);
  };
  std::vector<ReExpression<double, double>> res{
      {"id", [](const double& x) { return x; }, nullptr},
      {"eps+", [](const double& x) { return x * (1 + 1e-12); }, nullptr},
      {"eps-", [](const double& x) { return x * (1 - 1e-12); }, nullptr},
  };
  NCopyProgramming<double, double> nc{
      kernel, res, core::majority_voter<double>(core::ApproxEq{1e-9})};
  auto out = nc.run(2.0);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(out.value(), std::sqrt(2.0), 1e-9);
}

TEST(DataDiversity, TaxonomyMatchesPaperRow) {
  const auto t = RetryBlock<Pair, std::int64_t>::taxonomy();
  EXPECT_EQ(t.type, core::RedundancyType::data);
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::reactive_hybrid);
}

}  // namespace
}  // namespace redundancy::techniques
