#include "techniques/wrappers.hpp"

#include <gtest/gtest.h>

namespace redundancy::techniques {
namespace {

std::vector<std::byte> bytes(std::size_t n) {
  return std::vector<std::byte>(n, std::byte{0x55});
}

TEST(HeapHealer, InBoundsWritesPassThrough) {
  env::HeapModel heap{1024};
  HeapHealer healer{heap};
  auto a = healer.malloc(32);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(healer.write(a.value(), 0, bytes(32)).has_value());
  EXPECT_EQ(healer.prevented_overflows(), 0u);
}

TEST(HeapHealer, RejectsOverflowBeforeItCorrupts) {
  env::HeapModel heap{1024};
  HeapHealer healer{heap};
  auto a = healer.malloc(16);
  auto b = healer.malloc(16);
  auto status = healer.write(a.value(), 0, bytes(64));
  ASSERT_FALSE(status.has_value());
  EXPECT_EQ(status.error().kind, core::FailureKind::corrupted_state);
  EXPECT_EQ(healer.prevented_overflows(), 1u);
  EXPECT_FALSE(heap.is_corrupted(b.value()));  // neighbour survived
}

TEST(HeapHealer, UnprotectedHeapGetsCorrupted) {
  // Control: the same overflow without the healer clobbers the neighbour.
  env::HeapModel heap{1024};
  auto a = heap.malloc(16);
  auto b = heap.malloc(16);
  EXPECT_TRUE(heap.write_raw(a.value(), 0, bytes(64)).has_value());
  EXPECT_TRUE(heap.is_corrupted(b.value()));
}

TEST(HeapHealer, TruncatePolicyKeepsPrefix) {
  env::HeapModel heap{1024};
  HeapHealer healer{heap, HeapHealer::Policy::truncate};
  auto a = healer.malloc(16);
  auto b = healer.malloc(16);
  EXPECT_TRUE(healer.write(a.value(), 8, bytes(64)).has_value());
  EXPECT_EQ(healer.prevented_overflows(), 1u);
  EXPECT_FALSE(heap.is_corrupted(b.value()));
}

TEST(HeapHealer, TruncateBeyondEndStillRejects) {
  env::HeapModel heap{1024};
  HeapHealer healer{heap, HeapHealer::Policy::truncate};
  auto a = healer.malloc(16);
  // Write starting past the block's end has no in-bounds prefix.
  EXPECT_FALSE(healer.write(a.value(), 20, bytes(4)).has_value());
}

TEST(HeapHealer, FreeForgetsBlock) {
  env::HeapModel heap{1024};
  HeapHealer healer{heap};
  auto a = healer.malloc(16);
  ASSERT_TRUE(healer.free(a.value()).has_value());
  EXPECT_FALSE(healer.write(a.value(), 0, bytes(4)).has_value());
}

// --- ProtectorWrapper -------------------------------------------------------

services::Message msg(std::int64_t n) {
  return {{"n", n}};
}

TEST(Protector, AllowsValidCalls) {
  ProtectorWrapper p;
  p.expose("sqrt", [](const services::Message& m) -> core::Result<services::Message> {
    return services::Message{{"r", std::get<std::int64_t>(m.at("n")) / 2}};
  });
  p.require("sqrt", [](const services::Message& m) {
    return std::get<std::int64_t>(m.at("n")) >= 0;
  });
  EXPECT_TRUE(p.call("sqrt", msg(16)).has_value());
  EXPECT_EQ(p.rejected(), 0u);
}

TEST(Protector, RejectsPreconditionViolations) {
  ProtectorWrapper p;
  bool reached = false;
  p.expose("sqrt",
           [&reached](const services::Message&) -> core::Result<services::Message> {
             reached = true;
             return services::Message{};
           });
  p.require("sqrt", [](const services::Message& m) {
    return std::get<std::int64_t>(m.at("n")) >= 0;
  });
  auto out = p.call("sqrt", msg(-4));
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, core::FailureKind::acceptance_failed);
  EXPECT_FALSE(reached);  // the COTS component never saw the bad call
  EXPECT_EQ(p.rejected(), 1u);
}

TEST(Protector, FixerRepairsViolatingRequests) {
  ProtectorWrapper p;
  p.expose("sqrt", [](const services::Message& m) -> core::Result<services::Message> {
    return services::Message{{"r", std::get<std::int64_t>(m.at("n"))}};
  });
  p.require(
      "sqrt",
      [](const services::Message& m) {
        return std::get<std::int64_t>(m.at("n")) >= 0;
      },
      [](services::Message m) {  // clamp to the valid domain
        m["n"] = std::int64_t{0};
        return m;
      });
  auto out = p.call("sqrt", msg(-4));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("r")), 0);
  EXPECT_EQ(p.repaired(), 1u);
  EXPECT_EQ(p.rejected(), 0u);
}

TEST(Protector, UnknownOperationIsUnavailable) {
  ProtectorWrapper p;
  EXPECT_FALSE(p.call("nothing", {}).has_value());
}

TEST(Protector, MultiplePreconditionsAllChecked) {
  ProtectorWrapper p;
  p.expose("op", [](const services::Message&) -> core::Result<services::Message> {
    return services::Message{};
  });
  p.require("op", [](const services::Message& m) { return m.contains("a"); });
  p.require("op", [](const services::Message& m) { return m.contains("b"); });
  EXPECT_FALSE(p.call("op", {{"a", std::int64_t{1}}}).has_value());
  EXPECT_TRUE(
      p.call("op", {{"a", std::int64_t{1}}, {"b", std::int64_t{2}}}).has_value());
}

// --- ProtocolGuard ----------------------------------------------------------

ProtocolGuard file_protocol() {
  ProtocolGuard guard{"closed"};
  guard.allow("closed", "open", "open");
  guard.allow("open", "read", "open");
  guard.allow("open", "write", "open");
  guard.allow("open", "close", "closed");
  return guard;
}

TEST(ProtocolGuard, LegalSequencePasses) {
  auto guard = file_protocol();
  EXPECT_TRUE(guard.fire("open").has_value());
  EXPECT_TRUE(guard.fire("read").has_value());
  EXPECT_TRUE(guard.fire("write").has_value());
  EXPECT_TRUE(guard.fire("close").has_value());
  EXPECT_EQ(guard.state(), "closed");
  EXPECT_EQ(guard.violations(), 0u);
}

TEST(ProtocolGuard, UseBeforeOpenRejected) {
  auto guard = file_protocol();
  auto out = guard.fire("read");
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, core::FailureKind::acceptance_failed);
  EXPECT_EQ(guard.violations(), 1u);
  EXPECT_EQ(guard.state(), "closed");  // illegal calls do not advance
}

TEST(ProtocolGuard, UseAfterCloseRejected) {
  auto guard = file_protocol();
  ASSERT_TRUE(guard.fire("open").has_value());
  ASSERT_TRUE(guard.fire("close").has_value());
  EXPECT_FALSE(guard.fire("write").has_value());
}

TEST(ProtocolGuard, DoubleOpenRejected) {
  auto guard = file_protocol();
  ASSERT_TRUE(guard.fire("open").has_value());
  EXPECT_FALSE(guard.fire("open").has_value());
}

TEST(ProtocolGuard, ResetRestoresInitialState) {
  auto guard = file_protocol();
  ASSERT_TRUE(guard.fire("open").has_value());
  guard.reset();
  EXPECT_EQ(guard.state(), "closed");
  EXPECT_TRUE(guard.fire("open").has_value());
}

TEST(ProtocolGuard, GuardedOperationOnlyRunsInProtocol) {
  auto guard = file_protocol();
  int component_calls = 0;
  auto read = guard.guard(
      "read", [&component_calls](const services::Message&)
                  -> core::Result<services::Message> {
        ++component_calls;
        return services::Message{{"data", std::int64_t{42}}};
      });
  EXPECT_FALSE(read({}).has_value());   // still closed
  EXPECT_EQ(component_calls, 0);        // the COTS component was shielded
  ASSERT_TRUE(guard.fire("open").has_value());
  auto out = read({});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(component_calls, 1);
}

TEST(Wrappers, TaxonomyMatchesPaperRow) {
  const auto t = HeapHealer::taxonomy();
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::preventive);
  EXPECT_EQ(t.faults, core::TargetFaults::bohrbugs_and_malicious);
}

}  // namespace
}  // namespace redundancy::techniques
