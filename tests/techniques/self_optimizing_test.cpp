#include "techniques/self_optimizing.hpp"

#include <gtest/gtest.h>

namespace redundancy::techniques {
namespace {

QosImplementation impl(std::string name, double latency) {
  return {std::move(name), [latency](double x) {
            return std::pair<double, double>{x * 2, latency};
          }};
}

TEST(SelfOptimizing, StaysOnHealthyImplementation) {
  SelfOptimizing so{{impl("fast", 10.0), impl("slow", 90.0)},
                    {.sla_latency_ms = 50.0, .window = 8, .warmup = 4}};
  for (int i = 0; i < 50; ++i) {
    auto out = so.run(i);
    ASSERT_TRUE(out.has_value());
  }
  EXPECT_EQ(so.active(), "fast");
  EXPECT_EQ(so.switches(), 0u);
  EXPECT_EQ(so.sla_violations(), 0u);
}

TEST(SelfOptimizing, SwitchesAwayFromDegradedImplementation) {
  SelfOptimizing so{{impl("degraded", 200.0), impl("backup", 10.0)},
                    {.sla_latency_ms = 50.0, .window = 8, .warmup = 4}};
  for (int i = 0; i < 20; ++i) (void)so.run(i);
  EXPECT_EQ(so.active(), "backup");
  EXPECT_EQ(so.switches(), 1u);
  EXPECT_GT(so.sla_violations(), 0u);
}

TEST(SelfOptimizing, DegradationAtRuntimeTriggersSwitch) {
  double lat_a = 10.0;
  QosImplementation dynamic{"a", [&lat_a](double x) {
                              return std::pair<double, double>{x, lat_a};
                            }};
  SelfOptimizing so{{dynamic, impl("b", 20.0)},
                    {.sla_latency_ms = 50.0, .window = 4, .warmup = 2}};
  for (int i = 0; i < 10; ++i) (void)so.run(i);
  EXPECT_EQ(so.active(), "a");
  lat_a = 300.0;  // performance fault appears
  for (int i = 0; i < 10; ++i) (void)so.run(i);
  EXPECT_EQ(so.active(), "b");
}

TEST(SelfOptimizing, RotatesThroughAllWhenEveryoneIsSlow) {
  SelfOptimizing so{{impl("a", 100.0), impl("b", 100.0), impl("c", 100.0)},
                    {.sla_latency_ms = 50.0, .window = 4, .warmup = 2}};
  for (int i = 0; i < 30; ++i) (void)so.run(i);
  EXPECT_GE(so.switches(), 3u);
}

TEST(SelfOptimizing, ReturnsComputedValue) {
  SelfOptimizing so{{impl("a", 1.0)}, {.sla_latency_ms = 50.0}};
  auto out = so.run(21.0);
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out.value(), 42.0);
}

TEST(SelfOptimizing, EmptyImplementationListIsUnavailable) {
  SelfOptimizing so{{}, {.sla_latency_ms = 50.0}};
  EXPECT_FALSE(so.run(1).has_value());
}

TEST(SelfOptimizing, WindowAverageReflectsRecentHistory) {
  SelfOptimizing so{{impl("a", 30.0)},
                    {.sla_latency_ms = 100.0, .window = 4, .warmup = 8}};
  for (int i = 0; i < 6; ++i) (void)so.run(i);
  EXPECT_NEAR(so.window_average_latency(), 30.0, 1e-9);
}

TEST(SelfOptimizing, TaxonomyMatchesPaperRow) {
  const auto t = SelfOptimizing::taxonomy();
  EXPECT_EQ(t.intention, core::Intention::deliberate);
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::reactive_explicit);
}

}  // namespace
}  // namespace redundancy::techniques
