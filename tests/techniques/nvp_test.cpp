#include "techniques/nvp.hpp"

#include <gtest/gtest.h>

#include "faults/campaign.hpp"
#include "faults/fault.hpp"

namespace redundancy::techniques {
namespace {

using core::Result;

int golden(const int& x) { return x * x; }

/// Build N independently-faulty versions with per-version Bohrbug regions.
std::vector<core::Variant<int, int>> versions(std::size_t n, double fault_rate,
                                              bool correlated = false) {
  std::vector<core::Variant<int, int>> out;
  for (std::size_t i = 0; i < n; ++i) {
    faults::FaultInjector<int, int> v{"v" + std::to_string(i), golden};
    const std::uint64_t salt = correlated ? 1234 : 1000 + i;
    v.add(faults::bohrbug<int, int>(
        "bug", fault_rate, salt, core::FailureKind::wrong_output,
        faults::skewed<int, int>(static_cast<int>(i) + 1)));
    out.push_back(v.as_variant());
  }
  return out;
}

TEST(Nvp, AgreementPassesThrough) {
  NVersionProgramming<int, int> nvp{versions(3, 0.0)};
  auto out = nvp.run(6);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 36);
}

TEST(Nvp, ToleratedFaultsFormula) {
  EXPECT_EQ((NVersionProgramming<int, int>{versions(1, 0)}).tolerated_faults(), 0u);
  EXPECT_EQ((NVersionProgramming<int, int>{versions(3, 0)}).tolerated_faults(), 1u);
  EXPECT_EQ((NVersionProgramming<int, int>{versions(5, 0)}).tolerated_faults(), 2u);
  EXPECT_EQ((NVersionProgramming<int, int>{versions(9, 0)}).tolerated_faults(), 4u);
}

TEST(Nvp, MasksSingleWrongVersionInTriple) {
  // One version always wrong, two correct: every input must survive.
  std::vector<core::Variant<int, int>> vs = versions(2, 0.0);
  faults::FaultInjector<int, int> bad{"always-wrong", golden};
  bad.add(faults::bohrbug<int, int>("b", 1.0, 5, core::FailureKind::wrong_output,
                                    faults::off_by_one<int, int>()));
  vs.push_back(bad.as_variant());
  NVersionProgramming<int, int> nvp{std::move(vs)};
  for (int x = 0; x < 200; ++x) {
    auto out = nvp.run(x);
    ASSERT_TRUE(out.has_value()) << x;
    EXPECT_EQ(out.value(), x * x);
  }
  EXPECT_EQ(nvp.metrics().unrecovered, 0u);
}

TEST(Nvp, IndependentFaultsMarkedlyImproveReliability) {
  const double p = 0.10;
  auto single_system = versions(1, p);
  auto triple = NVersionProgramming<int, int>{versions(3, p)};
  auto report_single = faults::run_campaign<int, int>(
      "single", 20'000,
      [](std::size_t i, util::Rng&) { return static_cast<int>(i); },
      [&single_system](const int& x) { return single_system[0](x); },
      golden);
  auto report_triple = faults::run_campaign<int, int>(
      "triple", 20'000,
      [](std::size_t i, util::Rng&) { return static_cast<int>(i); },
      [&triple](const int& x) { return triple.run(x); }, golden);
  EXPECT_NEAR(report_single.reliability_value(), 1.0 - p, 0.02);
  // Independent versions: P(fail) ~ 3p^2 = 0.03 -> reliability ~ 0.97+.
  EXPECT_GT(report_triple.reliability_value(),
            report_single.reliability_value() + 0.04);
}

TEST(Nvp, CorrelatedFaultsEraseTheGain) {
  // All three versions share the same failure region (Brilliant-Knight):
  // on those inputs every version is wrong and voting fails or elects a
  // wrong value; reliability stays near the single-version level.
  const double p = 0.10;
  auto triple = NVersionProgramming<int, int>{versions(3, p, /*correlated=*/true)};
  auto report = faults::run_campaign<int, int>(
      "correlated", 20'000,
      [](std::size_t i, util::Rng&) { return static_cast<int>(i); },
      [&triple](const int& x) { return triple.run(x); }, golden);
  EXPECT_LT(report.reliability_value(), 1.0 - p + 0.02);
}

TEST(Nvp, MedianVoterForNumericOutputs) {
  NVersionProgramming<int, int> nvp{versions(3, 0.0), core::median_voter<int>()};
  auto out = nvp.run(4);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 16);
}

TEST(Nvp, MetricsCountEveryVersionEveryRequest) {
  NVersionProgramming<int, int> nvp{versions(5, 0.0)};
  for (int i = 0; i < 10; ++i) (void)nvp.run(i);
  EXPECT_EQ(nvp.metrics().variant_executions, 50u);
  EXPECT_DOUBLE_EQ(nvp.metrics().executions_per_request(), 5.0);
  nvp.reset_metrics();
  EXPECT_EQ(nvp.metrics().requests, 0u);
}

TEST(Nvp, EnableCacheMemoizesVerdicts) {
  NVersionProgramming<int, int> nvp{versions(3, 0.0)};
  nvp.enable_cache();
  for (int i = 0; i < 6; ++i) {
    auto out = nvp.run(4);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out.value(), 16);
  }
  if (core::kCacheCompiledIn) {
    EXPECT_EQ(nvp.metrics().variant_executions, 3u);  // one miss, five hits
    EXPECT_EQ(nvp.metrics().requests, 6u);
    ASSERT_NE(nvp.cache(), nullptr);
    nvp.invalidate_cache();
    (void)nvp.run(4);
    EXPECT_EQ(nvp.metrics().variant_executions, 6u);
    nvp.disable_cache();
    EXPECT_EQ(nvp.cache(), nullptr);
  }
}

TEST(Nvp, TaxonomyMatchesPaperRow) {
  const auto t = NVersionProgramming<int, int>::taxonomy();
  EXPECT_EQ(t.intention, core::Intention::deliberate);
  EXPECT_EQ(t.type, core::RedundancyType::code);
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::reactive_implicit);
  EXPECT_EQ(t.pattern, core::ArchitecturalPattern::parallel_evaluation);
}

}  // namespace
}  // namespace redundancy::techniques
