#include "techniques/rule_engine.hpp"

#include <gtest/gtest.h>

namespace redundancy::techniques {
namespace {

using services::Message;

core::Result<Message> cached_response(const Message&) {
  return Message{{"v", std::int64_t{-1}}, {"source", std::string{"cache"}}};
}

TEST(RuleEngine, MatchingRuleRecovers) {
  RuleEngine engine;
  engine.add_rule({"getPrice", core::FailureKind::timeout, "serve-cached",
                   cached_response});
  auto out = engine.handle("getPrice",
                           core::failure(core::FailureKind::timeout), {});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::string>(out.value().at("source")), "cache");
  EXPECT_EQ(engine.activations(), 1u);
  EXPECT_EQ(engine.recoveries(), 1u);
}

TEST(RuleEngine, NonMatchingKindPropagatesOriginalFailure) {
  RuleEngine engine;
  engine.add_rule({"getPrice", core::FailureKind::timeout, "r",
                   cached_response});
  auto out =
      engine.handle("getPrice", core::failure(core::FailureKind::crash), {});
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, core::FailureKind::crash);
  EXPECT_EQ(engine.activations(), 0u);
}

TEST(RuleEngine, NonMatchingOperationPropagates) {
  RuleEngine engine;
  engine.add_rule({"getPrice", core::FailureKind::timeout, "r",
                   cached_response});
  EXPECT_FALSE(engine
                   .handle("other", core::failure(core::FailureKind::timeout),
                           {})
                   .has_value());
}

TEST(RuleEngine, WildcardOperationMatchesEverything) {
  RuleEngine engine;
  engine.add_rule({"*", core::FailureKind::unavailable, "generic",
                   cached_response});
  EXPECT_TRUE(engine
                  .handle("anything",
                          core::failure(core::FailureKind::unavailable), {})
                  .has_value());
}

TEST(RuleEngine, FirstMatchingRuleWins) {
  RuleEngine engine;
  engine.add_rule({"op", core::FailureKind::crash, "first",
                   [](const Message&) -> core::Result<Message> {
                     return Message{{"who", std::string{"first"}}};
                   }});
  engine.add_rule({"*", core::FailureKind::crash, "second",
                   [](const Message&) -> core::Result<Message> {
                     return Message{{"who", std::string{"second"}}};
                   }});
  auto out = engine.handle("op", core::failure(core::FailureKind::crash), {});
  EXPECT_EQ(std::get<std::string>(out.value().at("who")), "first");
}

TEST(RuleEngine, FailedRecoveryActionCountsActivationOnly) {
  RuleEngine engine;
  engine.add_rule({"*", core::FailureKind::crash, "hopeless",
                   [](const Message&) -> core::Result<Message> {
                     return core::failure(core::FailureKind::unavailable);
                   }});
  auto out = engine.handle("op", core::failure(core::FailureKind::crash), {});
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(engine.activations(), 1u);
  EXPECT_EQ(engine.recoveries(), 0u);
}

TEST(RuleEngine, ProtectWrapsHandlerTransparently) {
  RuleEngine engine;
  engine.add_rule({"lookup", core::FailureKind::unavailable, "fallback",
                   cached_response});
  int calls = 0;
  auto protected_handler = engine.protect(
      "lookup", [&calls](const Message& m) -> core::Result<Message> {
        ++calls;
        if (m.contains("fail")) {
          return core::failure(core::FailureKind::unavailable);
        }
        return Message{{"v", std::int64_t{1}}};
      });
  // Healthy call: passes through, no rule fired.
  auto ok = protected_handler({});
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(std::get<std::int64_t>(ok.value().at("v")), 1);
  EXPECT_EQ(engine.activations(), 0u);
  // Failing call: rule supplies the substitute response.
  auto healed = protected_handler({{"fail", std::int64_t{1}}});
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(std::get<std::string>(healed.value().at("source")), "cache");
  EXPECT_EQ(calls, 2);
}

TEST(RuleEngine, TaxonomyMatchesPaperRow) {
  const auto t = RuleEngine::taxonomy();
  EXPECT_EQ(t.name, "Exception handling, rule engines");
  EXPECT_EQ(t.adjudicator, core::AdjudicatorKind::reactive_explicit);
}

}  // namespace
}  // namespace redundancy::techniques
