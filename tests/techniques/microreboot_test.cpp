#include "techniques/microreboot.hpp"

#include <gtest/gtest.h>

namespace redundancy::techniques {
namespace {

/// The JAGR-style three-tier application used throughout.
MicrorebootContainer make_app() {
  MicrorebootContainer app;
  EXPECT_TRUE(app.add_component("kernel", 100.0).has_value());
  EXPECT_TRUE(app.add_component("appserver", 40.0, "kernel").has_value());
  EXPECT_TRUE(app.add_component("db", 60.0, "kernel").has_value());
  EXPECT_TRUE(app.add_component("cart", 5.0, "appserver").has_value());
  EXPECT_TRUE(app.add_component("checkout", 8.0, "appserver").has_value());
  return app;
}

TEST(Microreboot, ComponentRegistration) {
  auto app = make_app();
  EXPECT_EQ(app.components(), 5u);
  EXPECT_DOUBLE_EQ(app.total_init_cost(), 213.0);
  EXPECT_FALSE(app.add_component("cart", 1.0).has_value());       // duplicate
  EXPECT_FALSE(app.add_component("x", 1.0, "nope").has_value());  // bad parent
}

TEST(Microreboot, ServeRequiresAncestorChain) {
  auto app = make_app();
  EXPECT_TRUE(app.serve("cart").has_value());
  ASSERT_TRUE(app.fail("appserver").has_value());
  EXPECT_FALSE(app.serve("cart").has_value());      // ancestor down
  EXPECT_FALSE(app.serve("appserver").has_value());
  EXPECT_TRUE(app.serve("db").has_value());         // sibling unaffected
}

TEST(Microreboot, SubtreeRestartHealsAndCostsOnlyTheSubtree) {
  auto app = make_app();
  ASSERT_TRUE(app.fail("appserver").has_value());
  auto report = app.microreboot("appserver");
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report.value().components_restarted, 3u);  // appserver+cart+checkout
  EXPECT_DOUBLE_EQ(report.value().downtime, 53.0);
  EXPECT_TRUE(app.serve("cart").has_value());
}

TEST(Microreboot, LeafRestartIsCheapest) {
  auto app = make_app();
  ASSERT_TRUE(app.fail("cart").has_value());
  auto report = app.microreboot("cart");
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report.value().components_restarted, 1u);
  EXPECT_DOUBLE_EQ(report.value().downtime, 5.0);
}

TEST(Microreboot, FullRebootCostsEverything) {
  auto app = make_app();
  ASSERT_TRUE(app.fail("cart").has_value());
  const auto report = app.full_reboot();
  EXPECT_EQ(report.components_restarted, 5u);
  EXPECT_DOUBLE_EQ(report.downtime, 213.0);
  EXPECT_TRUE(app.serve("cart").has_value());
}

TEST(Microreboot, MicroRebootBeatsFullRebootOnDowntime) {
  auto micro_app = make_app();
  auto full_app = make_app();
  ASSERT_TRUE(micro_app.fail("checkout").has_value());
  ASSERT_TRUE(full_app.fail("checkout").has_value());
  const auto micro = micro_app.microreboot("checkout");
  const auto full = full_app.full_reboot();
  ASSERT_TRUE(micro.has_value());
  EXPECT_LT(micro.value().downtime, full.downtime);
}

TEST(Microreboot, InComponentSessionsDieWithTheirComponent) {
  auto app = make_app();
  (void)app.open_session("cart", /*externalized=*/false);
  (void)app.open_session("checkout", /*externalized=*/false);
  (void)app.open_session("db", /*externalized=*/false);
  auto report = app.microreboot("cart");
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report.value().sessions_lost, 1u);
  EXPECT_EQ(app.active_sessions(), 2u);
}

TEST(Microreboot, ExternalizedSessionsSurviveAnyReboot) {
  auto app = make_app();
  (void)app.open_session("cart", /*externalized=*/true);
  (void)app.open_session("checkout", /*externalized=*/true);
  const auto report = app.full_reboot();
  EXPECT_EQ(report.sessions_lost, 0u);
  EXPECT_EQ(app.active_sessions(), 2u);
}

TEST(Microreboot, FullRebootWithoutSessionStoreLosesEverything) {
  auto app = make_app();
  (void)app.open_session("cart", false);
  (void)app.open_session("db", false);
  const auto report = app.full_reboot();
  EXPECT_EQ(report.sessions_lost, 2u);
  EXPECT_EQ(app.active_sessions(), 0u);
}

TEST(Microreboot, UnknownComponentOperationsFail) {
  auto app = make_app();
  EXPECT_FALSE(app.fail("ghost").has_value());
  EXPECT_FALSE(app.microreboot("ghost").has_value());
  EXPECT_FALSE(app.serve("ghost").has_value());
  EXPECT_FALSE(app.healthy("ghost"));
}

TEST(RecursiveRecovery, FaultAtObservationPointNeedsNoEscalation) {
  auto app = make_app();
  ASSERT_TRUE(app.fail("cart").has_value());
  auto report = app.recover("cart");
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report.value().recovered);
  EXPECT_EQ(report.value().escalations, 0u);
  EXPECT_DOUBLE_EQ(report.value().downtime, 5.0);
}

TEST(RecursiveRecovery, EscalatesToTheFaultyAncestor) {
  auto app = make_app();
  // The fault is in the appserver, but it is *observed* at the cart.
  ASSERT_TRUE(app.fail("appserver").has_value());
  auto report = app.recover("cart");
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report.value().recovered);
  EXPECT_EQ(report.value().escalations, 1u);
  // cart (5) + appserver subtree (40+5+8=53); still far below a full 213.
  EXPECT_DOUBLE_EQ(report.value().downtime, 58.0);
  EXPECT_TRUE(app.serve("cart").has_value());
}

TEST(RecursiveRecovery, ClimbsToTheRootWhenNeeded) {
  auto app = make_app();
  ASSERT_TRUE(app.fail("kernel").has_value());
  auto report = app.recover("cart");
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report.value().recovered);
  EXPECT_EQ(report.value().escalations, 2u);  // cart -> appserver -> kernel
  EXPECT_TRUE(app.serve("checkout").has_value());
}

TEST(RecursiveRecovery, MultipleSimultaneousFaults) {
  auto app = make_app();
  ASSERT_TRUE(app.fail("cart").has_value());
  ASSERT_TRUE(app.fail("appserver").has_value());
  auto report = app.recover("cart");
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report.value().recovered);
  EXPECT_EQ(report.value().escalations, 1u);
}

TEST(RecursiveRecovery, UnknownComponentFails) {
  auto app = make_app();
  EXPECT_FALSE(app.recover("ghost").has_value());
}

TEST(Microreboot, TaxonomyMatchesPaperRow) {
  const auto t = MicrorebootContainer::taxonomy();
  EXPECT_EQ(t.intention, core::Intention::opportunistic);
  EXPECT_EQ(t.faults, core::TargetFaults::heisenbugs);
}

}  // namespace
}  // namespace redundancy::techniques
