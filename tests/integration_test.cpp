// Cross-module integration: the techniques composed the way a real
// deployment would compose them, exercising faults::, env::, services::,
// vm:: and techniques:: together.
#include <gtest/gtest.h>

#include "faults/campaign.hpp"
#include "faults/fault.hpp"
#include "services/workflow.hpp"
#include "techniques/checkpoint_recovery.hpp"
#include "techniques/nvp.hpp"
#include "techniques/process_replicas.hpp"
#include "techniques/recovery_blocks.hpp"
#include "techniques/rule_engine.hpp"
#include "techniques/service_substitution.hpp"
#include "techniques/sql_nvp.hpp"
#include "sql/chaos.hpp"
#include "vm/attacks.hpp"

namespace redundancy {
namespace {

// Scenario 1: NVP inside a recovery block. The NVP triple handles value
// faults; if voting ever deadlocks (no majority), the recovery block's
// alternate — a slow but trusted reference implementation — takes over.
TEST(Integration, NvpNestedInRecoveryBlock) {
  auto golden = [](const int& x) { return x * 7; };
  std::vector<core::Variant<int, int>> vs;
  for (int i = 0; i < 3; ++i) {
    faults::FaultInjector<int, int> v{"v" + std::to_string(i), golden};
    // Heavily faulty versions with *distinct* wrong answers: on unlucky
    // inputs two or three disagree and no majority exists.
    v.add(faults::bohrbug<int, int>(
        "b", 0.35, 100 + static_cast<std::uint64_t>(i),
        core::FailureKind::wrong_output, faults::skewed<int, int>(i + 1)));
    vs.push_back(v.as_variant());
  }
  auto nvp =
      std::make_shared<techniques::NVersionProgramming<int, int>>(std::move(vs));
  auto nvp_variant = core::make_variant<int, int>(
      "nvp-triple", [nvp](const int& x) { return nvp->run(x); });
  auto reference = core::make_variant<int, int>(
      "trusted-reference", [golden](const int& x) -> core::Result<int> {
        return golden(x);
      },
      /*cost=*/10.0);
  techniques::RecoveryBlocks<int, int> rb{
      {nvp_variant, reference},
      [golden](const int& x, const int& out) { return out == golden(x); }};
  auto report = faults::run_campaign<int, int>(
      "nvp+rb", 5000,
      [](std::size_t i, util::Rng&) { return static_cast<int>(i); },
      [&rb](const int& x) { return rb.run(x); }, golden);
  // The composition is airtight: NVP masks minority faults, the reference
  // catches the rest.
  EXPECT_DOUBLE_EQ(report.reliability_value(), 1.0);
  EXPECT_GT(rb.metrics().recoveries, 0u);
}

// Scenario 2: a BPEL-style travel process where the flight service fails
// mid-stream and the binding transparently substitutes an interface-similar
// competitor; a rule engine supplies a cached fallback for the hotel leg.
TEST(Integration, SelfHealingTravelWorkflow) {
  using services::Interface;
  using services::Message;

  services::Registry registry;
  auto flights_a = std::make_shared<services::Endpoint>(
      "flights-a", Interface{"searchFlights", {"from", "to"}, {"fare"}},
      [](const Message&) -> core::Result<Message> {
        return Message{{"fare", std::int64_t{320}}};
      });
  auto flights_b = std::make_shared<services::Endpoint>(
      "flights-b", Interface{"searchFlights", {"origin", "destination"}, {"price"}},
      [](const Message& m) -> core::Result<Message> {
        EXPECT_TRUE(m.contains("origin"));  // converter renamed our fields
        return Message{{"price", std::int64_t{340}}};
      });
  registry.add(flights_a);
  registry.add(flights_b);

  auto binding = std::make_shared<services::DynamicBinding>(
      Interface{"searchFlights", {"from", "to"}, {"fare"}}, registry);

  techniques::RuleEngine rules;
  rules.add_rule({"bookHotel", core::FailureKind::unavailable, "use-cache",
                  [](const Message&) -> core::Result<Message> {
                    return Message{{"hotel", std::string{"cached-rate"}}};
                  }});
  auto hotel = rules.protect(
      "bookHotel", [](const Message&) -> core::Result<Message> {
        return core::failure(core::FailureKind::unavailable, "hotel API down");
      });

  auto wf = services::Workflow{
      "travel",
      services::sequence(
          {services::invoke(binding),
           services::assign("merge",
                            [&hotel](Message m) {
                              auto h = hotel({});
                              if (h.has_value()) {
                                m.insert(h.value().begin(), h.value().end());
                              }
                              return m;
                            })})};

  // First booking goes through flights-a.
  auto out = wf.run({{"from", std::string{"LUG"}}, {"to", std::string{"MIL"}}});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("fare")), 320);

  // flights-a dies; the next booking transparently uses flights-b through a
  // derived converter, and the hotel leg heals through the rule registry.
  flights_a->kill();
  out = wf.run({{"from", std::string{"LUG"}}, {"to", std::string{"MIL"}}});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("fare")), 340);
  EXPECT_EQ(std::get<std::string>(out.value().at("hotel")), "cached-rate");
  EXPECT_EQ(binding->converted_rebinds(), 1u);
  EXPECT_GE(rules.recoveries(), 1u);
}

// Scenario 3: a replicated VM server behind a checkpointed front end. The
// replica monitor turns attacks into detected failures; checkpoint-recovery
// keeps the front-end state consistent across those failures.
TEST(Integration, ReplicatedServerBehindCheckpointedFrontend) {
  techniques::ProcessReplicas replicas{
      vm::vulnerable_server(),
      {.replicas = 2},
      [](vm::Vm& machine, std::size_t base) {
        (void)machine.poke(base + vm::ServerLayout::secret, vm::kSecretValue);
      }};

  class Frontend final : public env::Checkpointable {
   public:
    std::int64_t processed = 0;
    [[nodiscard]] util::ByteBuffer snapshot() const override {
      util::ByteBuffer buf;
      buf.put(processed);
      return buf;
    }
    void restore(const util::ByteBuffer& state) override {
      processed = state.reader().get<std::int64_t>();
    }
  } frontend;

  techniques::CheckpointRecovery cr{frontend,
                                    {.checkpoint_every = 1, .max_retries = 1}};

  const auto base0 = replicas.partitions()[0].base;
  std::size_t attacks_blocked = 0;
  for (int i = 0; i < 30; ++i) {
    const bool attack_round = i % 10 == 9;
    auto status = cr.run([&]() -> core::Status {
      frontend.processed += 1;
      replicas.reset();
      auto out = attack_round
                     ? replicas.serve(vm::absolute_address_attack(base0))
                     : replicas.serve(vm::benign_request(i, i));
      if (!out.has_value()) return out.error();
      return core::ok_status();
    });
    if (!status.has_value()) ++attacks_blocked;
  }
  EXPECT_EQ(attacks_blocked, 3u);
  EXPECT_EQ(replicas.detections(), 6u);  // original + one retry per attack
  // Failed (attack) rounds were rolled back: only benign rounds counted.
  EXPECT_EQ(frontend.processed, 27);
}

// Scenario 4: a checkout workflow whose order-persistence step writes to a
// replicated diverse-engine database with one chaotic replica — the SOA
// layer and the storage layer healing independently.
TEST(Integration, WorkflowOverReplicatedDatabase) {
  using services::Message;

  std::vector<sql::StorePtr> stores;
  stores.push_back(sql::make_vector_store());
  stores.push_back(sql::make_btree_store());
  stores.push_back(sql::make_chaotic_store(
      sql::make_log_store(),
      {.lose_mutation_probability = 0.3, .corrupt_read_probability = 0.3,
       .seed = 77}));
  auto db = std::make_shared<techniques::ReplicatedSqlServer>(
      std::move(stores),
      techniques::ReplicatedSqlServer::Options{.reconcile_every = 8});
  ASSERT_TRUE(db->create_table("orders", {"id", "amount"}).has_value());

  auto persist = services::assign("persist-order", [db](Message m) {
    const auto id = std::get<std::int64_t>(m.at("order"));
    const auto amount = std::get<std::int64_t>(m.at("amount"));
    if (db->insert("orders", {id, amount}).has_value()) {
      m["persisted"] = std::int64_t{1};
    }
    return m;
  });
  auto wf = services::Workflow{"checkout", services::sequence({persist})};

  for (std::int64_t i = 0; i < 100; ++i) {
    auto out = wf.run(Message{{"order", i}, {"amount", i * 10}});
    ASSERT_TRUE(out.has_value());
    ASSERT_TRUE(out.value().contains("persisted")) << "order " << i;
  }
  // Every order is durably present and readable despite the chaotic
  // replica; the liar was eventually evicted.
  auto rows = db->select("orders", std::nullopt);
  ASSERT_TRUE(rows.has_value());
  EXPECT_EQ(rows.value().size(), 100u);
  EXPECT_LE(db->replicas_in_service(), 2u);
}

}  // namespace
}  // namespace redundancy
