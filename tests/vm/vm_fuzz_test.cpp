// Fuzz/property tests: the VM must be *total* — any word soup, any
// arguments, any configuration either terminates with a Behaviour or traps
// with a typed failure; it must never corrupt the host. This is the
// property that makes the VM safe to hand to genetic programming (which
// executes arbitrary mutants) and to attackers (which execute arbitrary
// injected words).
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "vm/assembler.hpp"
#include "vm/vm.hpp"

namespace redundancy::vm {
namespace {

class VmFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmFuzzTest, RandomWordSoupAlwaysTerminates) {
  util::Rng rng{GetParam()};
  VmConfig cfg;
  cfg.memory_words = 256;
  cfg.max_steps = 2000;
  Vm machine{cfg};
  // Fill memory with raw random words — most decode as garbage, some as
  // real instructions with wild operands.
  for (std::size_t a = 0; a < cfg.memory_words; ++a) {
    (void)machine.poke(a, static_cast<std::int64_t>(rng()));
  }
  const std::int64_t args[] = {static_cast<std::int64_t>(rng.below(100)), 7};
  auto out = machine.run(rng.index(cfg.memory_words), args);
  if (!out.has_value()) {
    const auto kind = out.error().kind;
    EXPECT_TRUE(kind == core::FailureKind::crash ||
                kind == core::FailureKind::timeout)
        << out.error().describe();
  }
  EXPECT_LE(machine.steps_executed(), cfg.max_steps + 1);
}

TEST_P(VmFuzzTest, RandomValidProgramsAlwaysTerminate) {
  util::Rng rng{GetParam() * 31 + 5};
  // Programs built from real opcodes with plausible-but-wild operands.
  Program prog;
  prog.name = "fuzz";
  const std::size_t len = 1 + rng.index(40);
  for (std::size_t i = 0; i < len; ++i) {
    const auto op = static_cast<Op>(rng.below(static_cast<std::uint64_t>(Op::count_)));
    std::int64_t operand = 0;
    if (has_operand(op)) operand = rng.between(-8, 300);
    prog.code.push_back({op, operand});
  }
  VmConfig cfg;
  cfg.memory_words = 256;
  cfg.max_steps = 2000;
  const std::int64_t args[] = {3, 4, 5};
  auto out = execute(prog, args, cfg);
  if (!out.has_value()) {
    const auto kind = out.error().kind;
    EXPECT_TRUE(kind == core::FailureKind::crash ||
                kind == core::FailureKind::timeout);
  }
}

TEST_P(VmFuzzTest, PartitionIsNeverEscaped) {
  // Property: under region enforcement, no random program can observe or
  // modify memory outside its partition — stores elsewhere must trap first.
  util::Rng rng{GetParam() * 77 + 1};
  VmConfig cfg;
  cfg.memory_words = 512;
  cfg.max_steps = 2000;
  cfg.region_base = 256;
  cfg.region_words = 128;
  Vm machine{cfg};
  // Plant sentinels outside the partition.
  for (std::size_t a = 0; a < 256; ++a) (void)machine.poke(a, 0x5e471712);
  for (std::size_t a = 384; a < 512; ++a) (void)machine.poke(a, 0x5e471712);
  // Random code inside the partition.
  for (std::size_t a = 256; a < 384; ++a) {
    (void)machine.poke(a, static_cast<std::int64_t>(rng()));
  }
  (void)machine.run(256 + rng.index(128), {});
  for (std::size_t a = 0; a < 256; ++a) {
    ASSERT_EQ(machine.peek(a).value(), 0x5e471712) << "address " << a;
  }
  for (std::size_t a = 384; a < 512; ++a) {
    ASSERT_EQ(machine.peek(a).value(), 0x5e471712) << "address " << a;
  }
}

TEST_P(VmFuzzTest, AssemblerFormatsWhatItParses) {
  // Round-trip property on random (operandless-safe) programs.
  util::Rng rng{GetParam() * 13 + 3};
  Program prog;
  prog.name = "rt";
  const std::size_t len = 1 + rng.index(30);
  for (std::size_t i = 0; i < len; ++i) {
    const auto op =
        static_cast<Op>(rng.below(static_cast<std::uint64_t>(Op::count_)));
    std::int64_t operand = 0;
    if (has_operand(op)) operand = rng.between(0, 1000);
    prog.code.push_back({op, operand});
  }
  auto reparsed = assemble("rt", format(prog));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed.value().code, prog.code);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(VmFuzz, DeterministicReplay) {
  // Property: identical machine + identical inputs => identical behaviour,
  // even for garbage programs (required for replica comparison).
  util::Rng rng{1234};
  for (int trial = 0; trial < 20; ++trial) {
    VmConfig cfg;
    cfg.memory_words = 128;
    cfg.max_steps = 500;
    Vm a{cfg}, b{cfg};
    for (std::size_t addr = 0; addr < cfg.memory_words; ++addr) {
      const auto word = static_cast<std::int64_t>(rng());
      (void)a.poke(addr, word);
      (void)b.poke(addr, word);
    }
    auto ra = a.run(0, {});
    auto rb = b.run(0, {});
    EXPECT_EQ(ra.has_value(), rb.has_value());
    if (ra.has_value()) EXPECT_EQ(ra.value(), rb.value());
  }
}

}  // namespace
}  // namespace redundancy::vm
