#include "vm/vm.hpp"

#include <gtest/gtest.h>

#include "vm/assembler.hpp"

namespace redundancy::vm {
namespace {

Behaviour run_ok(const std::string& src,
                 std::vector<std::int64_t> args = {}) {
  auto prog = assemble("t", src);
  EXPECT_TRUE(prog.has_value()) << (prog ? "" : prog.error().describe());
  auto out = execute(prog.value(), args);
  EXPECT_TRUE(out.has_value()) << (out ? "" : out.error().describe());
  return out.value();
}

core::Failure run_trap(const std::string& src,
                       std::vector<std::int64_t> args = {}) {
  auto prog = assemble("t", src);
  EXPECT_TRUE(prog.has_value());
  auto out = execute(prog.value(), args);
  EXPECT_FALSE(out.has_value());
  return out ? core::failure(core::FailureKind::crash) : out.error();
}

TEST(Vm, Arithmetic) {
  EXPECT_EQ(run_ok("push 6\npush 7\nmul\nhalt").ret, 42);
  EXPECT_EQ(run_ok("push 10\npush 3\nsub\nhalt").ret, 7);
  EXPECT_EQ(run_ok("push 10\npush 3\ndiv\nhalt").ret, 3);
  EXPECT_EQ(run_ok("push 10\npush 3\nmod\nhalt").ret, 1);
  EXPECT_EQ(run_ok("push 5\nneg\nhalt").ret, -5);
}

TEST(Vm, Comparisons) {
  EXPECT_EQ(run_ok("push 2\npush 2\neq\nhalt").ret, 1);
  EXPECT_EQ(run_ok("push 1\npush 2\nlt\nhalt").ret, 1);
  EXPECT_EQ(run_ok("push 1\npush 2\ngt\nhalt").ret, 0);
  EXPECT_EQ(run_ok("push 1\npush 0\nand\nhalt").ret, 0);
  EXPECT_EQ(run_ok("push 1\npush 0\nor\nhalt").ret, 1);
  EXPECT_EQ(run_ok("push 0\nnot\nhalt").ret, 1);
}

TEST(Vm, StackManipulation) {
  EXPECT_EQ(run_ok("push 1\npush 2\nswap\nhalt").ret, 1);
  EXPECT_EQ(run_ok("push 3\ndup\nadd\nhalt").ret, 6);
  EXPECT_EQ(run_ok("push 4\npush 9\nover\nhalt").ret, 4);
  EXPECT_EQ(run_ok("push 1\npush 2\npop\nhalt").ret, 1);
}

TEST(Vm, ArgsAndOutput) {
  auto b = run_ok("arg 0\narg 1\nadd\ndup\nout\nhalt", {20, 22});
  EXPECT_EQ(b.ret, 42);
  ASSERT_EQ(b.output.size(), 1u);
  EXPECT_EQ(b.output[0], 42);
  EXPECT_EQ(run_ok("nargs\nhalt", {1, 2, 3}).ret, 3);
  EXPECT_EQ(run_ok("push 1\nargi\nhalt", {5, 9}).ret, 9);
}

TEST(Vm, ControlFlowJumpsAndLabels) {
  EXPECT_EQ(run_ok("jmp skip\npush 99\nhalt\nskip:\npush 7\nhalt").ret, 7);
  EXPECT_EQ(run_ok("push 0\njz t\npush 1\nhalt\nt:\npush 2\nhalt").ret, 2);
  EXPECT_EQ(run_ok("push 1\njz t\npush 1\nhalt\nt:\npush 2\nhalt").ret, 1);
}

TEST(Vm, ControlFlowCountdownLoop) {
  // Compute sum of 1..arg0 with a memory-resident loop counter.
  const std::string src = R"(
    arg 0
    store 200        ; i = n
    push 0
    store 201        ; acc = 0
  loop:
    load 200
    jz done
    load 201
    load 200
    add
    store 201        ; acc += i
    load 200
    push 1
    sub
    store 200        ; i -= 1
    jmp loop
  done:
    load 201
    halt
  )";
  EXPECT_EQ(run_ok(src, {10}).ret, 55);
  EXPECT_EQ(run_ok(src, {0}).ret, 0);
}

TEST(Vm, MemoryLoadStore) {
  EXPECT_EQ(run_ok("push 123\nstore 500\nload 500\nhalt").ret, 123);
}

TEST(Vm, IndirectMemory) {
  EXPECT_EQ(run_ok("push 77\npusha 700\nstorei\npush 700\nloadi\nhalt").ret,
            77);
}

TEST(Vm, Traps) {
  EXPECT_EQ(run_trap("push 1\npush 0\ndiv\nhalt").kind,
            core::FailureKind::crash);
  EXPECT_EQ(run_trap("pop\nhalt").kind, core::FailureKind::crash);
  EXPECT_EQ(run_trap("arg 5\nhalt", {1}).kind, core::FailureKind::crash);
  EXPECT_EQ(run_trap("push -1\nloadi\nhalt").kind, core::FailureKind::crash);
}

TEST(Vm, StepLimitIsTimeout) {
  VmConfig cfg;
  cfg.max_steps = 100;
  auto prog = assemble("spin", "here:\njmp here\n");
  auto out = execute(prog.value(), {}, cfg);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, core::FailureKind::timeout);
}

TEST(Vm, EmptyStackHaltReturnsZero) {
  EXPECT_EQ(run_ok("halt").ret, 0);
}

TEST(Vm, FallingOffMemoryTraps) {
  // 'nop' then walk into zeroed memory: zeros decode as nop and the pc
  // eventually leaves memory.
  VmConfig cfg;
  cfg.memory_words = 64;
  cfg.max_steps = 1000;
  auto prog = assemble("walk", "nop\n");
  auto out = execute(prog.value(), {}, cfg);
  ASSERT_FALSE(out.has_value());
}

TEST(Vm, TagEnforcementTrapsForeignCode) {
  auto prog = assemble("t", "push 1\nhalt").take();
  VmConfig cfg;
  cfg.enforce_tags = true;
  cfg.expected_tag = 3;
  Vm machine{cfg};
  machine.load(prog, 0, 3);  // correct tag: runs
  EXPECT_TRUE(machine.run(0, {}).has_value());
  machine.reset();
  machine.load(prog, 0, 1);  // wrong tag: traps at the first fetch
  auto out = machine.run(0, {});
  ASSERT_FALSE(out.has_value());
  EXPECT_NE(out.error().detail.find("tag"), std::string::npos);
}

TEST(Vm, RegionEnforcementSegfaults) {
  auto prog =
      assemble("t", "push 42\npush 10\nstorei\nhalt").take();  // abs store @10
  VmConfig cfg;
  cfg.memory_words = 1024;
  cfg.region_base = 512;
  cfg.region_words = 512;
  Vm machine{cfg};
  machine.load(prog, 512, 0);
  auto out = machine.run(512, {});
  ASSERT_FALSE(out.has_value());
  EXPECT_NE(out.error().detail.find("segmentation fault"), std::string::npos);
}

TEST(Vm, RebasedProgramBehavesIdentically) {
  auto prog = assemble("t", "push 5\nstore 100\nload 100\ndup\nout\nhalt").take();
  auto at0 = execute(prog, {});
  Vm machine{VmConfig{.memory_words = 8192}};
  machine.load(prog, 4000, 0);
  auto at4000 = machine.run(4000, {});
  ASSERT_TRUE(at0.has_value());
  ASSERT_TRUE(at4000.has_value());
  EXPECT_EQ(at0.value(), at4000.value());
}

TEST(Vm, PeekPoke) {
  Vm machine{VmConfig{.memory_words = 128}};
  EXPECT_TRUE(machine.poke(100, 7).has_value());
  EXPECT_EQ(machine.peek(100).value(), 7);
  EXPECT_FALSE(machine.poke(1000, 1).has_value());
  EXPECT_FALSE(machine.peek(1000).has_value());
}

TEST(Encoding, RoundTripsAllFields) {
  for (const auto op : {Op::push, Op::jmp, Op::halt, Op::out}) {
    for (const std::int64_t operand : {0LL, 1LL, -1LL, 123456LL, -99999LL}) {
      for (const std::uint8_t tag : {0, 1, 255}) {
        const Decoded d = decode(encode(op, operand, tag));
        ASSERT_TRUE(d.valid);
        EXPECT_EQ(d.op, op);
        EXPECT_EQ(d.operand, operand);
        EXPECT_EQ(d.tag, tag);
      }
    }
  }
}

TEST(Encoding, InvalidOpcodeRejected) {
  const Word garbage = 0x7fffffffffffffffLL;
  EXPECT_FALSE(decode(garbage).valid);
}

TEST(Assembler, RoundTrip) {
  const std::string src = "push 3\npush 4\nadd\nhalt\n";
  auto prog = assemble("rt", src).take();
  EXPECT_EQ(format(prog), src);
}

TEST(Assembler, LabelsAndComments) {
  auto prog = assemble("t", R"(
    ; entry
    push 1
    jnz end    ; forward reference
    push 99
  end:
    halt
  )");
  ASSERT_TRUE(prog.has_value());
  auto out = execute(prog.value(), {});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value().ret, 0);
}

TEST(Assembler, Errors) {
  EXPECT_FALSE(assemble("t", "frobnicate\n").has_value());
  EXPECT_FALSE(assemble("t", "push\n").has_value());        // missing operand
  EXPECT_FALSE(assemble("t", "jmp nowhere\n").has_value()); // unresolved label
  EXPECT_FALSE(assemble("t", "add 3\n").has_value());       // unexpected operand
}

TEST(Program, DisassembleListsInstructions) {
  auto prog = assemble("t", "push 7\nhalt\n").take();
  const auto text = prog.disassemble();
  EXPECT_NE(text.find("push"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
}

TEST(Program, ImageRebasesAddressOperandsOnly) {
  Program prog;
  prog.code = {{Op::push, 5}, {Op::load, 10}, {Op::jmp, 0}};
  const auto image = prog.image(100, 2);
  EXPECT_EQ(decode(image[0]).operand, 5);    // immediates untouched
  EXPECT_EQ(decode(image[1]).operand, 110);  // addresses rebased
  EXPECT_EQ(decode(image[2]).operand, 100);
  EXPECT_EQ(decode(image[0]).tag, 2);
}

}  // namespace
}  // namespace redundancy::vm
