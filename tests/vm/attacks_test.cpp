#include "vm/attacks.hpp"

#include <gtest/gtest.h>

#include "vm/address_space.hpp"
#include "vm/vm.hpp"

namespace redundancy::vm {
namespace {

using L = ServerLayout;

Vm plain_server(std::size_t memory = 1024) {
  Vm machine{VmConfig{.memory_words = memory}};
  machine.load(vulnerable_server(), 0, 0);
  (void)machine.poke(L::secret, kSecretValue);
  return machine;
}

TEST(VulnerableServer, LayoutOffsetsMatchAssembly) {
  const Program server = vulnerable_server();
  // The dispatch targets compiled into the constants must point at the
  // handler and gadget entry instructions.
  ASSERT_GT(server.size(), L::leak_gadget);
  EXPECT_EQ(server.code[L::handler_entry].op, Op::load);
  EXPECT_EQ(server.code[L::handler_entry].operand,
            static_cast<std::int64_t>(L::buffer));
  EXPECT_EQ(server.code[L::leak_gadget].op, Op::load);
  EXPECT_EQ(server.code[L::leak_gadget].operand,
            static_cast<std::int64_t>(L::secret));
  // The fnptr cell sits immediately after the buffer: the overflow target.
  EXPECT_EQ(L::fnptr, L::buffer + L::buffer_cap);
}

TEST(VulnerableServer, BenignRequestSumsPayload) {
  Vm machine = plain_server();
  auto out = machine.run(0, benign_request(19, 23));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value().ret, 42);
  ASSERT_EQ(out.value().output.size(), 1u);
  EXPECT_EQ(out.value().output[0], 42);
}

TEST(VulnerableServer, FullBufferWithoutOverflowIsStillBenign) {
  Vm machine = plain_server();
  Request req{8, 1, 2, 0, 0, 0, 0, 0, 0};  // exactly fills the buffer
  auto out = machine.run(0, req);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value().ret, 3);
}

TEST(AbsoluteAddressAttack, SucceedsAgainstUnprotectedServer) {
  Vm machine = plain_server();
  auto out = machine.run(0, absolute_address_attack(0));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value().ret, kSecretValue);  // secret exfiltrated
}

TEST(CodeInjectionAttack, SucceedsAgainstUnprotectedServer) {
  Vm machine = plain_server();
  auto out = machine.run(0, code_injection_attack(0, 0));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value().ret, kSecretValue);
}

TEST(AbsoluteAddressAttack, SegfaultsInDifferentlyBasedReplica) {
  const auto parts = partition_address_space(4096, 2);
  VmConfig cfg;
  cfg.memory_words = 4096;
  cfg.region_base = parts[1].base;
  cfg.region_words = parts[1].words;
  Vm replica{cfg};
  replica.load(vulnerable_server(), parts[1].base, 0);
  (void)replica.poke(parts[1].base + L::secret, kSecretValue);
  // Attacker assumed replica 0's layout.
  auto out = replica.run(parts[1].base, absolute_address_attack(parts[0].base));
  ASSERT_FALSE(out.has_value());
  EXPECT_NE(out.error().detail.find("segmentation fault"), std::string::npos);
}

TEST(CodeInjectionAttack, TrapsUnderWrongTag) {
  VmConfig cfg;
  cfg.memory_words = 1024;
  cfg.enforce_tags = true;
  cfg.expected_tag = 2;
  Vm replica{cfg};
  replica.load(vulnerable_server(), 0, 2);
  (void)replica.poke(L::secret, kSecretValue);
  auto out = replica.run(0, code_injection_attack(0, /*tag_guess=*/1));
  ASSERT_FALSE(out.has_value());
  EXPECT_NE(out.error().detail.find("tag mismatch"), std::string::npos);
}

TEST(CodeInjectionAttack, CorrectTagGuessBeatsASingleTaggedReplica) {
  // Tagging without replication only helps if the attacker cannot guess the
  // tag; with the right guess the injection still runs — which is why the
  // defense needs N variants with *different* tags.
  VmConfig cfg;
  cfg.memory_words = 1024;
  cfg.enforce_tags = true;
  cfg.expected_tag = 2;
  Vm replica{cfg};
  replica.load(vulnerable_server(), 0, 2);
  (void)replica.poke(L::secret, kSecretValue);
  auto out = replica.run(0, code_injection_attack(0, /*tag_guess=*/2));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value().ret, kSecretValue);
}

TEST(PartitionAddressSpace, DisjointEqualSlices) {
  const auto parts = partition_address_space(1000, 3);
  ASSERT_EQ(parts.size(), 3u);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].words, 333u);
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      EXPECT_FALSE(parts[i].overlaps(parts[j]));
    }
  }
  EXPECT_TRUE(parts[0].contains(0));
  EXPECT_FALSE(parts[0].contains(333));
  EXPECT_TRUE(parts[1].contains(333));
}

TEST(PartitionAddressSpace, ZeroReplicasIsEmpty) {
  EXPECT_TRUE(partition_address_space(100, 0).empty());
}

}  // namespace
}  // namespace redundancy::vm
