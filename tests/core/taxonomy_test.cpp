// Verifies that the taxonomy entries the implementations declare reproduce
// the paper's Table 2 — row order, and all four dimension cells per row.
#include <gtest/gtest.h>

#include "core/registry.hpp"

namespace redundancy::core {
namespace {

struct Row {
  const char* name;
  Intention intention;
  RedundancyType type;
  AdjudicatorKind adjudicator;
  TargetFaults faults;
};

// The published Table 2, transcribed row by row.
constexpr Row kPaperTable2[] = {
    {"N-version programming", Intention::deliberate, RedundancyType::code,
     AdjudicatorKind::reactive_implicit, TargetFaults::development},
    {"Recovery blocks", Intention::deliberate, RedundancyType::code,
     AdjudicatorKind::reactive_explicit, TargetFaults::development},
    {"Self-checking programming", Intention::deliberate, RedundancyType::code,
     AdjudicatorKind::reactive_hybrid, TargetFaults::development},
    {"Self-optimizing code", Intention::deliberate, RedundancyType::code,
     AdjudicatorKind::reactive_explicit, TargetFaults::development},
    {"Exception handling, rule engines", Intention::deliberate,
     RedundancyType::code, AdjudicatorKind::reactive_explicit,
     TargetFaults::development},
    {"Wrappers", Intention::deliberate, RedundancyType::code,
     AdjudicatorKind::preventive, TargetFaults::bohrbugs_and_malicious},
    {"Robust data structures, audits", Intention::deliberate,
     RedundancyType::data, AdjudicatorKind::reactive_implicit,
     TargetFaults::development},
    {"Data diversity", Intention::deliberate, RedundancyType::data,
     AdjudicatorKind::reactive_hybrid, TargetFaults::development},
    {"Data diversity for security", Intention::deliberate,
     RedundancyType::data, AdjudicatorKind::reactive_implicit,
     TargetFaults::malicious},
    {"Rejuvenation", Intention::deliberate, RedundancyType::environment,
     AdjudicatorKind::preventive, TargetFaults::heisenbugs},
    {"Environment perturbation", Intention::deliberate,
     RedundancyType::environment, AdjudicatorKind::reactive_explicit,
     TargetFaults::development},
    {"Process replicas", Intention::deliberate, RedundancyType::environment,
     AdjudicatorKind::reactive_implicit, TargetFaults::malicious},
    {"Dynamic service substitution", Intention::opportunistic,
     RedundancyType::code, AdjudicatorKind::reactive_explicit,
     TargetFaults::development},
    {"Fault fixing, genetic programming", Intention::opportunistic,
     RedundancyType::code, AdjudicatorKind::reactive_explicit,
     TargetFaults::bohrbugs},
    {"Automatic workarounds", Intention::opportunistic, RedundancyType::code,
     AdjudicatorKind::reactive_explicit, TargetFaults::development},
    {"Checkpoint-recovery", Intention::opportunistic,
     RedundancyType::environment, AdjudicatorKind::reactive_explicit,
     TargetFaults::heisenbugs},
    {"Reboot and micro-reboot", Intention::opportunistic,
     RedundancyType::environment, AdjudicatorKind::reactive_explicit,
     TargetFaults::heisenbugs},
};

class Table2Test : public ::testing::Test {
 protected:
  void SetUp() override { register_all_techniques(); }
};

TEST_F(Table2Test, AllSeventeenRowsRegistered) {
  EXPECT_EQ(TechniqueRegistry::instance().size(), std::size(kPaperTable2));
}

TEST_F(Table2Test, RowOrderMatchesPaper) {
  const auto& entries = TechniqueRegistry::instance().entries();
  ASSERT_EQ(entries.size(), std::size(kPaperTable2));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].name, kPaperTable2[i].name) << "row " << i;
  }
}

TEST_F(Table2Test, EveryCellMatchesPaper) {
  for (const Row& row : kPaperTable2) {
    auto entry = TechniqueRegistry::instance().find(row.name);
    ASSERT_TRUE(entry.has_value()) << row.name;
    EXPECT_EQ(entry->intention, row.intention) << row.name;
    EXPECT_EQ(entry->type, row.type) << row.name;
    EXPECT_EQ(entry->adjudicator, row.adjudicator) << row.name;
    EXPECT_EQ(entry->faults, row.faults) << row.name;
    EXPECT_FALSE(entry->summary.empty()) << row.name;
  }
}

TEST_F(Table2Test, RegistrationIsIdempotent) {
  register_all_techniques();
  register_all_techniques();
  EXPECT_EQ(TechniqueRegistry::instance().size(), std::size(kPaperTable2));
}

TEST_F(Table2Test, FindUnknownReturnsNullopt) {
  EXPECT_FALSE(TechniqueRegistry::instance().find("no such technique"));
}

TEST(Table1, DimensionsMatchPaper) {
  const auto dims = table1_dimensions();
  EXPECT_EQ(dims.intentions, (std::vector<std::string>{"deliberate",
                                                       "opportunistic"}));
  EXPECT_EQ(dims.types,
            (std::vector<std::string>{"code", "data", "environment"}));
  EXPECT_EQ(dims.adjudicators.size(), 3u);
  EXPECT_EQ(dims.faults.size(), 3u);
}

TEST(TaxonomyNames, PaperCellsRenderLikeTheTable) {
  EXPECT_EQ(paper_cell(AdjudicatorKind::reactive_hybrid),
            "reactive expl./impl.");
  EXPECT_EQ(paper_cell(TargetFaults::bohrbugs_and_malicious),
            "Bohrbugs, malicious");
  EXPECT_EQ(to_string(Intention::opportunistic), "opportunistic");
  EXPECT_EQ(to_string(ArchitecturalPattern::parallel_evaluation),
            "parallel evaluation");
}

}  // namespace
}  // namespace redundancy::core
