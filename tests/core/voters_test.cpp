#include "core/voters.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace redundancy::core {
namespace {

template <typename Out>
std::vector<Ballot<Out>> make_ballots(std::vector<Result<Out>> results) {
  std::vector<Ballot<Out>> ballots;
  for (std::size_t i = 0; i < results.size(); ++i) {
    ballots.push_back({i, "v" + std::to_string(i), std::move(results[i])});
  }
  return ballots;
}

Result<int> crash() { return failure(FailureKind::crash); }

TEST(MajorityVoter, UnanimousWins) {
  auto v = majority_voter<int>();
  auto out = v(make_ballots<int>({7, 7, 7}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 7);
}

TEST(MajorityVoter, TwoOfThreeWins) {
  auto v = majority_voter<int>();
  auto out = v(make_ballots<int>({7, 9, 7}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 7);
}

TEST(MajorityVoter, FailedBallotsCountAgainstQuorum) {
  auto v = majority_voter<int>();
  // 2 agreeing out of 5 total: not a strict majority of N.
  auto out = v(make_ballots<int>({7, 7, crash(), crash(), crash()}));
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, FailureKind::adjudication_failed);
}

TEST(MajorityVoter, ThreeWayDisagreementFails) {
  auto v = majority_voter<int>();
  auto out = v(make_ballots<int>({1, 2, 3}));
  EXPECT_FALSE(out.has_value());
}

TEST(MajorityVoter, EmptyFails) {
  auto v = majority_voter<int>();
  EXPECT_FALSE(v({}).has_value());
}

// Property: with N = 2k+1 versions and exactly f wrong (distinct) answers,
// the majority voter succeeds iff f <= k.
class MajorityToleranceTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(MajorityToleranceTest, ToleratesUpToKFaults) {
  const auto [k, f_raw] = GetParam();
  const std::size_t n = 2 * k + 1;
  const std::size_t f = std::min(f_raw, n);  // at most every version faulty
  std::vector<Result<int>> results;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < f) {
      results.emplace_back(1000 + static_cast<int>(i));  // distinct wrong
    } else {
      results.emplace_back(42);
    }
  }
  auto out = majority_voter<int>()(make_ballots<int>(std::move(results)));
  if (f <= k) {
    ASSERT_TRUE(out.has_value()) << "k=" << k << " f=" << f;
    EXPECT_EQ(out.value(), 42);
  } else {
    // Beyond the 2k+1 bound the vote must not elect the correct value; with
    // distinct wrong answers it can only fail — or, degenerately (n=1,
    // f=1), elect a wrong one.
    EXPECT_TRUE(!out.has_value() || out.value() != 42)
        << "k=" << k << " f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MajorityToleranceTest,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u, 4u),
                       ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u)));

TEST(PluralityVoter, LargestGroupWins) {
  auto v = plurality_voter<int>();
  auto out = v(make_ballots<int>({5, 5, 9, 3}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 5);
}

TEST(PluralityVoter, TieFails) {
  auto v = plurality_voter<int>();
  EXPECT_FALSE(v(make_ballots<int>({5, 5, 9, 9})).has_value());
}

TEST(PluralityVoter, IgnoresFailuresInDenominator) {
  auto v = plurality_voter<int>();
  // Plurality (unlike majority) only looks at produced values.
  auto out = v(make_ballots<int>({7, 7, crash(), crash(), crash()}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 7);
}

TEST(PluralityVoter, AllFailedFails) {
  auto v = plurality_voter<int>();
  EXPECT_FALSE(v(make_ballots<int>({crash(), crash()})).has_value());
}

TEST(UnanimityVoter, AgreementPasses) {
  auto v = unanimity_voter<int>();
  auto out = v(make_ballots<int>({4, 4, 4}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 4);
}

TEST(UnanimityVoter, AnyDivergenceIsDetectedAttack) {
  auto v = unanimity_voter<int>();
  auto out = v(make_ballots<int>({4, 4, 5}));
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, FailureKind::detected_attack);
}

TEST(UnanimityVoter, AnyFailureIsDetectedAttack) {
  auto v = unanimity_voter<int>();
  auto out = v(make_ballots<int>({4, crash(), 4}));
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, FailureKind::detected_attack);
}

TEST(MedianVoter, PicksMedianOfSuccesses) {
  auto v = median_voter<int>();
  auto out = v(make_ballots<int>({10, 2, 99}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 10);
}

TEST(MedianVoter, SkipsFailures) {
  auto v = median_voter<int>();
  auto out = v(make_ballots<int>({crash(), 8, crash()}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 8);
}

TEST(WeightedVoter, WeightsDecide) {
  auto v = weighted_voter<int>({5.0, 1.0, 1.0});
  auto out = v(make_ballots<int>({1, 2, 2}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 1);  // one heavy supporter beats two light ones
}

TEST(WeightedVoter, MajorityRequirementEnforced) {
  auto v = weighted_voter<int>({1.0, 1.0, 1.0, 1.0}, /*require_majority=*/true);
  // 2 of weight-4 total agree: exactly half, not a strict majority.
  EXPECT_FALSE(v(make_ballots<int>({1, 1, 2, 3})).has_value());
}

// Property sweep over random ballot sets: the fundamental voter contracts
// hold for any input.
class VoterPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VoterPropertyTest, ContractsHoldOnRandomBallots) {
  util::Rng rng{GetParam()};
  const std::size_t n = 1 + rng.index(9);
  std::vector<Ballot<int>> ballots;
  std::vector<int> values;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.2)) {
      ballots.push_back({i, "v", crash()});
    } else {
      const int v = static_cast<int>(rng.below(4));
      ballots.push_back({i, "v", Result<int>{v}});
      values.push_back(v);
    }
  }
  auto support = [&values](int v) {
    return static_cast<std::size_t>(
        std::count(values.begin(), values.end(), v));
  };
  // Majority: an elected value must have strict-majority support of N.
  if (auto out = majority_voter<int>()(ballots); out.has_value()) {
    EXPECT_GT(2 * support(out.value()), n);
  } else {
    // And conversely: no value may have had majority support.
    for (int v = 0; v < 4; ++v) EXPECT_LE(2 * support(v), n);
  }
  // Plurality: an elected value has at least as much support as any other.
  if (auto out = plurality_voter<int>()(ballots); out.has_value()) {
    for (int v = 0; v < 4; ++v) {
      EXPECT_GE(support(out.value()), support(v));
    }
  }
  // Unanimity: succeeds iff no failures and all values equal.
  const bool all_equal =
      values.size() == n &&
      std::all_of(values.begin(), values.end(),
                  [&values](int v) { return v == values.front(); });
  EXPECT_EQ(unanimity_voter<int>()(ballots).has_value(), all_equal && n > 0);
  // Median: elected value is one of the submitted values.
  if (auto out = median_voter<int>()(ballots); out.has_value()) {
    EXPECT_NE(std::find(values.begin(), values.end(), out.value()),
              values.end());
  } else {
    EXPECT_TRUE(values.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VoterPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(ApproxEq, ToleratesRelativeError) {
  ApproxEq eq{1e-6};
  EXPECT_TRUE(eq(1'000'000.0, 1'000'000.5));
  EXPECT_FALSE(eq(1.0, 1.1));
}

TEST(MajorityVoter, ApproxEqualityGroupsNeighbours) {
  auto v = majority_voter<double>(ApproxEq{1e-9});
  auto out = v(make_ballots<double>({3.14159265358979, 3.141592653589791, 0.0}));
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(out.value(), 3.14159265358979, 1e-9);
}

}  // namespace
}  // namespace redundancy::core
