#include "core/result.hpp"

#include <gtest/gtest.h>

namespace redundancy::core {
namespace {

TEST(Result, SuccessHoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, FailureHoldsFailure) {
  Result<int> r = failure(FailureKind::timeout, "too slow");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().kind, FailureKind::timeout);
  EXPECT_EQ(r.error().detail, "too slow");
}

TEST(Result, ValueOnFailureThrows) {
  Result<int> r = failure(FailureKind::crash);
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(Result, ErrorOnSuccessThrows) {
  Result<int> r{1};
  EXPECT_THROW((void)r.error(), std::logic_error);
}

TEST(Result, ValueOr) {
  Result<int> ok{5};
  Result<int> bad = failure(FailureKind::crash);
  EXPECT_EQ(ok.value_or(9), 5);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(Result, MapTransformsSuccess) {
  Result<int> r{10};
  auto doubled = r.map([](const int& v) { return v * 2; });
  ASSERT_TRUE(doubled.has_value());
  EXPECT_EQ(doubled.value(), 20);
}

TEST(Result, MapPropagatesFailure) {
  Result<int> r = failure(FailureKind::unavailable, "gone");
  auto mapped = r.map([](const int& v) { return v * 2; });
  ASSERT_FALSE(mapped.has_value());
  EXPECT_EQ(mapped.error().kind, FailureKind::unavailable);
}

TEST(Result, AndThenChains) {
  Result<int> r{4};
  auto chained = r.and_then([](const int& v) -> Result<std::string> {
    if (v > 0) return std::string(static_cast<std::size_t>(v), 'x');
    return failure(FailureKind::wrong_output);
  });
  ASSERT_TRUE(chained.has_value());
  EXPECT_EQ(chained.value(), "xxxx");
}

TEST(Result, AndThenShortCircuits) {
  Result<int> r = failure(FailureKind::crash);
  bool called = false;
  auto chained = r.and_then([&called](const int&) -> Result<int> {
    called = true;
    return 1;
  });
  EXPECT_FALSE(chained.has_value());
  EXPECT_FALSE(called);
}

TEST(Result, EqualityComparesValuesAndKinds) {
  EXPECT_EQ(Result<int>{3}, Result<int>{3});
  EXPECT_NE(Result<int>{3}, Result<int>{4});
  EXPECT_EQ((Result<int>{failure(FailureKind::crash, "a")}),
            (Result<int>{failure(FailureKind::crash, "b")}));
  EXPECT_NE((Result<int>{failure(FailureKind::crash)}),
            (Result<int>{failure(FailureKind::timeout)}));
  EXPECT_NE(Result<int>{3}, (Result<int>{failure(FailureKind::crash)}));
}

TEST(Result, TakeMovesValueOut) {
  Result<std::string> r{std::string{"payload"}};
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "payload");
}

TEST(Failure, DescribeIncludesKindDetailAndCause) {
  const Failure f = failure(FailureKind::crash, "boom", FaultClass::heisenbug);
  const std::string d = f.describe();
  EXPECT_NE(d.find("crash"), std::string::npos);
  EXPECT_NE(d.find("boom"), std::string::npos);
  EXPECT_NE(d.find("Heisenbug"), std::string::npos);
}

TEST(Status, OkStatus) {
  EXPECT_TRUE(ok_status().has_value());
}

TEST(FailureKindNames, AllDistinct) {
  EXPECT_EQ(to_string(FailureKind::wrong_output), "wrong_output");
  EXPECT_EQ(to_string(FailureKind::adjudication_failed), "adjudication_failed");
  EXPECT_EQ(to_string(FaultClass::bohrbug), "Bohrbug");
  EXPECT_EQ(to_string(FaultClass::malicious), "malicious");
}

}  // namespace
}  // namespace redundancy::core
