// core::RedundancyCache — storage, admission, invalidation, single-flight
// coalescing, and the allocation-free hit guarantee the patterns rely on.
//
// Every test uses its own cache instance with a unique metrics label:
// cache.* counters live in the process-wide obs::MetricsRegistry, so a
// shared label would bleed totals between tests. stats() deltas are
// asserted against a snapshot taken at cache construction.
#include "core/redundancy_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/cache_epoch.hpp"
#include "util/thread_pool.hpp"

// Thread-local allocation counter threaded through global operator new. It
// only counts (no behavioural change), so it is safe for the whole test
// binary; sanitizer builds interpose their own allocator, so the
// allocation-free assertions are skipped there.
namespace {
thread_local std::uint64_t g_allocs = 0;
}  // namespace

// GCC pattern-matches new/free pairs across these replacement definitions
// and reports a spurious mismatch; every path here is malloc/free.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define REDUNDANCY_ALLOC_COUNTING_UNRELIABLE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define REDUNDANCY_ALLOC_COUNTING_UNRELIABLE 1
#endif
#endif

namespace redundancy::core {
namespace {

using Cache = RedundancyCache<int>;

CacheConfig config(std::string label, std::size_t capacity = 64,
                   std::size_t shards = 1) {
  CacheConfig c;
  c.capacity = capacity;
  c.shards = shards;
  c.label = std::move(label);
  return c;
}

TEST(RedundancyCache, MissRunsOnceThenHits) {
  Cache cache{config("rc_miss_hit")};
  std::atomic<int> runs{0};
  for (int i = 0; i < 5; ++i) {
    auto r = cache.get_or_run(7, [&]() -> Result<int> {
      ++runs;
      return 42;
    });
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r.value(), 42);
  }
  if (kCacheCompiledIn) {
    EXPECT_EQ(runs.load(), 1);
    const auto s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 4u);
    EXPECT_EQ(s.admits, 1u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_DOUBLE_EQ(s.hit_rate(), 0.8);
  } else {
    EXPECT_EQ(runs.load(), 5);  // stub always executes
  }
}

TEST(RedundancyCache, LookupAndStoreRoundTrip) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  Cache cache{config("rc_roundtrip")};
  EXPECT_FALSE(cache.lookup(1).has_value());
  cache.store(1, Result<int>{10});
  auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value(), 10);
  // Refresh overwrites in place.
  cache.store(1, Result<int>{11});
  EXPECT_EQ(cache.lookup(1)->value(), 11);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RedundancyCache, FailuresAreNotCachedByDefault) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  Cache cache{config("rc_fail_nocache")};
  int runs = 0;
  for (int i = 0; i < 3; ++i) {
    auto r = cache.get_or_run(9, [&]() -> Result<int> {
      ++runs;
      return failure(FailureKind::timeout, "transient");
    });
    EXPECT_FALSE(r.has_value());
  }
  // A transient fault must be retried by the next request.
  EXPECT_EQ(runs, 3);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RedundancyCache, FailuresCachedWhenOptedIn) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  auto cfg = config("rc_fail_cache");
  cfg.cache_failures = true;
  Cache cache{cfg};
  int runs = 0;
  for (int i = 0; i < 3; ++i) {
    auto r = cache.get_or_run(9, [&]() -> Result<int> {
      ++runs;
      return failure(FailureKind::wrong_output, "deterministic");
    });
    ASSERT_FALSE(r.has_value());
    EXPECT_EQ(r.error().kind, FailureKind::wrong_output);
  }
  EXPECT_EQ(runs, 1);  // the negative verdict memoizes too
}

TEST(RedundancyCache, TtlExpiresEntries) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  auto cfg = config("rc_ttl");
  cfg.ttl_ns = 2'000'000;  // 2ms
  Cache cache{cfg};
  cache.store(5, Result<int>{50});
  EXPECT_TRUE(cache.lookup(5).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(cache.lookup(5).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(RedundancyCache, InvalidateAllStrandsEveryEntry) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  Cache cache{config("rc_inval_local")};
  cache.store(1, Result<int>{10});
  cache.store(2, Result<int>{20});
  cache.invalidate_all();
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_EQ(cache.stats().invalidations, 2u);
  // Refill under the new epoch works.
  cache.store(1, Result<int>{100});
  EXPECT_EQ(cache.lookup(1)->value(), 100);
}

TEST(RedundancyCache, GlobalEpochAdvanceStrandsEveryCache) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  Cache a{config("rc_inval_global_a")};
  Cache b{config("rc_inval_global_b")};
  a.store(1, Result<int>{10});
  b.store(1, Result<int>{11});
  // The restart signal rejuvenation/microreboot emit.
  advance_cache_epoch();
  EXPECT_FALSE(a.lookup(1).has_value());
  EXPECT_FALSE(b.lookup(1).has_value());
}

TEST(RedundancyCache, ClearDropsEntriesEagerly) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  Cache cache{config("rc_clear")};
  cache.store(1, Result<int>{10});
  cache.store(2, Result<int>{20});
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(1).has_value());
}

TEST(RedundancyCache, TinyLfuAdmissionProtectsTheHotSet) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  // One shard, capacity 2: hot keys A and B each requested three times, so
  // the sketch knows them; a one-hit-wonder scan must not displace them.
  Cache cache{config("rc_tinylfu", /*capacity=*/2, /*shards=*/1)};
  int runs_a = 0;
  for (int round = 0; round < 3; ++round) {
    (void)cache.get_or_run(100, [&]() -> Result<int> {
      ++runs_a;
      return 1;
    });
    (void)cache.get_or_run(200, [&]() -> Result<int> { return 2; });
  }
  const auto before = cache.stats();
  // Scan of cold keys, each seen exactly once.
  for (std::uint64_t key = 1000; key < 1032; ++key) {
    (void)cache.get_or_run(key, [&]() -> Result<int> { return 3; });
  }
  const auto after = cache.stats();
  EXPECT_GE(after.rejects, before.rejects + 30);  // the scan bounced off
  // The hot set survived: A still answers from cache.
  (void)cache.get_or_run(100, [&]() -> Result<int> {
    ++runs_a;
    return 1;
  });
  EXPECT_EQ(runs_a, 1);
}

TEST(RedundancyCache, RepeatedlyRequestedKeyEventuallyDisplacesVictim) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  Cache cache{config("rc_admit_hot", /*capacity=*/2, /*shards=*/1)};
  for (int round = 0; round < 2; ++round) {
    (void)cache.get_or_run(100, [&]() -> Result<int> { return 1; });
    (void)cache.get_or_run(200, [&]() -> Result<int> { return 2; });
  }
  // A newcomer requested more often than the LRU victim wins the duel.
  int runs_c = 0;
  for (int i = 0; i < 8; ++i) {
    (void)cache.get_or_run(300, [&]() -> Result<int> {
      ++runs_c;
      return 3;
    });
  }
  EXPECT_LT(runs_c, 8);  // admitted at some point, then served from cache
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);  // capacity invariant held throughout
}

TEST(RedundancyCache, ShardCountRoundsToPowerOfTwo) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  Cache cache{config("rc_shards", /*capacity=*/1024, /*shards=*/5)};
  EXPECT_EQ(cache.shard_count(), 8u);
  // Tiny caches collapse to one shard rather than shards with capacity 0.
  Cache tiny{config("rc_shards_tiny", /*capacity=*/2, /*shards=*/16)};
  EXPECT_EQ(tiny.shard_count(), 1u);
}

TEST(RedundancyCache, SingleFlightCoalescesConcurrentMisses) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  Cache cache{config("rc_coalesce")};
  std::atomic<int> runs{0};
  std::atomic<int> correct{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto r = cache.get_or_run(77, [&]() -> Result<int> {
        ++runs;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return 7;
      });
      if (r.has_value() && r.value() == 7) ++correct;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(runs.load(), 1);  // one leader; everyone else coalesced or hit
  EXPECT_EQ(correct.load(), kThreads);
  // Each request counts exactly one hit-or-miss at lookup; a coalesced
  // waiter is a miss that then shared the leader's run.
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads);
  EXPECT_EQ(s.hits + s.coalesced, kThreads - 1);
}

TEST(RedundancyCache, CoalescingOffRunsEveryRequest) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  auto cfg = config("rc_nocoalesce");
  cfg.coalesce = false;
  cfg.cache_failures = false;
  Cache cache{cfg};
  std::atomic<int> runs{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      (void)cache.get_or_run(5, [&]() -> Result<int> {
        ++runs;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return failure(FailureKind::timeout, "never stored");
      });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(runs.load(), 4);
}

TEST(RedundancyCache, CancelledWaiterLeavesWithoutTheVerdict) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  Cache cache{config("rc_cancel")};
  std::atomic<bool> leader_in{false};
  std::atomic<bool> release_leader{false};

  std::thread leader([&] {
    (void)cache.get_or_run(33, [&]() -> Result<int> {
      leader_in = true;
      while (!release_leader) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return 3;
    });
  });
  while (!leader_in) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  util::CancellationToken token;
  std::atomic<bool> waiter_back{false};
  std::thread waiter([&] {
    auto r = cache.get_or_run(33, token, [&]() -> Result<int> {
      ADD_FAILURE() << "waiter must not become a second leader";
      return -1;
    });
    EXPECT_FALSE(r.has_value());
    EXPECT_EQ(r.error().kind, FailureKind::unavailable);
    waiter_back = true;
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(waiter_back);  // parked on the flight latch
  token.cancel();
  waiter.join();  // returns promptly with the unavailable verdict
  EXPECT_FALSE(release_leader);

  release_leader = true;
  leader.join();
  // The flight still settled: the verdict is cached for later requests.
  auto hit = cache.lookup(33);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value(), 3);
}

TEST(RedundancyCache, LeaderExceptionReleasesWaiters) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  Cache cache{config("rc_throw")};
  std::atomic<bool> leader_in{false};
  std::atomic<bool> release{false};

  std::thread leader([&] {
    EXPECT_THROW(
        (void)cache.get_or_run(44,
                               [&]() -> Result<int> {
                                 leader_in = true;
                                 while (!release) {
                                   std::this_thread::sleep_for(
                                       std::chrono::milliseconds(1));
                                 }
                                 throw std::runtime_error{"variant blew up"};
                               }),
        std::runtime_error);
  });
  while (!leader_in) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::thread waiter([&] {
    auto r = cache.get_or_run(44, [&]() -> Result<int> { return -1; });
    // Either the settled crash verdict (parked before the throw) or a fresh
    // leader run after the flight retired — never a hang.
    if (!r.has_value()) {
      EXPECT_EQ(r.error().kind, FailureKind::crash);
    } else {
      EXPECT_EQ(r.value(), -1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  release = true;
  leader.join();
  waiter.join();
}

TEST(RedundancyCache, HitPathPerformsZeroHeapAllocations) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
#ifdef REDUNDANCY_ALLOC_COUNTING_UNRELIABLE
  GTEST_SKIP() << "sanitizer build interposes the allocator";
#else
  Cache cache{config("rc_allocfree")};
  // Warm: the fill allocates (map node, LRU node) — that is the miss path.
  (void)cache.get_or_run(21, [&]() -> Result<int> { return 12; });
  (void)cache.get_or_run(21, [&]() -> Result<int> { return 12; });  // warm hit

  const std::uint64_t before = g_allocs;
  for (int i = 0; i < 100; ++i) {
    auto r = cache.get_or_run(21, [&]() -> Result<int> { return 12; });
    ASSERT_TRUE(r.has_value());
  }
  EXPECT_EQ(g_allocs - before, 0u)
      << "cache-hit requests must not touch the heap";
#endif
}

}  // namespace
}  // namespace redundancy::core
