// core::HealthTracker: adjudication verdicts fold into the three-state
// per-technique health signal behind GET /healthz.
#include "core/health.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "obs/event.hpp"

namespace redundancy::core {
namespace {

obs::AdjudicationEvent verdict(const std::string& technique, bool accepted,
                               std::size_t ballots_failed = 0,
                               std::size_t stragglers = 0) {
  obs::AdjudicationEvent e;
  e.technique = technique;
  e.electorate = 3;
  e.ballots_seen = 3 - stragglers;
  e.ballots_failed = ballots_failed;
  e.accepted = accepted;
  e.verdict = accepted ? "ok" : "no majority";
  e.stragglers_cancelled = stragglers;
  return e;
}

TEST(HealthTracker, UnknownUntilFirstVerdict) {
  HealthTracker tracker;
  EXPECT_EQ(tracker.technique("nvp").state, HealthState::unknown);
  EXPECT_EQ(tracker.overall(), HealthState::unknown);
  EXPECT_EQ(tracker.healthz_text(), "status: unknown\n");
}

TEST(HealthTracker, CleanAcceptsAreOk) {
  HealthTracker tracker;
  for (int i = 0; i < 5; ++i) tracker.observe(verdict("nvp", true));
  const TechniqueHealth h = tracker.technique("nvp");
  EXPECT_EQ(h.state, HealthState::ok);
  EXPECT_EQ(h.window, 5u);
  EXPECT_EQ(h.accepted, 5u);
  EXPECT_EQ(h.masked, 0u);
  EXPECT_EQ(h.rejected, 0u);
  EXPECT_EQ(tracker.overall(), HealthState::ok);
}

TEST(HealthTracker, MaskingFailedBallotsIsDegraded) {
  HealthTracker tracker;
  tracker.observe(verdict("nvp", true));
  tracker.observe(verdict("nvp", true, /*ballots_failed=*/1));
  const TechniqueHealth h = tracker.technique("nvp");
  EXPECT_EQ(h.state, HealthState::degraded);
  EXPECT_EQ(h.masked, 1u);
  EXPECT_EQ(h.accepted, 2u);
}

TEST(HealthTracker, RejectionIsFailingAndDominatesOverall) {
  HealthTracker tracker;
  tracker.observe(verdict("nvp", true));
  tracker.observe(verdict("recovery_blocks", true, 1));
  tracker.observe(verdict("self_checking", false, 3));
  EXPECT_EQ(tracker.technique("nvp").state, HealthState::ok);
  EXPECT_EQ(tracker.technique("recovery_blocks").state,
            HealthState::degraded);
  EXPECT_EQ(tracker.technique("self_checking").state, HealthState::failing);
  EXPECT_EQ(tracker.overall(), HealthState::failing);
}

TEST(HealthTracker, WindowEvictionLetsHealthRecover) {
  HealthTracker tracker{4};
  tracker.observe(verdict("nvp", false, 3));
  EXPECT_EQ(tracker.technique("nvp").state, HealthState::failing);
  for (int i = 0; i < 3; ++i) tracker.observe(verdict("nvp", true));
  // Rejection still inside the 4-verdict window.
  EXPECT_EQ(tracker.technique("nvp").state, HealthState::failing);
  tracker.observe(verdict("nvp", true));
  // Window slid past the rejection; only clean accepts remain.
  const TechniqueHealth h = tracker.technique("nvp");
  EXPECT_EQ(h.state, HealthState::ok);
  EXPECT_EQ(h.window, 4u);
  EXPECT_EQ(h.accepted, 4u);
  EXPECT_EQ(h.rejected, 0u);
}

TEST(HealthTracker, StragglerCountsAgeOutWithTheWindow) {
  HealthTracker tracker{2};
  tracker.observe(verdict("nvp", true, 0, /*stragglers=*/2));
  tracker.observe(verdict("nvp", true, 0, 1));
  EXPECT_EQ(tracker.technique("nvp").stragglers_cancelled, 3u);
  tracker.observe(verdict("nvp", true));
  EXPECT_EQ(tracker.technique("nvp").stragglers_cancelled, 1u);
}

TEST(HealthTracker, SnapshotIsSortedAndHealthzTextListsEveryTechnique) {
  HealthTracker tracker;
  tracker.observe(verdict("self_checking", true));
  tracker.observe(verdict("nvp", true, 1));
  const auto snap = tracker.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "nvp");
  EXPECT_EQ(snap[1].first, "self_checking");

  const std::string text = tracker.healthz_text();
  EXPECT_EQ(text.rfind("status: degraded\n", 0), 0u);
  EXPECT_NE(text.find("nvp: degraded window=1 accepted=1 masked=1 "
                      "rejected=0 stragglers_cancelled=0 error_rate=0.0000 "
                      "since_transition_ms="),
            std::string::npos);
  EXPECT_NE(text.find("self_checking: ok window=1"), std::string::npos);
}

TEST(HealthTracker, ErrorRateAndTransitionTimestampTrackTheWindow) {
  HealthTracker tracker{4};
  tracker.observe(verdict("nvp", true));
  const TechniqueHealth ok = tracker.technique("nvp");
  EXPECT_DOUBLE_EQ(ok.error_rate, 0.0);
  EXPECT_NE(ok.last_transition_ns, 0u);  // unknown -> ok is a transition

  tracker.observe(verdict("nvp", false, 3));
  const TechniqueHealth failing = tracker.technique("nvp");
  EXPECT_EQ(failing.state, HealthState::failing);
  EXPECT_DOUBLE_EQ(failing.error_rate, 0.5);  // 1 rejected of window 2
  EXPECT_GE(failing.last_transition_ns, ok.last_transition_ns);

  // A verdict that does not change the derived state keeps the timestamp.
  tracker.observe(verdict("nvp", false, 3));
  EXPECT_EQ(tracker.technique("nvp").last_transition_ns,
            failing.last_transition_ns);
}

TEST(HealthTracker, WindowFromEnvStrictParse) {
  // Valid: the window narrows to 2 verdicts.
  ASSERT_EQ(setenv("REDUNDANCY_HEALTH_WINDOW", "2", 1), 0);
  {
    HealthTracker tracker;
    tracker.observe(verdict("nvp", false, 3));
    tracker.observe(verdict("nvp", true));
    tracker.observe(verdict("nvp", true));
    // Default window (64) would still hold the rejection.
    EXPECT_EQ(tracker.technique("nvp").state, HealthState::ok);
  }
  // Malformed values fall back (loudly) to the default 64.
  for (const char* bad : {"0", "-3", "2x", "", "9999999999"}) {
    ASSERT_EQ(setenv("REDUNDANCY_HEALTH_WINDOW", bad, 1), 0);
    HealthTracker tracker;
    tracker.observe(verdict("nvp", false, 3));
    for (int i = 0; i < 3; ++i) tracker.observe(verdict("nvp", true));
    EXPECT_EQ(tracker.technique("nvp").state, HealthState::failing)
        << "env value '" << bad << "' should fall back to window 64";
  }
  ASSERT_EQ(unsetenv("REDUNDANCY_HEALTH_WINDOW"), 0);
}

TEST(HealthTracker, ActsAsTraceSinkAndResets) {
  HealthTracker tracker;
  obs::TraceSink& sink = tracker;
  sink.on_adjudication(verdict("nvp", false, 2));
  sink.on_span(obs::SpanRecord{});  // ignored
  EXPECT_EQ(tracker.technique("nvp").state, HealthState::failing);
  tracker.reset();
  EXPECT_EQ(tracker.technique("nvp").state, HealthState::unknown);
  EXPECT_EQ(tracker.overall(), HealthState::unknown);
}

}  // namespace
}  // namespace redundancy::core
