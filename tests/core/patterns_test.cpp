#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/parallel_evaluation.hpp"
#include "core/parallel_selection.hpp"
#include "core/sequential_alternatives.hpp"
#include "util/thread_pool.hpp"

namespace redundancy::core {
namespace {

Variant<int, int> good(std::string name, int delta = 0) {
  return make_variant<int, int>(
      std::move(name), [delta](const int& x) -> Result<int> {
        return x * 2 + delta;
      });
}

Variant<int, int> crashing(std::string name) {
  return make_variant<int, int>(std::move(name), [](const int&) -> Result<int> {
    return failure(FailureKind::crash);
  });
}

// --- Figure 1(a): parallel evaluation -------------------------------------

TEST(ParallelEvaluation, MasksMinorityFailure) {
  ParallelEvaluation<int, int> pe{{good("a"), crashing("b"), good("c")},
                                  majority_voter<int>()};
  auto out = pe.run(10);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 20);
  EXPECT_EQ(pe.metrics().recoveries, 1u);
  EXPECT_EQ(pe.metrics().variant_executions, 3u);
  EXPECT_EQ(pe.metrics().variant_failures, 1u);
}

TEST(ParallelEvaluation, MasksMinorityWrongOutput) {
  ParallelEvaluation<int, int> pe{{good("a"), good("b", 5), good("c")},
                                  majority_voter<int>()};
  auto out = pe.run(1);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 2);
}

TEST(ParallelEvaluation, MajorityWrongDefeatsVoting) {
  // Identical-and-wrong consensus: the voting danger the Knight-Leveson
  // experiment warned about.
  ParallelEvaluation<int, int> pe{{good("a", 5), good("b", 5), good("c")},
                                  majority_voter<int>()};
  auto out = pe.run(1);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 7);  // the wrong answer wins the vote
}

TEST(ParallelEvaluation, AllVariantsAlwaysExecute) {
  ParallelEvaluation<int, int> pe{{good("a"), good("b"), good("c")},
                                  majority_voter<int>()};
  for (int i = 0; i < 10; ++i) (void)pe.run(i);
  EXPECT_EQ(pe.metrics().variant_executions, 30u);
  EXPECT_EQ(pe.metrics().requests, 10u);
  EXPECT_DOUBLE_EQ(pe.metrics().executions_per_request(), 3.0);
}

TEST(ParallelEvaluation, ThreadedModeMatchesSequential) {
  std::vector<Variant<int, int>> vs{good("a"), good("b"), good("c")};
  ParallelEvaluation<int, int> seq{vs, majority_voter<int>(),
                                   Concurrency::sequential};
  ParallelEvaluation<int, int> thr{vs, majority_voter<int>(),
                                   Concurrency::threaded};
  for (int i = 0; i < 50; ++i) {
    auto a = seq.run(i);
    auto b = thr.run(i);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a.value(), b.value());
  }
}

TEST(ParallelEvaluation, ThreadedMasksMinorityFailure) {
  ParallelEvaluation<int, int> pe{{good("a"), crashing("b"), good("c")},
                                  majority_voter<int>(),
                                  Concurrency::threaded};
  auto out = pe.run(10);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 20);
  EXPECT_EQ(pe.metrics().recoveries, 1u);
  EXPECT_EQ(pe.metrics().variant_executions, 3u);
  EXPECT_EQ(pe.metrics().variant_failures, 1u);
}

TEST(ParallelEvaluation, IncrementalMatchesSequentialVerdicts) {
  std::vector<Variant<int, int>> vs{good("a"), crashing("b"), good("c")};
  ParallelEvaluation<int, int> seq{vs, majority_voter<int>()};
  ParallelEvaluation<int, int> inc{vs, majority_voter<int>(),
                                   Concurrency::threaded,
                                   Adjudication::incremental};
  for (int i = 0; i < 30; ++i) {
    auto a = seq.run(i);
    auto b = inc.run(i);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a.value(), b.value());
  }
  util::ThreadPool::shared().wait_idle();
}

TEST(ParallelEvaluation, IncrementalReturnsBeforeSlowStraggler) {
  auto slow = make_variant<int, int>("slow", [](const int& x) -> Result<int> {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return x * 2;
  });
  ParallelEvaluation<int, int> pe{{good("a"), good("b"), slow},
                                  majority_voter<int>(),
                                  Concurrency::threaded,
                                  Adjudication::incremental};
  const auto t0 = std::chrono::steady_clock::now();
  auto out = pe.run(4);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 8);  // the two fast agreeing variants carry the vote
  EXPECT_LT(elapsed, std::chrono::milliseconds(90));
  // The straggler's work is folded into the metrics once it lands — unless
  // cancellation reached it before it started, in which case it never runs.
  util::ThreadPool::shared().wait_idle();
  EXPECT_GE(pe.metrics().variant_executions, 2u);
  EXPECT_LE(pe.metrics().variant_executions, 3u);
}

TEST(ParallelEvaluation, IncrementalUnrecoveredWhenMajorityCrashes) {
  ParallelEvaluation<int, int> pe{{crashing("a"), crashing("b"), good("c")},
                                  majority_voter<int>(),
                                  Concurrency::threaded,
                                  Adjudication::incremental};
  auto out = pe.run(1);
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(pe.metrics().unrecovered, 1u);
  util::ThreadPool::shared().wait_idle();
}

TEST(ParallelEvaluation, UnrecoveredCounted) {
  ParallelEvaluation<int, int> pe{{crashing("a"), crashing("b"), good("c")},
                                  majority_voter<int>()};
  auto out = pe.run(1);
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(pe.metrics().unrecovered, 1u);
}

// --- Figure 1(b): parallel selection ---------------------------------------

TEST(ParallelSelection, HighestPriorityPassingWins) {
  using PS = ParallelSelection<int, int>;
  PS ps{{PS::Checked{good("primary"), accept_all<int, int>()},
         PS::Checked{good("spare", 100), accept_all<int, int>()}}};
  auto out = ps.run(3);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 6);
  EXPECT_EQ(ps.acting(), 0u);
}

TEST(ParallelSelection, SpareTakesOverAndFailedIsDisabled) {
  using PS = ParallelSelection<int, int>;
  PS ps{{PS::Checked{crashing("primary"), accept_all<int, int>()},
         PS::Checked{good("spare"), accept_all<int, int>()}}};
  auto out = ps.run(3);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 6);
  EXPECT_EQ(ps.acting(), 1u);
  EXPECT_EQ(ps.alive(), 1u);  // primary disabled
  EXPECT_EQ(ps.metrics().disabled_components, 1u);
  EXPECT_EQ(ps.metrics().recoveries, 1u);
}

TEST(ParallelSelection, AcceptanceTestFiltersWrongOutput) {
  using PS = ParallelSelection<int, int>;
  auto is_even = [](const int&, const int& out) { return out % 2 == 0; };
  PS ps{{PS::Checked{good("odd", 1), is_even},
         PS::Checked{good("even"), is_even}}};
  auto out = ps.run(4);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 8);
}

TEST(ParallelSelection, RedundancyIsProgressivelyConsumed) {
  using PS = ParallelSelection<int, int>;
  PS ps{{PS::Checked{crashing("a"), accept_all<int, int>()},
         PS::Checked{crashing("b"), accept_all<int, int>()},
         PS::Checked{good("c"), accept_all<int, int>()}}};
  (void)ps.run(1);
  EXPECT_EQ(ps.alive(), 1u);
  (void)ps.run(1);
  EXPECT_EQ(ps.alive(), 1u);
  // Only the surviving component executes on later requests.
  EXPECT_EQ(ps.metrics().variant_executions, 4u);
}

TEST(ParallelSelection, AllFailedIsNoAlternatives) {
  using PS = ParallelSelection<int, int>;
  PS ps{{PS::Checked{crashing("a"), accept_all<int, int>()}}};
  auto out = ps.run(1);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, FailureKind::no_alternatives);
  // A later request has nothing left to run.
  out = ps.run(1);
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(ps.alive(), 0u);
}

TEST(ParallelSelection, ThreadedReturnsPassingResult) {
  using PS = ParallelSelection<int, int>;
  auto is_even = [](const int&, const int& out) { return out % 2 == 0; };
  PS ps{{PS::Checked{good("odd", 1), is_even},
         PS::Checked{good("even"), is_even}},
        PS::Options{.disable_on_failure = false,
                    .lazy = true,
                    .concurrency = Concurrency::threaded}};
  auto out = ps.run(4);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 8);  // only "even" passes the acceptance test
  EXPECT_EQ(ps.acting(), 1u);
  util::ThreadPool::shared().wait_idle();
}

TEST(ParallelSelection, ThreadedDisablesCrashedComponent) {
  using PS = ParallelSelection<int, int>;
  PS ps{{PS::Checked{crashing("primary"), accept_all<int, int>()},
         PS::Checked{good("spare"), accept_all<int, int>()}},
        PS::Options{.concurrency = Concurrency::threaded}};
  auto out = ps.run(3);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 6);
  EXPECT_EQ(ps.acting(), 1u);
  // The winning spare may cancel the crasher before it ever starts, and a
  // cancelled component is not a failed one; keep issuing requests until
  // the crasher has actually executed (and failed) once.
  for (int i = 0; i < 100 && ps.alive() == 2; ++i) {
    (void)ps.run(3);
    util::ThreadPool::shared().wait_idle();  // let the straggler settle
  }
  EXPECT_EQ(ps.alive(), 1u);  // folding disables the crasher
}

TEST(ParallelSelection, ThreadedAllFailingIsNoAlternatives) {
  using PS = ParallelSelection<int, int>;
  PS ps{{PS::Checked{crashing("a"), accept_all<int, int>()},
         PS::Checked{crashing("b"), accept_all<int, int>()}},
        PS::Options{.concurrency = Concurrency::threaded}};
  auto out = ps.run(1);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, FailureKind::no_alternatives);
  EXPECT_EQ(ps.metrics().unrecovered, 1u);
  util::ThreadPool::shared().wait_idle();
  EXPECT_EQ(ps.alive(), 0u);
}

TEST(ParallelSelection, ThreadedFirstArrivalWinsOverPriority) {
  using PS = ParallelSelection<int, int>;
  auto slow_primary =
      make_variant<int, int>("slow", [](const int& x) -> Result<int> {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return x * 2;
      });
  PS ps{{PS::Checked{slow_primary, accept_all<int, int>()},
         PS::Checked{good("fast", 100), accept_all<int, int>()}},
        PS::Options{.disable_on_failure = false,
                    .lazy = true,
                    .concurrency = Concurrency::threaded}};
  auto out = ps.run(1);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 102);  // completion order, not priority order
  EXPECT_EQ(ps.acting(), 1u);
  util::ThreadPool::shared().wait_idle();
}

TEST(ParallelSelection, ReinstateRestoresService) {
  using PS = ParallelSelection<int, int>;
  PS ps{{PS::Checked{crashing("a"), accept_all<int, int>()},
         PS::Checked{good("b"), accept_all<int, int>()}}};
  (void)ps.run(1);
  EXPECT_EQ(ps.alive(), 1u);
  ps.reinstate_all();
  EXPECT_EQ(ps.alive(), 2u);
}

// --- Figure 1(c): sequential alternatives ----------------------------------

TEST(SequentialAlternatives, PrimarySufficesWhenHealthy) {
  SequentialAlternatives<int, int> sa{{good("p"), good("alt", 100)},
                                      accept_all<int, int>()};
  auto out = sa.run(2);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 4);
  EXPECT_EQ(sa.metrics().variant_executions, 1u);  // alternates untouched
  EXPECT_EQ(sa.last_used(), 0u);
}

TEST(SequentialAlternatives, FallsThroughOnCrash) {
  SequentialAlternatives<int, int> sa{{crashing("p"), good("alt")},
                                      accept_all<int, int>()};
  auto out = sa.run(2);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 4);
  EXPECT_EQ(sa.last_used(), 1u);
  EXPECT_EQ(sa.metrics().recoveries, 1u);
}

TEST(SequentialAlternatives, AcceptanceRejectionTriggersAlternate) {
  auto reject_odd = [](const int&, const int& out) { return out % 2 == 0; };
  SequentialAlternatives<int, int> sa{{good("p", 1), good("alt")},
                                      reject_odd};
  auto out = sa.run(2);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 4);
}

TEST(SequentialAlternatives, RollbackRunsBeforeEachRetry) {
  int rollbacks = 0;
  SequentialAlternatives<int, int>::Options opts;
  opts.rollback = [&rollbacks] { ++rollbacks; };
  SequentialAlternatives<int, int> sa{
      {crashing("a"), crashing("b"), good("c")}, accept_all<int, int>(),
      opts};
  auto out = sa.run(1);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(rollbacks, 2);
  EXPECT_EQ(sa.metrics().rollbacks, 2u);
}

TEST(SequentialAlternatives, ExhaustionReportsNoAlternatives) {
  SequentialAlternatives<int, int> sa{{crashing("a"), crashing("b")},
                                      accept_all<int, int>()};
  auto out = sa.run(1);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, FailureKind::no_alternatives);
  EXPECT_EQ(sa.metrics().unrecovered, 1u);
}

TEST(SequentialAlternatives, MaxAttemptsBoundsConsumption) {
  SequentialAlternatives<int, int>::Options opts;
  opts.max_attempts = 2;
  SequentialAlternatives<int, int> sa{
      {crashing("a"), crashing("b"), good("c")}, accept_all<int, int>(),
      opts};
  auto out = sa.run(1);
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(sa.metrics().variant_executions, 2u);
}

TEST(SequentialAlternatives, CostOnlyForExecutedAlternatives) {
  auto expensive = good("alt");
  expensive.cost = 10.0;
  SequentialAlternatives<int, int> sa{{good("p"), expensive},
                                      accept_all<int, int>()};
  (void)sa.run(1);
  EXPECT_DOUBLE_EQ(sa.metrics().cost_units, 1.0);
}

TEST(Metrics, AccumulateAndSummarize) {
  Metrics m;
  m.requests = 2;
  m.variant_executions = 6;
  Metrics n;
  n.requests = 1;
  n.cost_units = 4.0;
  m += n;
  EXPECT_EQ(m.requests, 3u);
  EXPECT_DOUBLE_EQ(m.executions_per_request(), 2.0);
  EXPECT_NE(m.summary().find("requests=3"), std::string::npos);
}

}  // namespace
}  // namespace redundancy::core
