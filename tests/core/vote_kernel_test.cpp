// Property tests for the vectorized adjudication kernels: the word-wise
// equality/hash primitives (util/wordwise.hpp), the arena scratch they
// vote with (util/arena.hpp), and the digest-prepass voters themselves —
// each checked against a scalar reference on randomized sizes, alignments
// and corruptions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/voters.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/wordwise.hpp"

namespace redundancy {
namespace {

using core::Ballot;
using core::FailureKind;
using core::Result;

std::vector<std::byte> random_bytes(util::Rng& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) {
    b = static_cast<std::byte>(rng.below(256));
  }
  return out;
}

// ---------------------------------------------------------------------------
// wordwise::equal vs the scalar reference
// ---------------------------------------------------------------------------

TEST(WordwiseEqual, MatchesScalarOnRandomSizes) {
  util::Rng rng{20250805};
  // Sweep every length around the kernel's block boundaries (0..96 covers
  // the 32-byte block loop, the 8-byte word loop, and the overlapping
  // tail) plus some larger blobs.
  std::vector<std::size_t> sizes;
  for (std::size_t n = 0; n <= 96; ++n) sizes.push_back(n);
  for (std::size_t n : {127, 128, 129, 1000, 4096, 10000}) sizes.push_back(n);
  for (std::size_t n : sizes) {
    const auto a = random_bytes(rng, n);
    const auto b = a;  // identical copy
    EXPECT_TRUE(util::wordwise::equal(a, b)) << "size " << n;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(WordwiseEqual, DetectsEverySingleByteCorruption) {
  util::Rng rng{42};
  for (std::size_t n : {1, 2, 7, 8, 9, 31, 32, 33, 63, 64, 65, 257, 1024}) {
    const auto a = random_bytes(rng, n);
    for (std::size_t pos = 0; pos < n; ++pos) {
      auto b = a;
      b[pos] ^= std::byte{0x01};  // minimal flip: one bit of one byte
      EXPECT_FALSE(util::wordwise::equal(a, b))
          << "size " << n << " corrupted at " << pos;
    }
  }
}

TEST(WordwiseEqual, MisalignedViewsCompareCorrectly) {
  // Slice a shared arena at every offset 0..15 so the kernel sees data()
  // pointers of every alignment class; memcpy-based loads must not care.
  util::Rng rng{7};
  const auto backing = random_bytes(rng, 4096 + 16);
  for (std::size_t off = 0; off < 16; ++off) {
    std::span<const std::byte> a{backing.data() + off, 777};
    std::vector<std::byte> copy(a.begin(), a.end());
    EXPECT_TRUE(util::wordwise::equal(a, std::span<const std::byte>{copy}))
        << "offset " << off;
    copy[500] ^= std::byte{0x80};
    EXPECT_FALSE(util::wordwise::equal(a, std::span<const std::byte>{copy}))
        << "offset " << off;
  }
}

TEST(WordwiseEqual, SizeMismatchNeverEqual) {
  util::Rng rng{3};
  const auto a = random_bytes(rng, 64);
  std::vector<std::byte> b(a.begin(), a.begin() + 63);
  EXPECT_FALSE(util::wordwise::equal(std::span<const std::byte>{a},
                                     std::span<const std::byte>{b}));
}

// ---------------------------------------------------------------------------
// hash64: the digest prepass is only sound if equal values always collide
// ---------------------------------------------------------------------------

TEST(WordwiseHash, EqualValuesAlwaysShareADigest) {
  util::Rng rng{99};
  for (std::size_t n : {0, 1, 5, 8, 16, 31, 32, 100, 1000}) {
    const auto a = random_bytes(rng, n);
    const auto b = a;
    EXPECT_EQ(util::wordwise::hash64(a), util::wordwise::hash64(b))
        << "size " << n;
  }
}

TEST(WordwiseHash, TailBytesBeyondLengthDoNotLeakIn) {
  // Two equal 5-byte values embedded in different surrounding garbage:
  // the zero-padded tail word must mask the neighbours out.
  std::vector<std::byte> buf1(16, std::byte{0xAA});
  std::vector<std::byte> buf2(16, std::byte{0x55});
  const std::byte payload[5] = {std::byte{1}, std::byte{2}, std::byte{3},
                                std::byte{4}, std::byte{5}};
  std::memcpy(buf1.data(), payload, 5);
  std::memcpy(buf2.data(), payload, 5);
  const std::span<const std::byte> a{buf1.data(), 5};
  const std::span<const std::byte> b{buf2.data(), 5};
  EXPECT_EQ(util::wordwise::hash64(a), util::wordwise::hash64(b));
  EXPECT_TRUE(util::wordwise::equal(a, b));
}

TEST(WordwiseHash, LengthParticipatesInTheDigest) {
  // All-zero blobs of different lengths must not collide trivially.
  std::vector<std::byte> z(64, std::byte{0});
  const auto h8 = util::wordwise::hash64(std::span<const std::byte>{z.data(), 8});
  const auto h16 =
      util::wordwise::hash64(std::span<const std::byte>{z.data(), 16});
  EXPECT_NE(h8, h16);
}

// ---------------------------------------------------------------------------
// Voters on byte-viewable payloads vs a scalar reference
// ---------------------------------------------------------------------------

template <typename Out>
std::vector<Ballot<Out>> make_ballots(std::vector<Result<Out>> results) {
  std::vector<Ballot<Out>> ballots;
  for (std::size_t i = 0; i < results.size(); ++i) {
    ballots.push_back({i, "v" + std::to_string(i), std::move(results[i])});
  }
  return ballots;
}

/// Scalar reference plurality: count exact-equality groups quadratically.
template <typename Out>
std::optional<Out> reference_plurality(const std::vector<Out>& values) {
  std::size_t best = 0;
  std::size_t best_count = 0;
  bool tie = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::size_t count = 0;
    for (const auto& v : values) {
      if (v == values[i]) ++count;
    }
    if (count > best_count) {
      best = i;
      best_count = count;
      tie = false;
    } else if (count == best_count && !(values[i] == values[best])) {
      tie = true;
    }
  }
  if (best_count == 0 || tie) return std::nullopt;
  return values[best];
}

TEST(VoteKernel, MajorityAgreesWithScalarReferenceOnRandomBlobs) {
  util::Rng rng{1234};
  auto majority = core::majority_voter<std::string>();
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 3 + std::size_t(rng.below(7));  // 3..9
    // 2 or 3 distinct candidate blobs, random length incl. word-boundary
    // straddlers, randomly assigned to ballots.
    const std::size_t distinct = 2 + std::size_t(rng.below(2));
    std::vector<std::string> candidates;
    for (std::size_t c = 0; c < distinct; ++c) {
      const std::size_t len = std::size_t(rng.below(41));
      std::string s;
      for (std::size_t i = 0; i < len; ++i) {
        s.push_back(char('a' + int(rng.below(4))));
      }
      candidates.push_back(std::move(s));
    }
    std::vector<std::string> values;
    for (std::size_t i = 0; i < n; ++i) {
      values.push_back(candidates[std::size_t(rng.below(candidates.size()))]);
    }
    // Reference strict majority: a group with count > n/2.
    std::optional<std::string> expected;
    for (const auto& v : values) {
      std::size_t count = 0;
      for (const auto& w : values) {
        if (v == w) ++count;
      }
      if (count * 2 > n) {
        expected = v;
        break;
      }
    }
    std::vector<Result<std::string>> results;
    for (auto& v : values) results.emplace_back(v);
    auto out = majority(make_ballots<std::string>(std::move(results)));
    ASSERT_EQ(out.has_value(), expected.has_value()) << "trial " << trial;
    if (expected) {
      EXPECT_EQ(out.value(), *expected) << "trial " << trial;
    }
  }
}

TEST(VoteKernel, PluralityAgreesWithScalarReferenceOnRandomBlobs) {
  util::Rng rng{5678};
  auto plurality = core::plurality_voter<std::string>();
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + std::size_t(rng.below(8));  // 2..9
    std::vector<std::string> values;
    for (std::size_t i = 0; i < n; ++i) {
      // Low-entropy candidates make count collisions (ties) common.
      values.push_back(std::string(1 + std::size_t(rng.below(4)),
                                   char('x' + int(rng.below(2)))));
    }
    const auto expected = reference_plurality(values);
    std::vector<Result<std::string>> results;
    for (auto& v : values) results.emplace_back(v);
    auto out = plurality(make_ballots<std::string>(std::move(results)));
    ASSERT_EQ(out.has_value(), expected.has_value()) << "trial " << trial;
    if (expected) {
      EXPECT_EQ(out.value(), *expected) << "trial " << trial;
    }
  }
}

TEST(VoteKernel, UnanimityDetectsSingleByteDivergence) {
  auto unanimity = core::unanimity_voter<std::vector<std::uint8_t>>();
  util::Rng rng{31337};
  for (std::size_t n : {1, 8, 9, 64, 100}) {
    std::vector<std::uint8_t> base(n);
    for (auto& b : base) b = std::uint8_t(rng.below(256));
    // All agree.
    auto ok = unanimity(make_ballots<std::vector<std::uint8_t>>(
        {base, base, base}));
    ASSERT_TRUE(ok.has_value()) << "size " << n;
    EXPECT_EQ(ok.value(), base);
    // One replica one byte off: must be flagged as divergence, and the
    // verdict must never be the corrupted value.
    auto bad = base;
    bad[std::size_t(rng.below(n))] ^= 0x40;
    auto div = unanimity(make_ballots<std::vector<std::uint8_t>>(
        {base, bad, base}));
    ASSERT_FALSE(div.has_value()) << "size " << n;
    EXPECT_EQ(div.error().kind, FailureKind::detected_attack);
  }
}

TEST(VoteKernel, MajorityOnNonByteViewableTypeStillWorks) {
  // double has identical-value representations that differ (±0.0), so it
  // is excluded from the word-wise path; the scalar path must serve it.
  auto majority = core::majority_voter<double>();
  auto out = majority(make_ballots<double>({0.0, -0.0, 1.5}));
  ASSERT_TRUE(out.has_value());  // 0.0 == -0.0 forms the majority group
  EXPECT_EQ(out.value(), 0.0);
}

// ---------------------------------------------------------------------------
// Arena scratch
// ---------------------------------------------------------------------------

TEST(Arena, AllocationsAreDisjointAndZeroed) {
  util::Arena arena{128};
  auto a = arena.alloc_array<std::uint64_t>(10);
  auto b = arena.alloc_array<std::uint64_t>(10);
  ASSERT_EQ(a.size(), 10u);
  ASSERT_EQ(b.size(), 10u);
  EXPECT_NE(a.data(), b.data());
  for (auto v : a) EXPECT_EQ(v, 0u);
  std::fill(a.begin(), a.end(), 0xAAu);
  for (auto v : b) EXPECT_EQ(v, 0u) << "neighbouring allocation clobbered";
}

TEST(Arena, GrowsBeyondInitialBlock) {
  util::Arena arena{64};
  auto big = arena.alloc_array<std::uint8_t>(10'000);
  ASSERT_EQ(big.size(), 10'000u);
  big[9'999] = 42;
  EXPECT_GE(arena.capacity(), 10'000u);
}

TEST(Arena, MarkerReleaseReusesMemory) {
  util::Arena arena{1024};
  const auto mark = arena.mark();
  auto first = arena.alloc_array<std::uint32_t>(8);
  first[0] = 7;
  arena.release_to(mark);
  auto second = arena.alloc_array<std::uint32_t>(8);
  // Stack discipline: the released region is handed out again...
  EXPECT_EQ(static_cast<void*>(first.data()),
            static_cast<void*>(second.data()));
  // ...and re-zeroed for the new owner.
  EXPECT_EQ(second[0], 0u);
}

TEST(Arena, ScopeRestoresOnExit) {
  util::Arena arena{1024};
  const std::size_t before = arena.bytes_used();
  {
    util::ArenaScope scope{arena};
    (void)arena.alloc_array<std::uint64_t>(32);
    EXPECT_GT(arena.bytes_used(), before);
  }
  EXPECT_EQ(arena.bytes_used(), before);
}

TEST(Arena, AlignmentIsHonoured) {
  util::Arena arena{256};
  (void)arena.allocate(1, 1);  // misalign the cursor
  void* p = arena.allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
}

}  // namespace
}  // namespace redundancy
