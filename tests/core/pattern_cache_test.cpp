// Result caching woven through the Figure-1 pattern executors: a hit must
// skip the whole electorate (and the voter / acceptance tests) while the
// request metrics keep counting, and invalidation must force re-execution.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/cache_epoch.hpp"
#include "core/parallel_evaluation.hpp"
#include "core/parallel_selection.hpp"
#include "core/redundancy_cache.hpp"
#include "core/sequential_alternatives.hpp"
#include "core/voters.hpp"

namespace redundancy::core {
namespace {

ParallelEvaluation<int, int> make_nvp(std::atomic<int>& executions) {
  std::vector<Variant<int, int>> variants;
  for (int v = 0; v < 3; ++v) {
    variants.push_back(make_variant<int, int>(
        "v" + std::to_string(v), [&executions](const int& in) -> Result<int> {
          ++executions;
          return in * 2;
        }));
  }
  return ParallelEvaluation<int, int>{std::move(variants),
                                     majority_voter<int>()};
}

TEST(PatternCache, ParallelEvaluationHitSkipsTheElectorate) {
  std::atomic<int> executions{0};
  auto nvp = make_nvp(executions);
  nvp.set_obs_label("pc_nvp");
  nvp.enable_cache();

  for (int i = 0; i < 5; ++i) {
    auto r = nvp.run(21);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r.value(), 42);
  }
  if (kCacheCompiledIn) {
    EXPECT_EQ(executions.load(), 3);  // one miss ran the 3 variants, once
    EXPECT_EQ(nvp.metrics().requests, 5u);
    EXPECT_EQ(nvp.metrics().variant_executions, 3u);
    ASSERT_NE(nvp.cache(), nullptr);
    EXPECT_EQ(nvp.cache()->stats().hits, 4u);
  } else {
    EXPECT_EQ(executions.load(), 15);  // stub executes every request
  }
}

TEST(PatternCache, DistinctInputsAndLabelsKeySeparately) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  std::atomic<int> executions{0};
  auto nvp = make_nvp(executions);
  nvp.set_obs_label("pc_nvp_keys");
  nvp.enable_cache();
  EXPECT_EQ(nvp.run(1).value(), 2);
  EXPECT_EQ(nvp.run(2).value(), 4);
  EXPECT_EQ(nvp.run(1).value(), 2);  // hit, not a collision with input 2
  EXPECT_EQ(executions.load(), 6);   // two misses
}

TEST(PatternCache, InvalidateCacheForcesReexecution) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  std::atomic<int> executions{0};
  auto nvp = make_nvp(executions);
  nvp.set_obs_label("pc_nvp_inval");
  nvp.enable_cache();
  (void)nvp.run(3);
  (void)nvp.run(3);
  EXPECT_EQ(executions.load(), 3);
  nvp.invalidate_cache();
  (void)nvp.run(3);
  EXPECT_EQ(executions.load(), 6);
}

TEST(PatternCache, RestartEpochInvalidatesPatternCaches) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  std::atomic<int> executions{0};
  auto nvp = make_nvp(executions);
  nvp.set_obs_label("pc_nvp_epoch");
  nvp.enable_cache();
  (void)nvp.run(3);
  EXPECT_EQ(executions.load(), 3);
  // What rejuvenation / microreboot emit on every restart event.
  advance_cache_epoch();
  (void)nvp.run(3);
  EXPECT_EQ(executions.load(), 6);
}

TEST(PatternCache, DisableCacheRestoresPlainExecution) {
  std::atomic<int> executions{0};
  auto nvp = make_nvp(executions);
  nvp.set_obs_label("pc_nvp_disable");
  nvp.enable_cache();
  (void)nvp.run(4);
  nvp.disable_cache();
  EXPECT_EQ(nvp.cache(), nullptr);
  (void)nvp.run(4);
  (void)nvp.run(4);
  if (kCacheCompiledIn) {
    EXPECT_EQ(executions.load(), 9);  // every post-disable run executes
  }
}

TEST(PatternCache, FailedVerdictsAreRetriedNotMemoized) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  // All variants disagree -> adjudication fails; the failure must not be
  // served from cache (default cache_failures=false), so a later fixed
  // electorate can succeed.
  std::atomic<int> calls{0};
  std::vector<Variant<int, int>> variants;
  for (int v = 0; v < 3; ++v) {
    variants.push_back(make_variant<int, int>(
        "v" + std::to_string(v), [&calls, v](const int&) -> Result<int> {
          ++calls;
          return calls.load() > 3 ? 7 : v;  // disagree once, then agree
        }));
  }
  ParallelEvaluation<int, int> nvp{std::move(variants), majority_voter<int>()};
  nvp.set_obs_label("pc_nvp_fail");
  nvp.enable_cache();
  EXPECT_FALSE(nvp.run(1).has_value());
  auto r = nvp.run(1);  // re-ran: the electorate now agrees
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r.value(), 7);
}

TEST(PatternCache, ParallelSelectionHitSkipsComponentsAndChecks) {
  std::atomic<int> executions{0};
  std::atomic<int> checks{0};
  std::vector<typename ParallelSelection<int, int>::Checked> components;
  components.push_back(
      {make_variant<int, int>("primary",
                              [&](const int& in) -> Result<int> {
                                ++executions;
                                return in + 100;
                              }),
       [&](const int&, const int&) {
         ++checks;
         return true;
       }});
  ParallelSelection<int, int> selection{std::move(components)};
  selection.set_obs_label("pc_selection");
  selection.enable_cache();

  for (int i = 0; i < 4; ++i) {
    auto r = selection.run(1);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r.value(), 101);
  }
  if (kCacheCompiledIn) {
    EXPECT_EQ(executions.load(), 1);
    EXPECT_EQ(checks.load(), 1);  // cached verdicts skip the acceptance test
    EXPECT_EQ(selection.metrics().requests, 4u);
  }
}

TEST(PatternCache, SequentialAlternativesHitSkipsAlternatives) {
  std::atomic<int> executions{0};
  SequentialAlternatives<int, int> engine{
      {make_variant<int, int>("only",
                              [&](const int& in) -> Result<int> {
                                ++executions;
                                return in - 1;
                              })},
      accept_all<int, int>()};
  engine.set_obs_label("pc_seq");
  engine.enable_cache();
  for (int i = 0; i < 3; ++i) {
    auto r = engine.run(10);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r.value(), 9);
  }
  if (kCacheCompiledIn) {
    EXPECT_EQ(executions.load(), 1);
    EXPECT_EQ(engine.metrics().requests, 3u);
  }
}

}  // namespace
}  // namespace redundancy::core
