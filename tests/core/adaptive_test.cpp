#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include "faults/fault.hpp"
#include "techniques/nvp.hpp"

namespace redundancy::core {
namespace {

std::vector<Ballot<int>> ballots(std::vector<Result<int>> results) {
  std::vector<Ballot<int>> out;
  for (std::size_t i = 0; i < results.size(); ++i) {
    out.push_back({i, "v" + std::to_string(i), std::move(results[i])});
  }
  return out;
}

TEST(ReliabilityTracker, StartsNeutral) {
  ReliabilityTracker tracker{3};
  EXPECT_DOUBLE_EQ(tracker.reliability(0), 0.5);
  EXPECT_DOUBLE_EQ(tracker.reliability(2), 0.5);
  EXPECT_DOUBLE_EQ(tracker.reliability(99), 0.5);  // out of range: neutral
}

TEST(ReliabilityTracker, LearnsFromAgreement) {
  ReliabilityTracker tracker{2};
  for (int i = 0; i < 50; ++i) {
    tracker.observe<int>(ballots({7, 8}), 7);  // variant 1 always disagrees
  }
  EXPECT_GT(tracker.reliability(0), 0.9);
  EXPECT_LT(tracker.reliability(1), 0.1);
}

TEST(ReliabilityTracker, FailedBallotsCountAsDisagreement) {
  ReliabilityTracker tracker{2};
  tracker.observe<int>(ballots({7, failure(FailureKind::crash)}), 7);
  EXPECT_GT(tracker.reliability(0), tracker.reliability(1));
}

TEST(AdaptiveVoter, ElectsAndLearns) {
  ReliabilityTracker tracker{3};
  auto voter = adaptive_voter<int>(tracker);
  auto out = voter(ballots({5, 5, 9}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 5);
  EXPECT_GT(tracker.reliability(0), tracker.reliability(2));
}

TEST(AdaptiveVoter, LearnedWeightsBreakOneVsOneTies) {
  // With only 2 variants a plain vote has no way to break a disagreement;
  // once weights are learned, the historically reliable variant wins.
  ReliabilityTracker tracker{2};
  auto voter = adaptive_voter<int>(tracker);
  // Warm up: both agree for a while, then variant 1 develops a fault and
  // keeps disagreeing. Train on 3-way rounds first.
  for (int i = 0; i < 30; ++i) {
    (void)tracker.observe<int>(ballots({1, 1}), 1);
  }
  for (int i = 0; i < 30; ++i) {
    (void)tracker.observe<int>(ballots({1, 2}), 1);
  }
  auto out = voter(ballots({42, 17}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value(), 42);  // the trusted variant's answer
}

TEST(AdaptiveVoter, ConvergesInsideNvpAgainstADegradedVersion) {
  // 3 versions; version 2 degrades badly. The adaptive voter should end up
  // trusting versions 0 and 1 and keep electing the correct value even on
  // inputs where version 2 and version 1 both misbehave differently.
  auto golden = [](const int& x) { return x * 9; };
  std::vector<Variant<int, int>> versions;
  for (int i = 0; i < 3; ++i) {
    faults::FaultInjector<int, int> v{"v" + std::to_string(i), golden};
    const double rate = i == 2 ? 0.6 : 0.05;
    v.add(faults::bohrbug<int, int>(
        "b", rate, 300 + static_cast<std::uint64_t>(i),
        FailureKind::wrong_output, faults::skewed<int, int>(i + 1)));
    versions.push_back(v.as_variant());
  }
  ReliabilityTracker tracker{3};
  techniques::NVersionProgramming<int, int> nvp{std::move(versions),
                                                adaptive_voter<int>(tracker)};
  std::size_t correct = 0;
  for (int x = 0; x < 5000; ++x) {
    auto out = nvp.run(x);
    if (out.has_value() && out.value() == golden(x)) ++correct;
  }
  EXPECT_GT(correct, 4700u);
  EXPECT_LT(tracker.reliability(2), tracker.reliability(0));
  EXPECT_LT(tracker.reliability(2), 0.6);
  EXPECT_GT(tracker.reliability(0), 0.9);
}

}  // namespace
}  // namespace redundancy::core
