// core::Metrics accumulation and reporting: operator+= is what merges
// per-shard campaign metrics, so it must sum every field exactly.
#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace redundancy::core {
namespace {

Metrics sample(std::size_t scale) {
  Metrics m;
  m.requests = 1 * scale;
  m.variant_executions = 2 * scale;
  m.variant_failures = 3 * scale;
  m.adjudications = 4 * scale;
  m.rollbacks = 5 * scale;
  m.recoveries = 6 * scale;
  m.unrecovered = 7 * scale;
  m.disabled_components = 8 * scale;
  m.cost_units = 9.5 * static_cast<double>(scale);
  return m;
}

TEST(Metrics, PlusEqualsSumsEveryField) {
  Metrics a = sample(1);
  Metrics b = sample(10);
  Metrics& ret = (a += b);
  EXPECT_EQ(&ret, &a);  // returns *this for chaining
  EXPECT_EQ(a.requests, 11u);
  EXPECT_EQ(a.variant_executions, 22u);
  EXPECT_EQ(a.variant_failures, 33u);
  EXPECT_EQ(a.adjudications, 44u);
  EXPECT_EQ(a.rollbacks, 55u);
  EXPECT_EQ(a.recoveries, 66u);
  EXPECT_EQ(a.unrecovered, 77u);
  EXPECT_EQ(a.disabled_components, 88u);
  EXPECT_DOUBLE_EQ(a.cost_units, 9.5 * 11.0);
}

TEST(Metrics, PlusEqualsWithDefaultIsIdentity) {
  Metrics a = sample(3);
  const Metrics before = a;
  a += Metrics{};
  EXPECT_EQ(a.requests, before.requests);
  EXPECT_EQ(a.variant_executions, before.variant_executions);
  EXPECT_EQ(a.variant_failures, before.variant_failures);
  EXPECT_EQ(a.adjudications, before.adjudications);
  EXPECT_EQ(a.rollbacks, before.rollbacks);
  EXPECT_EQ(a.recoveries, before.recoveries);
  EXPECT_EQ(a.unrecovered, before.unrecovered);
  EXPECT_EQ(a.disabled_components, before.disabled_components);
  EXPECT_DOUBLE_EQ(a.cost_units, before.cost_units);
}

TEST(Metrics, MergeOrderDoesNotMatter) {
  Metrics ab = sample(2);
  ab += sample(5);
  Metrics ba = sample(5);
  ba += sample(2);
  EXPECT_EQ(ab.requests, ba.requests);
  EXPECT_EQ(ab.variant_executions, ba.variant_executions);
  EXPECT_DOUBLE_EQ(ab.cost_units, ba.cost_units);
  EXPECT_EQ(ab.summary(), ba.summary());
}

TEST(Metrics, SummaryReportsEveryCounter) {
  Metrics m = sample(1);
  const std::string s = m.summary();
  EXPECT_NE(s.find("requests=1"), std::string::npos) << s;
  EXPECT_NE(s.find("execs=2"), std::string::npos) << s;
  EXPECT_NE(s.find("fails=3"), std::string::npos) << s;
  EXPECT_NE(s.find("adjudications=4"), std::string::npos) << s;
  EXPECT_NE(s.find("rollbacks=5"), std::string::npos) << s;
  EXPECT_NE(s.find("recovered=6"), std::string::npos) << s;
  EXPECT_NE(s.find("unrecovered=7"), std::string::npos) << s;
  EXPECT_NE(s.find("cost=9.5"), std::string::npos) << s;
}

TEST(Metrics, SummaryOfFreshMetricsIsAllZero) {
  const std::string s = Metrics{}.summary();
  EXPECT_NE(s.find("requests=0"), std::string::npos) << s;
  EXPECT_NE(s.find("cost=0.0"), std::string::npos) << s;
}

TEST(Metrics, ResetClearsEverything) {
  Metrics m = sample(4);
  m.reset();
  EXPECT_EQ(m.requests, 0u);
  EXPECT_EQ(m.variant_executions, 0u);
  EXPECT_EQ(m.disabled_components, 0u);
  EXPECT_DOUBLE_EQ(m.cost_units, 0.0);
}

TEST(Metrics, PerRequestRatios) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.executions_per_request(), 0.0);  // no div-by-zero
  EXPECT_DOUBLE_EQ(m.cost_per_request(), 0.0);
  m.requests = 4;
  m.variant_executions = 12;
  m.cost_units = 6.0;
  EXPECT_DOUBLE_EQ(m.executions_per_request(), 3.0);
  EXPECT_DOUBLE_EQ(m.cost_per_request(), 1.5);
}

}  // namespace
}  // namespace redundancy::core
