// SequentialAlternatives hedging — budget derivation from the live
// latency histogram, first-success-wins races, straggler bookkeeping,
// and the guards that keep hedging off stateful (rollback) blocks.
//
// Labels: the hedge budget reads obs::histogram("technique.alternative_ns",
// label), which is process-global — every test sets a unique label so one
// test's latency observations cannot skew another's budget.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/sequential_alternatives.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace redundancy::core {
namespace {

using Engine = SequentialAlternatives<int, int>;

Variant<int, int> variant(std::string name,
                          std::function<Result<int>(const int&)> fn) {
  return make_variant<int, int>(std::move(name), std::move(fn));
}

typename Engine::Options::Hedge fast_hedge(std::uint64_t budget_ns) {
  typename Engine::Options::Hedge h;
  h.enabled = true;
  h.fallback_budget_ns = budget_ns;
  h.min_samples = 1'000'000;  // pin the budget to the fallback
  h.min_budget_ns = 0;
  return h;
}

TEST(Hedging, BudgetFallsBackUntilEnoughSamples) {
  Engine engine{{variant("only", [](const int& v) -> Result<int> {
                  return v;
                })},
                accept_all<int, int>()};
  engine.set_obs_label("hedge_budget_fallback");
  typename Engine::Options::Hedge h;
  h.enabled = true;
  h.fallback_budget_ns = 7'000'000;
  h.min_samples = 32;
  engine.set_hedge(h);
  // No latency observations yet: the fallback applies.
  EXPECT_EQ(engine.hedge_budget_ns(), 7'000'000u);
}

TEST(Hedging, BudgetDerivesFromLiveHistogram) {
  Engine engine{{variant("only", [](const int& v) -> Result<int> {
                  return v;
                })},
                accept_all<int, int>()};
  engine.set_obs_label("hedge_budget_live");
  typename Engine::Options::Hedge h;
  h.enabled = true;
  h.quantile = 95.0;
  h.multiplier = 1.0;
  h.fallback_budget_ns = 99'000'000;
  h.min_samples = 32;
  h.min_budget_ns = 1'000;
  engine.set_hedge(h);

  auto& hist = obs::histogram("technique.alternative_ns", "hedge_budget_live");
  for (int i = 0; i < 100; ++i) hist.record(1'000'000);  // 1ms observations
  const std::uint64_t budget = engine.hedge_budget_ns();
  EXPECT_NE(budget, 99'000'000u);  // no longer the fallback
  // p95 of an all-1ms distribution, through log2 buckets: same order of
  // magnitude as 1ms.
  EXPECT_GE(budget, 500'000u);
  EXPECT_LE(budget, 4'000'000u);
}

TEST(Hedging, BudgetIsClamped) {
  Engine engine{{variant("only", [](const int& v) -> Result<int> {
                  return v;
                })},
                accept_all<int, int>()};
  engine.set_obs_label("hedge_budget_clamp");
  typename Engine::Options::Hedge h;
  h.enabled = true;
  h.min_samples = 8;
  h.min_budget_ns = 500'000;
  h.max_budget_ns = 2'000'000;
  engine.set_hedge(h);

  auto& hist = obs::histogram("technique.alternative_ns", "hedge_budget_clamp");
  for (int i = 0; i < 16; ++i) hist.record(10);  // freak-fast observations
  EXPECT_EQ(engine.hedge_budget_ns(), 500'000u);  // floor engaged
  for (int i = 0; i < 512; ++i) hist.record(100'000'000);  // 100ms stalls
  EXPECT_EQ(engine.hedge_budget_ns(), 2'000'000u);  // ceiling engaged
}

TEST(Hedging, SlowPrimaryIsHedgedAndFallbackWins) {
  std::atomic<int> primary_runs{0};
  Engine engine{{variant("slow-primary",
                         [&](const int&) -> Result<int> {
                           ++primary_runs;
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(300));
                           return 1;
                         }),
                 variant("fast-fallback",
                         [](const int&) -> Result<int> { return 2; })},
                accept_all<int, int>()};
  engine.set_obs_label("hedge_slow_primary");
  engine.set_hedge(fast_hedge(2'000'000));  // hedge after 2ms

  const auto start = std::chrono::steady_clock::now();
  auto r = engine.run(5);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r.value(), 2);  // the hedge leg won
  EXPECT_EQ(engine.last_used(), 1u);
  EXPECT_LT(elapsed, std::chrono::milliseconds(250))
      << "a hedged request must not wait out the slow primary";
  EXPECT_EQ(primary_runs.load(), 1);
  EXPECT_GE(engine.metrics().hedged_launches, 1u);
  EXPECT_EQ(engine.metrics().requests, 1u);
  util::ThreadPool::shared().wait_idle();  // let the straggler retire
}

TEST(Hedging, StragglerBookkeepingFoldsIntoMetrics) {
  Engine engine{{variant("slow-primary",
                         [](const int&) -> Result<int> {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(80));
                           return 1;
                         }),
                 variant("fast-fallback",
                         [](const int&) -> Result<int> { return 2; })},
                accept_all<int, int>()};
  engine.set_obs_label("hedge_stragglers");
  engine.set_hedge(fast_hedge(1'000'000));

  auto r = engine.run(5);
  ASSERT_TRUE(r.has_value());
  // The primary may still be running here; once the pool drains, its
  // execution must appear in the engine's metrics (same discipline as the
  // parallel patterns' deferred bookkeeping).
  util::ThreadPool::shared().wait_idle();
  const Metrics& m = engine.metrics();
  EXPECT_EQ(m.variant_executions, 2u);
  EXPECT_EQ(m.requests, 1u);
}

TEST(Hedging, FailedPrimaryFallsThroughWithoutBurningTheBudget) {
  Engine engine{{variant("broken-primary",
                         [](const int&) -> Result<int> {
                           return failure(FailureKind::crash, "boom");
                         }),
                 variant("fallback",
                         [](const int& v) -> Result<int> { return v * 10; })},
                accept_all<int, int>()};
  engine.set_obs_label("hedge_fallthrough");
  // A huge budget: if fall-through waited for the hedge deadline this test
  // would time out.
  engine.set_hedge(fast_hedge(10'000'000'000));

  const auto start = std::chrono::steady_clock::now();
  auto r = engine.run(4);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r.value(), 40);
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  // The second launch was a failure reaction, not a latency hedge.
  EXPECT_EQ(engine.metrics().hedged_launches, 0u);
  EXPECT_EQ(engine.metrics().recoveries, 1u);
}

TEST(Hedging, ExhaustionReportsNoAlternatives) {
  Engine engine{{variant("a",
                         [](const int&) -> Result<int> {
                           return failure(FailureKind::crash, "a down");
                         }),
                 variant("b",
                         [](const int&) -> Result<int> {
                           return failure(FailureKind::timeout, "b stuck");
                         })},
                accept_all<int, int>()};
  engine.set_obs_label("hedge_exhausted");
  engine.set_hedge(fast_hedge(1'000'000));

  auto r = engine.run(1);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().kind, FailureKind::no_alternatives);
  EXPECT_EQ(engine.metrics().unrecovered, 1u);
}

TEST(Hedging, RollbackDisablesHedging) {
  int rollbacks_seen = 0;
  typename Engine::Options options;
  options.rollback = [&] { ++rollbacks_seen; };
  options.hedge = fast_hedge(1'000);  // would hedge almost immediately
  Engine engine{{variant("slowish-primary",
                         [](const int&) -> Result<int> {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(10));
                           return failure(FailureKind::crash, "fails anyway");
                         }),
                 variant("fallback",
                         [](const int& v) -> Result<int> { return v; })},
                accept_all<int, int>(), std::move(options)};
  engine.set_obs_label("hedge_rollback_guard");

  auto r = engine.run(9);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r.value(), 9);
  // Sequential semantics: the rollback ran before the second alternative,
  // and no hedge was ever launched despite the tiny budget.
  EXPECT_EQ(rollbacks_seen, 1);
  EXPECT_EQ(engine.metrics().hedged_launches, 0u);
  EXPECT_EQ(engine.metrics().rollbacks, 1u);
}

TEST(Hedging, AcceptanceTestStillGates) {
  // The hedge leg returns fast but its output is rejected; the slowish
  // primary's accepted output must win.
  Engine engine{{variant("primary",
                         [](const int&) -> Result<int> {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(20));
                           return 100;
                         }),
                 variant("liar",
                         [](const int&) -> Result<int> { return -1; })},
                [](const int&, const int& out) { return out >= 0; }};
  engine.set_obs_label("hedge_acceptance");
  engine.set_hedge(fast_hedge(1'000'000));

  auto r = engine.run(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r.value(), 100);
  EXPECT_EQ(engine.last_used(), 0u);
}

TEST(Hedging, CachedHedgedEngineHitsSkipEveryAlternative) {
  std::atomic<int> executions{0};
  Engine engine{{variant("primary",
                         [&](const int& v) -> Result<int> {
                           ++executions;
                           return v + 1;
                         }),
                 variant("fallback",
                         [&](const int& v) -> Result<int> {
                           ++executions;
                           return v + 1;
                         })},
                accept_all<int, int>()};
  engine.set_obs_label("hedge_cached");
  engine.set_hedge(fast_hedge(50'000'000));
  engine.enable_cache();

  for (int i = 0; i < 4; ++i) {
    auto r = engine.run(10);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r.value(), 11);
  }
  util::ThreadPool::shared().wait_idle();
  if (kCacheCompiledIn) {
    EXPECT_EQ(executions.load(), 1);  // one hedged miss, three hits
    EXPECT_EQ(engine.metrics().requests, 4u);
    engine.invalidate_cache();
    (void)engine.run(10);
    util::ThreadPool::shared().wait_idle();
    EXPECT_GE(executions.load(), 2);  // invalidation forced a re-run
  } else {
    EXPECT_GE(executions.load(), 4);
  }
}

}  // namespace
}  // namespace redundancy::core
