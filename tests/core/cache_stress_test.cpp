// RedundancyCache stress — meant for -DREDUNDANCY_SANITIZE=thread builds
// (ctest -L stress). Hammers the single-flight latch from many threads with
// overlapping keys, concurrent cancellations, and epoch invalidations racing
// live flights: the properties under test are "no waiter is ever lost" (every
// get_or_run returns) and "no data race on the flight latch or the shards".
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/redundancy_cache.hpp"
#include "util/thread_pool.hpp"

namespace redundancy::core {
namespace {

TEST(CacheStress, CoalescingChurnWithCancellationsAndInvalidation) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  CacheConfig cfg;
  cfg.capacity = 32;  // small: admission duels and evictions under load
  cfg.shards = 4;
  cfg.label = "stress_churn";
  RedundancyCache<std::uint64_t> cache{cfg};

  constexpr int kThreads = 8;
  constexpr int kIterations = 400;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> leader_runs{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);

  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        // 16 keys across 8 threads: heavy same-key overlap, so flights
        // constantly pick up waiters.
        const std::uint64_t key = static_cast<std::uint64_t>((t + i) % 16);
        util::CancellationToken token;
        if (i % 5 == t % 5) token.cancel();  // some waiters arrive dead
        auto r = cache.get_or_run(key, token, [&]() -> Result<std::uint64_t> {
          leader_runs.fetch_add(1, std::memory_order_relaxed);
          if (key % 7 == 3) {
            return failure(FailureKind::timeout, "transient");
          }
          return key * 3;
        });
        if (r.has_value()) {
          EXPECT_EQ(r.value(), key * 3);
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // One thread strands entries while flights are live.
  std::atomic<bool> stop{false};
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      cache.invalidate_all();
      advance_cache_epoch();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (int t = 0; t < kThreads; ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(completed.load(), kThreads * kIterations);  // nobody lost
  EXPECT_GT(leader_runs.load(), 0u);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads * kIterations);
}

TEST(CacheStress, CancellationStormWakesEveryParkedWaiter) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  CacheConfig cfg;
  cfg.label = "stress_cancel";
  RedundancyCache<int> cache{cfg};

  for (int round = 0; round < 20; ++round) {
    std::atomic<bool> leader_in{false};
    std::atomic<bool> release{false};
    std::thread leader([&] {
      (void)cache.get_or_run(round, [&]() -> Result<int> {
        leader_in.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        return round;
      });
    });
    while (!leader_in.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }

    // Park a crowd on the flight, then cancel them all at once while the
    // leader is still running.
    constexpr int kWaiters = 6;
    util::CancellationToken token;
    std::atomic<int> cancelled_returns{0};
    std::vector<std::thread> waiters;
    waiters.reserve(kWaiters);
    for (int w = 0; w < kWaiters; ++w) {
      waiters.emplace_back([&] {
        auto r = cache.get_or_run(round, token, [&]() -> Result<int> {
          ADD_FAILURE() << "waiter must never become a second leader";
          return -1;
        });
        if (!r.has_value() &&
            r.error().kind == FailureKind::unavailable) {
          cancelled_returns.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.cancel();
    for (auto& w : waiters) w.join();  // every waiter must wake and leave
    EXPECT_EQ(cancelled_returns.load(), kWaiters);

    release.store(true, std::memory_order_release);
    leader.join();
    // The abandoned flight still settled into the cache.
    auto hit = cache.lookup(round);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->value(), round);
  }
}

TEST(CacheStress, PatternPoolWorkersCanWaitOnFlights) {
  if (!kCacheCompiledIn) GTEST_SKIP() << "cache compiled out";
  // Waiters park through ThreadPool::help_until, so pool workers that miss
  // behind a leader keep helping with queued tasks instead of deadlocking.
  CacheConfig cfg;
  cfg.label = "stress_pool_wait";
  RedundancyCache<int> cache{cfg};
  auto& pool = util::ThreadPool::shared();

  constexpr int kTasks = 64;
  std::vector<util::ThreadPool::Task> tasks;
  tasks.reserve(kTasks);
  std::atomic<int> ok{0};
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(util::ThreadPool::Task{[&cache, &ok, i] {
      const int key = i % 4;
      auto r = cache.get_or_run(key, [&]() -> Result<int> {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return key + 1;
      });
      if (r.has_value() && r.value() == key + 1) {
        ok.fetch_add(1, std::memory_order_relaxed);
      }
    }});
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(ok.load(), kTasks);
}

}  // namespace
}  // namespace redundancy::core
