#include "core/acceptance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "techniques/recovery_blocks.hpp"

namespace redundancy::core::acceptance {
namespace {

TEST(Acceptance, InRange) {
  auto test = in_range<int, int>(0, 10);
  EXPECT_TRUE(test(99, 0));
  EXPECT_TRUE(test(99, 10));
  EXPECT_FALSE(test(99, -1));
  EXPECT_FALSE(test(99, 11));
}

TEST(Acceptance, Relation) {
  auto test = relation<double, double>(
      [](const double& x, const double& out) { return out * out <= x + 1e-9; });
  EXPECT_TRUE(test(4.0, 2.0));
  EXPECT_FALSE(test(4.0, 3.0));
}

TEST(Acceptance, InverseCheck) {
  auto test = inverse_check<double, double>(
      [](const double& out) { return out * out; },
      [](const double& a, const double& b) { return std::abs(a - b) < 1e-6; });
  EXPECT_TRUE(test(9.0, 3.0));
  EXPECT_FALSE(test(9.0, 3.01));
}

TEST(Acceptance, Combinators) {
  auto low = in_range<int, int>(0, 5);
  auto high = in_range<int, int>(4, 10);
  auto both = all_of<int, int>(low, high);
  auto either = any_of<int, int>(low, high);
  auto not_low = negate<int, int>(low);
  EXPECT_TRUE(both(0, 4));
  EXPECT_FALSE(both(0, 2));
  EXPECT_TRUE(either(0, 2));
  EXPECT_FALSE(either(0, 20));
  EXPECT_TRUE(not_low(0, 20));
}

TEST(Acceptance, DeadlinePassesFastVariants) {
  auto fast = with_deadline<int, int>(
      make_variant<int, int>("fast",
                             [](const int& x) -> Result<int> { return x; }),
      std::chrono::milliseconds{100});
  EXPECT_TRUE(fast(7).has_value());
}

TEST(Acceptance, DeadlineFailsSlowVariants) {
  auto slow = with_deadline<int, int>(
      make_variant<int, int>("slow",
                             [](const int& x) -> Result<int> {
                               // Busy-wait past the 1 us budget.
                               const auto until =
                                   std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds{2};
                               while (std::chrono::steady_clock::now() < until) {
                               }
                               return x;
                             }),
      std::chrono::microseconds{1});
  auto out = slow(7);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, FailureKind::timeout);
}

TEST(Acceptance, DrivesARecoveryBlock) {
  // sqrt with an inverse acceptance test: the classic invertible pairing.
  auto good = make_variant<double, double>(
      "newton", [](const double& x) -> Result<double> {
        return std::sqrt(x);
      });
  auto bad = make_variant<double, double>(
      "broken", [](const double&) -> Result<double> { return 1.0; });
  techniques::RecoveryBlocks<double, double> rb{
      {bad, good},
      inverse_check<double, double>(
          [](const double& out) { return out * out; },
          [](const double& a, const double& b) {
            return std::abs(a - b) < 1e-6;
          })};
  auto out = rb.run(16.0);
  ASSERT_TRUE(out.has_value());
  EXPECT_NEAR(out.value(), 4.0, 1e-9);
  EXPECT_EQ(rb.last_used_alternate(), 1u);
}

}  // namespace
}  // namespace redundancy::core::acceptance
