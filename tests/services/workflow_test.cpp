#include "services/workflow.hpp"

#include <gtest/gtest.h>

namespace redundancy::services {
namespace {

EndpointPtr constant(std::string id, std::int64_t value) {
  return std::make_shared<Endpoint>(
      std::move(id), Interface{"op", {}, {"v"}},
      [value](const Message&) -> core::Result<Message> {
        return Message{{"v", value}};
      });
}

EndpointPtr failing(std::string id) {
  return std::make_shared<Endpoint>(
      std::move(id), Interface{"op", {}, {"v"}},
      [](const Message&) -> core::Result<Message> {
        return core::failure(core::FailureKind::crash, "bang");
      });
}

/// Endpoint that fails the first `n` calls, then succeeds.
EndpointPtr flaky(std::string id, int n, std::int64_t value) {
  auto counter = std::make_shared<int>(0);
  return std::make_shared<Endpoint>(
      std::move(id), Interface{"op", {}, {"v"}},
      [counter, n, value](const Message&) -> core::Result<Message> {
        if ((*counter)++ < n) {
          return core::failure(core::FailureKind::timeout, "flake");
        }
        return Message{{"v", value}};
      });
}

TEST(Workflow, SequenceThreadsMessages) {
  auto wf = Workflow{
      "seq", sequence({assign("one",
                              [](Message m) {
                                m["x"] = std::int64_t{1};
                                return m;
                              }),
                       assign("two", [](Message m) {
                         m["x"] = std::get<std::int64_t>(m["x"]) + 1;
                         return m;
                       })})};
  auto out = wf.run({});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("x")), 2);
}

TEST(Workflow, SequenceStopsAtFirstFailure) {
  bool reached = false;
  auto wf = Workflow{"seq", sequence({invoke(failing("f")),
                                      assign("later", [&reached](Message m) {
                                        reached = true;
                                        return m;
                                      })})};
  EXPECT_FALSE(wf.run({}).has_value());
  EXPECT_FALSE(reached);
  EXPECT_EQ(wf.metrics().unrecovered, 1u);
}

TEST(Workflow, RetryMasksTransientFailures) {
  auto wf = Workflow{"retry", retry(invoke(flaky("fl", 2, 9)), 5)};
  auto out = wf.run({});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("v")), 9);
  EXPECT_EQ(wf.metrics().recoveries, 1u);
}

TEST(Workflow, RetryGivesUpAfterAttempts) {
  auto wf = Workflow{"retry", retry(invoke(flaky("fl", 10, 9)), 3)};
  EXPECT_FALSE(wf.run({}).has_value());
}

TEST(Workflow, AlternativesActAsRecoveryBlock) {
  auto accept = [](const Message& m) {
    return std::get<std::int64_t>(m.at("v")) > 0;
  };
  auto wf = Workflow{
      "rb", alternatives({invoke(failing("primary")),
                          invoke(constant("bad", -1)),
                          invoke(constant("good", 5))},
                         accept)};
  auto out = wf.run({});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("v")), 5);
  EXPECT_EQ(wf.metrics().recoveries, 1u);
}

TEST(Workflow, AlternativesExhaustedFails) {
  auto wf = Workflow{"rb", alternatives({invoke(failing("a"))},
                                        [](const Message&) { return true; })};
  auto out = wf.run({});
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, core::FailureKind::no_alternatives);
}

TEST(Workflow, ParallelVoteIsNvpOverServices) {
  auto wf = Workflow{
      "nvp", parallel_vote({invoke(constant("v1", 7)),
                            invoke(constant("v2", 7)),
                            invoke(constant("wrong", 8))},
                           core::majority_voter<Message>())};
  auto out = wf.run({});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("v")), 7);
}

TEST(Workflow, ParallelVoteMasksCrashes) {
  auto wf = Workflow{"nvp", parallel_vote({invoke(constant("v1", 7)),
                                           invoke(failing("dead")),
                                           invoke(constant("v2", 7))},
                                          core::majority_voter<Message>())};
  auto out = wf.run({});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(wf.metrics().recoveries, 1u);
}

TEST(Workflow, ScopeRoutesFailureKindsToHandlers) {
  auto wf = Workflow{
      "scope",
      scope(invoke(failing("f")),
            {{core::FailureKind::crash, invoke(constant("handler", 11))}})};
  auto out = wf.run({});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("v")), 11);
  EXPECT_EQ(wf.metrics().recoveries, 1u);
}

TEST(Workflow, ScopeWithoutMatchingHandlerPropagates) {
  auto wf = Workflow{
      "scope",
      scope(invoke(failing("f")),
            {{core::FailureKind::timeout, invoke(constant("handler", 11))}})};
  EXPECT_FALSE(wf.run({}).has_value());
}

TEST(Workflow, SagaCompensatesCompletedStepsInReverse) {
  std::vector<std::string> undo_log;
  auto step = [&undo_log](std::string name, bool fails) {
    SagaStep s;
    s.forward = fails ? invoke(failing(name))
                      : assign(name, [name](Message m) {
                          m[name] = std::int64_t{1};
                          return m;
                        });
    s.compensation = assign("undo-" + name, [&undo_log, name](Message m) {
      undo_log.push_back(name);
      return m;
    });
    return s;
  };
  auto wf = Workflow{
      "saga", saga({step("reserve", false), step("charge", false),
                    step("ship", true)})};
  auto out = wf.run({});
  ASSERT_FALSE(out.has_value());
  // charge completed after reserve, so it is compensated first.
  EXPECT_EQ(undo_log, (std::vector<std::string>{"charge", "reserve"}));
  EXPECT_EQ(wf.metrics().rollbacks, 2u);
}

TEST(Workflow, SagaSucceedsWithoutTouchingCompensations) {
  bool compensated = false;
  SagaStep a{assign("a",
                    [](Message m) {
                      m["a"] = std::int64_t{1};
                      return m;
                    }),
             assign("undo", [&compensated](Message m) {
               compensated = true;
               return m;
             })};
  SagaStep b{assign("b",
                    [](Message m) {
                      m["b"] = std::int64_t{2};
                      return m;
                    }),
             nullptr};  // nothing to undo
  auto wf = Workflow{"saga", saga({a, b})};
  auto out = wf.run({});
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out.value().contains("a"));
  EXPECT_TRUE(out.value().contains("b"));
  EXPECT_FALSE(compensated);
}

TEST(Workflow, SagaCompensationSeesTheStepsOwnOutput) {
  std::int64_t seen = -1;
  SagaStep produce{assign("produce",
                          [](Message m) {
                            m["token"] = std::int64_t{77};
                            return m;
                          }),
                   assign("release", [&seen](Message m) {
                     seen = std::get<std::int64_t>(m.at("token"));
                     return m;
                   })};
  SagaStep boom{invoke(failing("boom")), nullptr};
  auto wf = Workflow{"saga", saga({produce, boom})};
  ASSERT_FALSE(wf.run({}).has_value());
  EXPECT_EQ(seen, 77);  // the compensation got the produced token back
}

TEST(Workflow, ComposedProcess) {
  // sequence( nvp-vote, assign markup, retry(flaky shipper) )
  auto wf = Workflow{
      "checkout",
      sequence(
          {parallel_vote({invoke(constant("p1", 100)),
                          invoke(constant("p2", 100)),
                          invoke(failing("p3"))},
                         core::majority_voter<Message>()),
           assign("markup",
                  [](Message m) {
                    m["v"] = std::get<std::int64_t>(m["v"]) + 10;
                    return m;
                  }),
           retry(invoke(flaky("ship", 1, 1)), 3)})};
  auto out = wf.run({});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(wf.metrics().recoveries, 2u);  // vote masked + retry recovered
}

}  // namespace
}  // namespace redundancy::services
