#include <gtest/gtest.h>

#include "services/binding.hpp"
#include "services/converter.hpp"
#include "services/registry.hpp"

namespace redundancy::services {
namespace {

Interface quote_iface() {
  return Interface{"quote", {"symbol"}, {"price"}};
}

EndpointPtr make_quote(std::string id, std::int64_t price, Qos qos = {}) {
  return std::make_shared<Endpoint>(
      std::move(id), quote_iface(),
      [price](const Message&) -> core::Result<Message> {
        return Message{{"price", price}};
      },
      qos);
}

TEST(Endpoint, CallRunsHandlerAndTracksQos) {
  auto ep = make_quote("q1", 100);
  auto out = ep->call({{"symbol", std::string{"ACME"}}});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("price")), 100);
  EXPECT_EQ(ep->calls(), 1u);
  EXPECT_EQ(ep->failures(), 0u);
  EXPECT_GT(ep->total_latency_ms(), 0.0);
}

TEST(Endpoint, UnavailabilityFollowsQos) {
  auto ep = make_quote("down", 1, Qos{.mean_latency_ms = 1.0, .availability = 0.0});
  auto out = ep->call({});
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error().kind, core::FailureKind::unavailable);
  EXPECT_EQ(ep->failures(), 1u);
}

TEST(Endpoint, KillDropsAvailabilityToZero) {
  auto ep = make_quote("q", 1);
  ep->kill();
  EXPECT_FALSE(ep->call({}).has_value());
}

TEST(Interface, SimilarityScoring) {
  const Interface wanted = quote_iface();
  EXPECT_DOUBLE_EQ(similarity(wanted, wanted), 1.0);
  EXPECT_DOUBLE_EQ(
      similarity(wanted, Interface{"other", {"symbol"}, {"price"}}), 0.0);
  // Fully renamed fields: no name overlap, but positionally mappable.
  const Interface renamed{"quote", {"ticker"}, {"value"}};
  EXPECT_DOUBLE_EQ(similarity(wanted, renamed), 0.5);
  const Interface partial{"quote", {"symbol"}, {"value"}};
  EXPECT_DOUBLE_EQ(similarity(wanted, partial), 0.75);
  // A provider with fewer input slots than we need is not mappable at all.
  const Interface narrower{"quote", {}, {"price"}};
  EXPECT_DOUBLE_EQ(similarity(Interface{"quote", {"symbol"}, {"price"}},
                              narrower),
                   0.5);  // outputs exact, inputs unmappable
}

TEST(Registry, ExactAndSimilarLookup) {
  Registry reg;
  reg.add(make_quote("a", 1));
  reg.add(std::make_shared<Endpoint>(
      "b", Interface{"quote", {"ticker"}, {"price"}},
      [](const Message&) -> core::Result<Message> {
        return Message{{"price", std::int64_t{2}}};
      }));
  EXPECT_EQ(reg.exact_matches(quote_iface()).size(), 1u);
  auto similar = reg.similar_matches(quote_iface(), 0.4);
  ASSERT_EQ(similar.size(), 2u);
  EXPECT_EQ(similar[0].endpoint->id(), "a");  // exact first
  EXPECT_DOUBLE_EQ(similar[0].score, 1.0);
  EXPECT_DOUBLE_EQ(similar[1].score, 0.75);
  EXPECT_EQ(reg.by_id("b")->id(), "b");
  EXPECT_EQ(reg.by_id("zzz"), nullptr);
}

TEST(Converter, DeriveMappingByNameThenPosition) {
  const Interface wanted{"op", {"x", "y"}, {"r"}};
  const Interface offered{"op", {"y", "a"}, {"result"}};
  auto map = derive_mapping(wanted, offered);
  ASSERT_TRUE(map.has_value());
  EXPECT_EQ(map->request.at("y"), "y");   // exact name match
  EXPECT_EQ(map->request.at("x"), "a");   // positional fallback
  EXPECT_EQ(map->response.at("result"), "r");
}

TEST(Converter, RejectsDifferentOperations) {
  EXPECT_FALSE(derive_mapping(Interface{"a", {}, {}}, Interface{"b", {}, {}}));
}

TEST(Converter, RejectsNarrowerProviders) {
  const Interface wanted{"op", {"x", "y"}, {"r"}};
  const Interface offered{"op", {"only"}, {"r"}};
  EXPECT_FALSE(derive_mapping(wanted, offered).has_value());
}

TEST(Converter, RenameFieldsPassesUnmappedThrough) {
  Message msg{{"a", std::int64_t{1}}, {"keep", std::int64_t{2}}};
  const auto renamed = rename_fields(msg, {{"a", "b"}});
  EXPECT_EQ(std::get<std::int64_t>(renamed.at("b")), 1);
  EXPECT_EQ(std::get<std::int64_t>(renamed.at("keep")), 2);
  EXPECT_FALSE(renamed.contains("a"));
}

TEST(Converter, ConvertAdaptsRequestAndResponse) {
  auto provider = std::make_shared<Endpoint>(
      "prov", Interface{"quote", {"ticker"}, {"value"}},
      [](const Message& m) -> core::Result<Message> {
        EXPECT_TRUE(m.contains("ticker"));
        return Message{{"value", std::int64_t{7}}};
      });
  FieldMap mapping;
  mapping.request["symbol"] = "ticker";
  mapping.response["value"] = "price";
  auto handler = convert(provider, mapping);
  auto out = handler({{"symbol", std::string{"X"}}});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("price")), 7);
}

TEST(FieldMap, IdentityDetection) {
  FieldMap id;
  id.request["a"] = "a";
  EXPECT_TRUE(id.identity());
  id.request["b"] = "c";
  EXPECT_FALSE(id.identity());
}

TEST(DynamicBinding, PrefersExactAndSurvivesFailure) {
  Registry reg;
  auto primary = make_quote("primary", 10);
  auto spare = make_quote("spare", 20);
  reg.add(primary);
  reg.add(spare);
  DynamicBinding binding{quote_iface(), reg};
  auto out = binding.call({{"symbol", std::string{"A"}}});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(binding.current()->id(), "primary");
  primary->kill();
  out = binding.call({{"symbol", std::string{"A"}}});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("price")), 20);
  EXPECT_EQ(binding.current()->id(), "spare");
  EXPECT_EQ(binding.rebinds(), 1u);
}

TEST(DynamicBinding, FallsBackToConvertedSimilarInterface) {
  Registry reg;
  auto primary = make_quote("primary", 10);
  reg.add(primary);
  reg.add(std::make_shared<Endpoint>(
      "adaptable", Interface{"quote", {"symbol"}, {"value"}},
      [](const Message&) -> core::Result<Message> {
        return Message{{"value", std::int64_t{33}}};
      }));
  DynamicBinding binding{quote_iface(), reg};
  primary->kill();
  auto out = binding.call({{"symbol", std::string{"A"}}});
  ASSERT_TRUE(out.has_value());
  // The converter mapped "value" back to our "price" vocabulary.
  EXPECT_EQ(std::get<std::int64_t>(out.value().at("price")), 33);
  EXPECT_EQ(binding.converted_rebinds(), 1u);
}

TEST(DynamicBinding, ExhaustedRegistryReportsUnavailable) {
  Registry reg;
  auto only = make_quote("only", 1);
  reg.add(only);
  DynamicBinding binding{quote_iface(), reg};
  only->kill();
  auto out = binding.call({});
  ASSERT_FALSE(out.has_value());
}

TEST(DynamicBinding, StatefulSubstituteGetsSessionReplay) {
  Registry reg;
  auto primary = make_quote("primary", 10);
  std::vector<Message> seen;
  auto stateful = std::make_shared<Endpoint>(
      "stateful", quote_iface(),
      [&seen](const Message& m) -> core::Result<Message> {
        seen.push_back(m);
        return Message{{"price", std::int64_t{5}}};
      });
  stateful->set_stateful(true);
  reg.add(primary);
  reg.add(stateful);
  DynamicBinding binding{quote_iface(), reg};
  (void)binding.call({{"symbol", std::string{"A"}}});
  (void)binding.call({{"symbol", std::string{"B"}}});
  primary->kill();
  (void)binding.call({{"symbol", std::string{"C"}}});
  // Replay delivered A and B before the live C call.
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(std::get<std::string>(seen[0].at("symbol")), "A");
  EXPECT_EQ(std::get<std::string>(seen[1].at("symbol")), "B");
  EXPECT_EQ(std::get<std::string>(seen[2].at("symbol")), "C");
}

TEST(DynamicBinding, QosAwareSelectionPrefersFastEndpoints) {
  Registry reg;
  reg.add(make_quote("slow", 1, Qos{.mean_latency_ms = 200.0, .availability = 1.0}));
  reg.add(make_quote("fast", 2, Qos{.mean_latency_ms = 5.0, .availability = 1.0}));
  DynamicBinding::Options opts;
  opts.prefer_fast = true;
  DynamicBinding binding{quote_iface(), reg, opts};
  auto out = binding.call({});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(binding.current()->id(), "fast");
  // Without the QoS preference, registration order wins.
  DynamicBinding plain{quote_iface(), reg};
  (void)plain.call({});
  EXPECT_EQ(plain.current()->id(), "slow");
}

TEST(DynamicBinding, QosPreferenceNeverTrumpsInterfaceFit) {
  Registry reg;
  reg.add(make_quote("exact-slow", 1,
                     Qos{.mean_latency_ms = 500.0, .availability = 1.0}));
  reg.add(std::make_shared<Endpoint>(
      "similar-fast", Interface{"quote", {"ticker"}, {"price"}},
      [](const Message&) -> core::Result<Message> {
        return Message{{"price", std::int64_t{3}}};
      },
      Qos{.mean_latency_ms = 1.0, .availability = 1.0}));
  DynamicBinding::Options opts;
  opts.prefer_fast = true;
  DynamicBinding binding{quote_iface(), reg, opts};
  (void)binding.call({});
  EXPECT_EQ(binding.current()->id(), "exact-slow");  // similarity tier first
}

TEST(ValueToString, AllAlternatives) {
  EXPECT_EQ(to_string(Value{std::int64_t{4}}), "4");
  EXPECT_EQ(to_string(Value{std::string{"s"}}), "s");
  EXPECT_EQ(to_string(Value{2.5}), "2.5");
}

}  // namespace
}  // namespace redundancy::services
