#include "sql/chaos.hpp"

#include <gtest/gtest.h>

namespace redundancy::sql {
namespace {

TEST(ChaoticStore, NoChaosIsTransparent) {
  auto store = make_chaotic_store(make_btree_store(), {.seed = 1});
  ASSERT_TRUE(store->create_table("t", {"id", "v"}).has_value());
  ASSERT_TRUE(store->insert("t", {1, 10}).has_value());
  EXPECT_EQ(store->select("t", std::nullopt).value(),
            (std::vector<Row>{{1, 10}}));
  EXPECT_EQ(store->engine(), "chaotic");
}

TEST(ChaoticStore, LostMutationsAreAcknowledgedButAbsent) {
  auto store = make_chaotic_store(make_btree_store(),
                                  {.lose_mutation_probability = 1.0, .seed = 1});
  ASSERT_TRUE(store->create_table("t", {"id", "v"}).has_value());
  ASSERT_TRUE(store->insert("t", {1, 10}).has_value());  // acknowledged...
  EXPECT_TRUE(store->select("t", std::nullopt).value().empty());  // ...gone
}

TEST(ChaoticStore, LostUpdateReportsPlausibleAffectedCount) {
  auto store = make_chaotic_store(make_btree_store(),
                                  {.lose_mutation_probability = 0.0, .seed = 1});
  ASSERT_TRUE(store->create_table("t", {"id", "v"}).has_value());
  ASSERT_TRUE(store->insert("t", {1, 10}).has_value());
  auto lossy = make_chaotic_store(make_btree_store(),
                                  {.lose_mutation_probability = 1.0, .seed = 1});
  ASSERT_TRUE(lossy->create_table("t", {"id", "v"}).has_value());
  // With total mutation loss even the setup insert is dropped, so the
  // "affected" count reported for an update is what a scan would say: 0.
  auto affected =
      lossy->update("t", Condition{"id", Condition::Op::eq, 1}, "v", 9);
  ASSERT_TRUE(affected.has_value());
  EXPECT_EQ(affected.value(), 0);
}

TEST(ChaoticStore, CorruptedReadsDifferFromTruth) {
  auto store = make_chaotic_store(make_btree_store(),
                                  {.corrupt_read_probability = 1.0, .seed = 4});
  ASSERT_TRUE(store->create_table("t", {"id", "v"}).has_value());
  ASSERT_TRUE(store->insert("t", {1, 10}).has_value());
  auto rows = store->select("t", std::nullopt);
  ASSERT_TRUE(rows.has_value());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_NE(rows.value()[0][1], 10);  // some cell was flipped
}

TEST(ChaoticStore, CorruptionIsReadOnlyStateStaysClean) {
  auto store = make_chaotic_store(make_btree_store(),
                                  {.corrupt_read_probability = 1.0, .seed = 4});
  auto clean = make_btree_store();
  for (auto* s : {store.get(), clean.get()}) {
    ASSERT_TRUE(s->create_table("t", {"id", "v"}).has_value());
    ASSERT_TRUE(s->insert("t", {1, 10}).has_value());
  }
  // The digest sees the true underlying state, not the corrupted reads.
  EXPECT_EQ(store->state_digest().value(), clean->state_digest().value());
}

TEST(ChaoticStore, DeterministicPerSeed) {
  auto run = [] {
    auto store = make_chaotic_store(
        make_btree_store(),
        {.lose_mutation_probability = 0.5, .corrupt_read_probability = 0.5,
         .seed = 9});
    (void)store->create_table("t", {"id", "v"});
    std::uint64_t trace = 0;
    for (std::int64_t i = 0; i < 50; ++i) {
      (void)store->insert("t", {i, i});
      auto rows = store->select("t", std::nullopt);
      if (rows.has_value()) {
        for (const Row& r : rows.value()) {
          trace = trace * 31 + static_cast<std::uint64_t>(r[1]);
        }
      }
    }
    return trace;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace redundancy::sql
