// Per-engine behaviour tests plus the differential property test: the
// three independently designed engines must be observationally identical —
// same outputs, same state digests — under arbitrary operation sequences.
// (That equivalence is exactly what makes them usable as NVP versions.)
#include <gtest/gtest.h>

#include "sql/store.hpp"
#include "util/rng.hpp"

namespace redundancy::sql {
namespace {

using Factory = StorePtr (*)();

class EngineTest : public ::testing::TestWithParam<Factory> {
 protected:
  StorePtr store_ = GetParam()();
};

TEST_P(EngineTest, CreateInsertSelect) {
  ASSERT_TRUE(store_->create_table("t", {"id", "qty"}).has_value());
  ASSERT_TRUE(store_->insert("t", {2, 20}).has_value());
  ASSERT_TRUE(store_->insert("t", {1, 10}).has_value());
  auto rows = store_->select("t");
  ASSERT_TRUE(rows.has_value());
  // Ordered by primary key regardless of insertion order.
  EXPECT_EQ(rows.value(), (std::vector<Row>{{1, 10}, {2, 20}}));
}

TEST_P(EngineTest, DuplicateKeyRejected) {
  ASSERT_TRUE(store_->create_table("t", {"id", "qty"}).has_value());
  ASSERT_TRUE(store_->insert("t", {1, 10}).has_value());
  EXPECT_FALSE(store_->insert("t", {1, 99}).has_value());
  EXPECT_EQ(store_->select("t").value().size(), 1u);
}

TEST_P(EngineTest, ArityChecked) {
  ASSERT_TRUE(store_->create_table("t", {"id", "qty"}).has_value());
  EXPECT_FALSE(store_->insert("t", {1}).has_value());
  EXPECT_FALSE(store_->insert("t", {1, 2, 3}).has_value());
}

TEST_P(EngineTest, SelectWithConditions) {
  ASSERT_TRUE(store_->create_table("t", {"id", "qty"}).has_value());
  for (std::int64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(store_->insert("t", {i, i * 10}).has_value());
  }
  EXPECT_EQ(store_->select("t", Condition{"id", Condition::Op::eq, 3})
                .value(),
            (std::vector<Row>{{3, 30}}));
  EXPECT_EQ(store_->select("t", Condition{"qty", Condition::Op::gt, 30})
                .value(),
            (std::vector<Row>{{4, 40}, {5, 50}}));
  EXPECT_EQ(store_->select("t", Condition{"id", Condition::Op::lt, 3})
                .value()
                .size(),
            2u);
}

TEST_P(EngineTest, UpdateAffectsMatchingRows) {
  ASSERT_TRUE(store_->create_table("t", {"id", "qty"}).has_value());
  for (std::int64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(store_->insert("t", {i, 0}).has_value());
  }
  auto affected =
      store_->update("t", Condition{"id", Condition::Op::gt, 2}, "qty", 7);
  ASSERT_TRUE(affected.has_value());
  EXPECT_EQ(affected.value(), 2);
  EXPECT_EQ(store_->select("t").value(),
            (std::vector<Row>{{1, 0}, {2, 0}, {3, 7}, {4, 7}}));
}

TEST_P(EngineTest, PrimaryKeyUpdateRekeysAtomically) {
  ASSERT_TRUE(store_->create_table("t", {"id", "qty"}).has_value());
  ASSERT_TRUE(store_->insert("t", {1, 10}).has_value());
  ASSERT_TRUE(store_->insert("t", {2, 20}).has_value());
  // Legal re-key.
  auto ok = store_->update("t", Condition{"id", Condition::Op::eq, 1}, "id", 9);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(store_->select("t").value(),
            (std::vector<Row>{{2, 20}, {9, 10}}));
  // Collision: must fail without changing anything.
  auto bad = store_->update("t", Condition{"id", Condition::Op::eq, 9}, "id", 2);
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(store_->select("t").value(),
            (std::vector<Row>{{2, 20}, {9, 10}}));
}

TEST_P(EngineTest, RemoveReportsAffected) {
  ASSERT_TRUE(store_->create_table("t", {"id", "qty"}).has_value());
  for (std::int64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(store_->insert("t", {i, i}).has_value());
  }
  auto removed = store_->remove("t", Condition{"id", Condition::Op::lt, 4});
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed.value(), 3);
  EXPECT_EQ(store_->select("t").value().size(), 2u);
}

TEST_P(EngineTest, ErrorsAreTyped) {
  EXPECT_FALSE(store_->insert("nope", {1}).has_value());
  EXPECT_FALSE(store_->select("nope").has_value());
  ASSERT_TRUE(store_->create_table("t", {"id"}).has_value());
  EXPECT_FALSE(store_->create_table("t", {"id"}).has_value());
  EXPECT_FALSE(
      store_->select("t", Condition{"ghost", Condition::Op::eq, 1}).has_value());
}

TEST_P(EngineTest, DigestIsOrderInsensitiveAndStateSensitive) {
  auto other = GetParam()();
  ASSERT_TRUE(store_->create_table("t", {"id", "qty"}).has_value());
  ASSERT_TRUE(other->create_table("t", {"id", "qty"}).has_value());
  ASSERT_TRUE(store_->insert("t", {1, 10}).has_value());
  ASSERT_TRUE(store_->insert("t", {2, 20}).has_value());
  ASSERT_TRUE(other->insert("t", {2, 20}).has_value());
  ASSERT_TRUE(other->insert("t", {1, 10}).has_value());
  EXPECT_EQ(store_->state_digest().value(), other->state_digest().value());
  ASSERT_TRUE(other->remove("t", Condition{"id", Condition::Op::eq, 1})
                  .has_value());
  EXPECT_NE(store_->state_digest().value(), other->state_digest().value());
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineTest,
                         ::testing::Values(&make_vector_store,
                                           &make_btree_store,
                                           &make_log_store));

// --- differential property test ---------------------------------------------

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, EnginesAreObservationallyIdentical) {
  util::Rng rng{GetParam()};
  std::vector<StorePtr> engines;
  engines.push_back(make_vector_store());
  engines.push_back(make_btree_store());
  engines.push_back(make_log_store());
  for (auto& e : engines) {
    ASSERT_TRUE(e->create_table("t", {"id", "a", "b"}).has_value());
  }
  const std::vector<std::string> columns{"id", "a", "b"};
  auto random_condition = [&rng, &columns] {
    return Condition{columns[rng.index(3)],
                     static_cast<Condition::Op>(rng.below(3)),
                     rng.between(-2, 12)};
  };
  for (int step = 0; step < 300; ++step) {
    const auto roll = rng.below(10);
    // Apply the same operation to all engines; compare full outcomes.
    if (roll < 4) {
      Row row{rng.between(0, 15), rng.between(0, 9), rng.between(0, 9)};
      auto r0 = engines[0]->insert("t", row);
      for (std::size_t e = 1; e < engines.size(); ++e) {
        auto re = engines[e]->insert("t", row);
        ASSERT_EQ(r0.has_value(), re.has_value()) << "step " << step;
      }
    } else if (roll < 6) {
      const auto cond = random_condition();
      const auto col = columns[rng.index(3)];
      const auto value = rng.between(0, 15);
      auto r0 = engines[0]->update("t", cond, col, value);
      for (std::size_t e = 1; e < engines.size(); ++e) {
        auto re = engines[e]->update("t", cond, col, value);
        ASSERT_EQ(r0.has_value(), re.has_value()) << "step " << step;
        if (r0.has_value()) {
          ASSERT_EQ(r0.value(), re.value()) << "step " << step;
        }
      }
    } else if (roll < 7) {
      const auto cond = random_condition();
      auto r0 = engines[0]->remove("t", cond);
      for (std::size_t e = 1; e < engines.size(); ++e) {
        ASSERT_EQ(engines[e]->remove("t", cond).value(), r0.value())
            << "step " << step;
      }
    } else {
      const bool all = rng.chance(0.3);
      const std::optional<Condition> cond =
          all ? std::nullopt : std::optional<Condition>{random_condition()};
      auto r0 = engines[0]->select("t", cond);
      for (std::size_t e = 1; e < engines.size(); ++e) {
        ASSERT_EQ(engines[e]->select("t", cond).value(), r0.value())
            << "step " << step;
      }
    }
    // State digests must agree after every step.
    const auto d0 = engines[0]->state_digest().value();
    for (std::size_t e = 1; e < engines.size(); ++e) {
      ASSERT_EQ(engines[e]->state_digest().value(), d0) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace redundancy::sql
