#include "env/checkpoint.hpp"

#include <gtest/gtest.h>

namespace redundancy::env {
namespace {

/// A small stateful subject for round-trip tests.
class Counter final : public Checkpointable {
 public:
  std::int64_t value = 0;
  std::string label;

  [[nodiscard]] util::ByteBuffer snapshot() const override {
    util::ByteBuffer buf;
    buf.put(value);
    buf.put_string(label);
    return buf;
  }
  void restore(const util::ByteBuffer& state) override {
    auto r = state.reader();
    value = r.get<std::int64_t>();
    label = r.get_string();
  }
};

TEST(CheckpointStore, RoundTrip) {
  Counter c;
  c.value = 42;
  c.label = "hello";
  CheckpointStore store;
  store.capture(c);
  c.value = 0;
  c.label = "clobbered";
  ASSERT_TRUE(store.restore_latest(c).has_value());
  EXPECT_EQ(c.value, 42);
  EXPECT_EQ(c.label, "hello");
}

TEST(CheckpointStore, RestoreBySequence) {
  Counter c;
  CheckpointStore store{8};
  c.value = 1;
  const auto s1 = store.capture(c);
  c.value = 2;
  const auto s2 = store.capture(c);
  c.value = 99;
  ASSERT_TRUE(store.restore(s1, c).has_value());
  EXPECT_EQ(c.value, 1);
  ASSERT_TRUE(store.restore(s2, c).has_value());
  EXPECT_EQ(c.value, 2);
}

TEST(CheckpointStore, RingEvictsOldest) {
  Counter c;
  CheckpointStore store{2};
  c.value = 1;
  const auto s1 = store.capture(c);
  c.value = 2;
  store.capture(c);
  c.value = 3;
  store.capture(c);
  EXPECT_EQ(store.size(), 2u);
  auto gone = store.restore(s1, c);
  ASSERT_FALSE(gone.has_value());
  EXPECT_EQ(gone.error().kind, core::FailureKind::unavailable);
}

TEST(CheckpointStore, EmptyStoreCannotRestore) {
  Counter c;
  CheckpointStore store;
  EXPECT_FALSE(store.restore_latest(c).has_value());
  EXPECT_TRUE(store.empty());
  EXPECT_FALSE(store.latest_seq().has_value());
}

TEST(CheckpointStore, CorruptedCheckpointFailsCrc) {
  Counter c;
  c.value = 42;
  CheckpointStore store;
  const auto seq = store.capture(c);
  store.corrupt(seq, 3);
  c.value = 0;
  auto restored = store.restore_latest(c);
  ASSERT_FALSE(restored.has_value());
  EXPECT_EQ(restored.error().kind, core::FailureKind::corrupted_state);
  EXPECT_EQ(c.value, 0);  // subject untouched by the failed restore
}

TEST(CheckpointStore, BytesRetainedTracksState) {
  Counter c;
  c.label = std::string(100, 'x');
  CheckpointStore store{4};
  EXPECT_EQ(store.bytes_retained(), 0u);
  store.capture(c);
  EXPECT_GT(store.bytes_retained(), 100u);
}

TEST(CheckpointStore, LatestSeqAdvances) {
  Counter c;
  CheckpointStore store;
  const auto a = store.capture(c);
  const auto b = store.capture(c);
  EXPECT_LT(a, b);
  EXPECT_EQ(store.latest_seq(), b);
}

}  // namespace
}  // namespace redundancy::env
