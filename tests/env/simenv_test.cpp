#include "env/simenv.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace redundancy::env {
namespace {

TEST(SimEnv, SignatureStableAndKnobSensitive) {
  SimEnv a, b;
  EXPECT_EQ(a.signature(), b.signature());
  b.sched_seed = 99;
  EXPECT_NE(a.signature(), b.signature());
  b = a;
  b.alloc = AllocStrategy::padded;
  EXPECT_NE(a.signature(), b.signature());
  b = a;
  b.admitted_load = 0.5;
  EXPECT_NE(a.signature(), b.signature());
}

TEST(SimEnv, FifoDeliveryIsIdentity) {
  SimEnv e;
  const auto order = e.delivery_order(5);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SimEnv, ShuffledDeliveryIsDeterministicPermutation) {
  SimEnv e;
  e.msg_order = MessageOrder::shuffled;
  auto a = e.delivery_order(20);
  auto b = e.delivery_order(20);
  EXPECT_EQ(a, b);  // same env -> same order
  auto sorted = a;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::size_t> expect(20);
  for (std::size_t i = 0; i < 20; ++i) expect[i] = i;
  EXPECT_EQ(sorted, expect);
  e.sched_seed = 77;
  EXPECT_NE(e.delivery_order(20), a);  // different env -> different order
}

TEST(Perturbations, MenuCoversTheRxMedicines) {
  const auto menu = standard_perturbations();
  ASSERT_EQ(menu.size(), 6u);
  SimEnv base;
  for (const auto& p : menu) {
    const SimEnv changed = p.apply(base);
    EXPECT_NE(changed.signature(), base.signature()) << p.name;
  }
}

TEST(Perturbations, PadAllocationsGrows) {
  const auto menu = standard_perturbations();
  SimEnv e;
  e = menu[0].apply(e);
  EXPECT_EQ(e.alloc, AllocStrategy::padded);
  const auto first = e.pad_bytes;
  e = menu[0].apply(e);
  EXPECT_GT(e.pad_bytes, first);
}

TEST(Perturbations, ShedLoadHalves) {
  const auto menu = standard_perturbations();
  SimEnv e;
  e.admitted_load = 1.0;
  e = menu[5].apply(e);
  EXPECT_DOUBLE_EQ(e.admitted_load, 0.5);
}

TEST(OverflowCondition, PaddingMasksTheBug) {
  SimEnv e;
  auto bug = overflow_condition(e, 32);
  EXPECT_TRUE(bug());  // compact allocation, no guard
  e.alloc = AllocStrategy::padded;
  e.pad_bytes = 16;
  EXPECT_TRUE(bug());  // not enough padding
  e.pad_bytes = 64;
  EXPECT_FALSE(bug());
  e.alloc = AllocStrategy::randomized;
  EXPECT_FALSE(bug());
}

TEST(RaceCondition, DeterministicPerScheduleAndCurableByRescheduling) {
  SimEnv e;
  auto bug = race_condition(e, 0.5);
  const bool first = bug();
  EXPECT_EQ(bug(), first);  // same schedule, same outcome
  // Some schedule flips the outcome.
  bool flipped = false;
  for (std::uint64_t s = 0; s < 64 && !flipped; ++s) {
    e.sched_seed = s;
    flipped = bug() != first;
  }
  EXPECT_TRUE(flipped);
}

TEST(RaceCondition, FractionOfSchedulesMatches) {
  SimEnv e;
  auto bug = race_condition(e, 0.3);
  int fired = 0;
  for (std::uint64_t s = 0; s < 10'000; ++s) {
    e.sched_seed = s;
    fired += bug() ? 1 : 0;
  }
  EXPECT_NEAR(fired / 10'000.0, 0.3, 0.02);
}

TEST(OrderCondition, OnlyUnderFifo) {
  SimEnv e;
  auto bug = order_condition(e);
  EXPECT_TRUE(bug());
  e.msg_order = MessageOrder::shuffled;
  EXPECT_FALSE(bug());
}

TEST(OverloadCondition, FiresAboveCeiling) {
  SimEnv e;
  e.admitted_load = 1.0;
  auto bug = overload_condition(e, 0.7);
  EXPECT_TRUE(bug());
  e.admitted_load = 0.5;
  EXPECT_FALSE(bug());
}

TEST(SimEnv, DescribeMentionsKnobs) {
  SimEnv e;
  e.alloc = AllocStrategy::padded;
  const auto d = e.describe();
  EXPECT_NE(d.find("padded"), std::string::npos);
  EXPECT_NE(d.find("fifo"), std::string::npos);
}

}  // namespace
}  // namespace redundancy::env
