#include "env/aging.hpp"

#include <gtest/gtest.h>

namespace redundancy::env {
namespace {

TEST(AgingProcess, HazardGrowsWithAge) {
  AgingConfig cfg;
  cfg.base_hazard = 0.001;
  AgingProcess proc{cfg, 1};
  const double young = proc.hazard();
  while (!proc.crashed() && proc.age_fraction() < 0.8) (void)proc.serve();
  EXPECT_GT(proc.hazard(), young);
}

TEST(AgingProcess, EventuallyCrashesAndRefusesService) {
  AgingConfig cfg;
  cfg.capacity = 500.0;
  cfg.mean_leak = 10.0;
  AgingProcess proc{cfg, 2};
  std::size_t served = 0;
  while (!proc.crashed() && served < 100'000) {
    if (proc.serve().has_value()) ++served;
  }
  ASSERT_TRUE(proc.crashed());
  auto refused = proc.serve();
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(refused.error().kind, core::FailureKind::unavailable);
  EXPECT_EQ(refused.error().cause, core::FaultClass::aging);
}

TEST(AgingProcess, RebootRestoresYouth) {
  AgingConfig cfg;
  cfg.capacity = 500.0;
  AgingProcess proc{cfg, 3};
  while (!proc.crashed()) (void)proc.serve();
  const double before = proc.clock();
  proc.reboot();
  EXPECT_FALSE(proc.crashed());
  EXPECT_DOUBLE_EQ(proc.consumed(), 0.0);
  EXPECT_DOUBLE_EQ(proc.clock(), before + cfg.reboot_time);
  EXPECT_TRUE(proc.serve().has_value() || proc.crashed());
}

TEST(AgingProcess, YoungProcessRarelyFails) {
  AgingConfig cfg;
  cfg.capacity = 1e9;  // effectively never ages
  cfg.base_hazard = 0.0;
  AgingProcess proc{cfg, 4};
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(proc.serve().has_value());
  }
}

TEST(SimulateCompletion, CheckpointingBeatsNoneUnderAging) {
  AgingConfig aging;
  aging.capacity = 2000.0;
  aging.mean_leak = 2.0;
  CompletionConfig none;
  none.total_work = 3000.0;
  CompletionConfig ckpt = none;
  ckpt.checkpoint_every = 100.0;
  const auto t_none = simulate_completion(aging, none, 7).total_time;
  const auto t_ckpt = simulate_completion(aging, ckpt, 7).total_time;
  EXPECT_LT(t_ckpt, t_none);
}

TEST(SimulateCompletion, RejuvenationReducesCrashes) {
  AgingConfig aging;
  aging.capacity = 1500.0;
  aging.mean_leak = 2.0;
  aging.hazard_scale = 0.1;
  CompletionConfig plain;
  plain.total_work = 4000.0;
  plain.checkpoint_every = 100.0;
  CompletionConfig rejuv = plain;
  rejuv.rejuvenate_every = 400.0;
  const auto without = simulate_completion(aging, plain, 11);
  const auto with = simulate_completion(aging, rejuv, 11);
  EXPECT_LT(with.crashes, without.crashes);
  EXPECT_GT(with.rejuvenations, 0u);
}

TEST(SimulateCompletion, ReportsCheckpointCounts) {
  AgingConfig aging;
  aging.capacity = 1e9;
  aging.base_hazard = 0.0;
  CompletionConfig cfg;
  cfg.total_work = 1000.0;
  cfg.checkpoint_every = 100.0;
  const auto run = simulate_completion(aging, cfg, 13);
  EXPECT_EQ(run.crashes, 0u);
  EXPECT_GE(run.checkpoints, 9u);
  EXPECT_NEAR(run.total_time, 1000.0 + 5.0 * static_cast<double>(run.checkpoints),
              1.0);
}

}  // namespace
}  // namespace redundancy::env
