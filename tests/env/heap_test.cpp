#include "env/heap_model.hpp"

#include <gtest/gtest.h>

namespace redundancy::env {
namespace {

std::vector<std::byte> bytes(std::size_t n) {
  return std::vector<std::byte>(n, std::byte{0xAB});
}

TEST(HeapModel, MallocAndFree) {
  HeapModel heap{1024};
  auto a = heap.malloc(64);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(heap.live_blocks(), 1u);
  EXPECT_EQ(heap.bytes_in_use(), 64u);
  EXPECT_EQ(heap.block_size(a.value()), 64u);
  EXPECT_TRUE(heap.free(a.value()).has_value());
  EXPECT_EQ(heap.live_blocks(), 0u);
}

TEST(HeapModel, MallocZeroFails) {
  HeapModel heap{1024};
  EXPECT_FALSE(heap.malloc(0).has_value());
}

TEST(HeapModel, ExhaustionReported) {
  HeapModel heap{128};
  ASSERT_TRUE(heap.malloc(100).has_value());
  auto second = heap.malloc(100);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().kind, core::FailureKind::unavailable);
}

TEST(HeapModel, DoubleFreeIsCrash) {
  HeapModel heap{128};
  auto a = heap.malloc(16);
  ASSERT_TRUE(heap.free(a.value()).has_value());
  EXPECT_FALSE(heap.free(a.value()).has_value());
}

TEST(HeapModel, CompactLayoutOverflowClobbersNeighbour) {
  HeapModel heap{1024, SimEnv{}};  // compact by default
  auto a = heap.malloc(16);
  auto b = heap.malloc(16);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Write 32 bytes into the 16-byte block a: spills into b.
  EXPECT_TRUE(heap.write_raw(a.value(), 0, bytes(32)).has_value());
  EXPECT_TRUE(heap.is_corrupted(b.value()));
  EXPECT_FALSE(heap.is_corrupted(a.value()));
  EXPECT_EQ(heap.corrupted_blocks(), 1u);
}

TEST(HeapModel, GuardPaddingAbsorbsSmallOverflow) {
  SimEnv env;
  env.alloc = AllocStrategy::padded;
  env.pad_bytes = 64;
  HeapModel heap{4096, env};
  auto a = heap.malloc(16);
  auto b = heap.malloc(16);
  // 32-byte overflow fits inside the 64-byte guard: neighbour untouched.
  EXPECT_TRUE(heap.write_raw(a.value(), 0, bytes(48)).has_value());
  EXPECT_FALSE(heap.is_corrupted(b.value()));
  // A huge overflow still punches through.
  EXPECT_TRUE(heap.write_raw(a.value(), 0, bytes(256)).has_value());
  EXPECT_TRUE(heap.is_corrupted(b.value()));
}

TEST(HeapModel, CheckedWriteRejectsOverflow) {
  HeapModel heap{1024};
  auto a = heap.malloc(16);
  auto b = heap.malloc(16);
  auto status = heap.write_checked(a.value(), 0, bytes(32));
  ASSERT_FALSE(status.has_value());
  EXPECT_EQ(status.error().kind, core::FailureKind::corrupted_state);
  EXPECT_FALSE(heap.is_corrupted(b.value()));
}

TEST(HeapModel, CheckedWriteInBoundsSucceeds) {
  HeapModel heap{1024};
  auto a = heap.malloc(16);
  EXPECT_TRUE(heap.write_checked(a.value(), 4, bytes(12)).has_value());
}

TEST(HeapModel, ReadValidatesBounds) {
  HeapModel heap{1024};
  auto a = heap.malloc(16);
  EXPECT_TRUE(heap.read(a.value(), 0, 16).has_value());
  EXPECT_FALSE(heap.read(a.value(), 8, 16).has_value());
  EXPECT_FALSE(heap.read(999, 0, 1).has_value());
}

TEST(HeapModel, RandomizedPlacementSeparatesBlocks) {
  SimEnv env;
  env.alloc = AllocStrategy::randomized;
  HeapModel heap{1 << 16, env};
  auto a = heap.malloc(16);
  auto b = heap.malloc(16);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // A modest overflow from a rarely lands on b under random placement in a
  // 64 KiB arena. (Not a certainty in general; deterministic per seed.)
  EXPECT_TRUE(heap.write_raw(a.value(), 0, bytes(32)).has_value());
  EXPECT_FALSE(heap.is_corrupted(b.value()));
}

TEST(HeapModel, WriteToUnknownBlockIsCrash) {
  HeapModel heap{1024};
  EXPECT_FALSE(heap.write_raw(12345, 0, bytes(4)).has_value());
}

}  // namespace
}  // namespace redundancy::env
