// tracetool's analysis model: load *.trace.jsonl files, reconstruct span
// trees, and derive the three reports the CLI prints —
//
//  (a) per-technique reliability attribution: verdict counts, ballots
//      failed vs masked, straggler-cancellation rates, next to the fault
//      class Table 2 of the paper assigns the technique;
//  (b) critical-path latency breakdown per pattern: where a request's time
//      went — pool queueing before the first variant started, the variant
//      window itself, and adjudication after the last ballot arrived;
//  (c) an SLO / error-budget report over the adjudication failure rate.
//
// All three are recomputed from recorded traces, not from campaign
// counters: the trace is the ground truth for what the adjudicators
// actually decided.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace redundancy::tracetool {

struct TraceData {
  std::vector<obs::SpanRecord> spans;
  std::vector<obs::AdjudicationEvent> adjudications;
  std::size_t malformed_lines = 0;  ///< truncated/unparseable lines skipped
  std::size_t unknown_records = 0;  ///< parseable lines of unknown "type"

  [[nodiscard]] bool empty() const noexcept {
    return spans.empty() && adjudications.empty();
  }
};

/// Append every record found in `in` (one JSON object per line).
void load_trace(std::istream& in, TraceData& out);

/// (a) One technique's attribution row.
struct TechniqueAttribution {
  std::string technique;
  std::string fault_class;        ///< Table-2 "Faults" cell, "—" if unknown
  std::size_t verdicts = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t masked = 0;         ///< accepted with ballots_failed > 0
  std::size_t ballots_seen = 0;
  std::size_t ballots_failed = 0;
  std::size_t stragglers_cancelled = 0;
  std::size_t rounds = 0;         ///< summed revote rounds

  [[nodiscard]] double mask_rate() const noexcept {
    return verdicts ? double(masked) / double(verdicts) : 0.0;
  }
  [[nodiscard]] double failure_rate() const noexcept {
    return verdicts ? double(rejected) / double(verdicts) : 0.0;
  }
  [[nodiscard]] double straggler_cancel_rate() const noexcept {
    return ballots_seen + stragglers_cancelled > 0
               ? double(stragglers_cancelled) /
                     double(ballots_seen + stragglers_cancelled)
               : 0.0;
  }
};

/// The Table-2 fault class ("development", "malicious", ...) for an obs
/// technique label ("nvp", "recovery_blocks", ...); "—" when unknown.
[[nodiscard]] std::string fault_class_of(const std::string& technique);

[[nodiscard]] std::vector<TechniqueAttribution> attribute(
    const TraceData& trace);  // sorted by technique name

/// (b) Aggregated critical-path decomposition for one pattern label (the
/// name of every span that directly parents variant-execution spans).
struct PatternLatency {
  std::string pattern;
  std::size_t requests = 0;
  std::uint64_t total_ns = 0;        ///< summed pattern-span durations
  std::uint64_t queue_ns = 0;        ///< span start -> first variant start
  std::uint64_t variant_ns = 0;      ///< first variant start -> last end
  std::uint64_t adjudication_ns = 0; ///< last variant end -> span end
  std::uint64_t variant_work_ns = 0; ///< summed variant durations (fan-out)
};

[[nodiscard]] std::vector<PatternLatency> critical_path(
    const TraceData& trace);  // sorted by pattern name

/// (c) Error-budget accounting at `slo_pct` (e.g. 99.9 = three nines of
/// accepted adjudications).
struct SloRow {
  std::string technique;
  std::size_t verdicts = 0;
  std::size_t rejected = 0;
  double failure_rate = 0.0;
  double budget_consumed = 0.0;  ///< failure_rate / (1 - slo), 1.0 = spent
};

struct SloReport {
  double slo_pct = 99.9;
  std::vector<SloRow> rows;  ///< per technique, sorted; last row = overall
};

[[nodiscard]] SloReport slo_report(const TraceData& trace, double slo_pct);

/// Markdown renderings (what `tracetool report` prints).
[[nodiscard]] std::string attribution_markdown(
    const std::vector<TechniqueAttribution>& rows);
[[nodiscard]] std::string latency_markdown(
    const std::vector<PatternLatency>& rows);
[[nodiscard]] std::string slo_markdown(const SloReport& report);

// ---- flight-recorder dumps (obs::FlightRecorder JSONL) ------------------

/// One black-box event from a flight dump.
struct FlightEvent {
  std::uint64_t t_ns = 0;
  std::string kind;  ///< "span" | "adjudication" | "gateway" | "mark"
  std::string name;
  std::uint64_t trace = 0;
  std::uint64_t a = 0;  ///< kind-specific payload
  std::uint64_t b = 0;  ///< kind-specific payload
  bool ok = false;
  std::size_t thread = 0;
};

struct FlightDump {
  std::vector<FlightEvent> events;  ///< sorted by t_ns after load
  std::size_t threads = 0;          ///< from the last flight_header seen
  std::size_t records_per_thread = 0;
  std::uint64_t dropped = 0;
  std::size_t headers = 0;  ///< dump generations in the file (appends)
  std::size_t malformed_lines = 0;
  std::size_t unknown_records = 0;
};

/// Append every flight record in `in`; events are re-sorted by t_ns.
void load_flight(std::istream& in, FlightDump& out);

/// Per-kind/per-thread counts, covered time span, and the last `tail`
/// events as a table (what `tracetool flight` prints).
[[nodiscard]] std::string flight_markdown(const FlightDump& dump,
                                          std::size_t tail);

// ---- live SLO snapshots (obs::SloTracker NDJSON, `GET /slo`) ------------

struct SloWindowRow {
  std::string request_class;
  std::string window;  ///< "10s" | "1m" | "5m" | "1h"
  std::uint64_t window_s = 0;
  std::uint64_t total = 0;
  std::uint64_t errors = 0;
  double error_rate = 0.0;
  double burn_rate = 0.0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
};

struct SloClassRow {
  std::string request_class;
  std::uint64_t latency_slo_ns = 0;
  double availability = 0.0;
  std::string state;  ///< "ok" | "degraded" | "failing"
  std::uint64_t total = 0;
  std::uint64_t errors = 0;
  double budget_allowed = 0.0;
  double budget_consumed = 0.0;
  std::vector<std::string> firing;  ///< alert_* keys that are true
};

struct SloSnapshot {
  std::vector<SloWindowRow> windows;
  std::vector<SloClassRow> classes;
  std::size_t malformed_lines = 0;
  std::size_t unknown_records = 0;
};

/// Append every slo_window / slo_class line in `in`.
void load_slo_snapshot(std::istream& in, SloSnapshot& out);

/// Per-class state/budget summary plus the windowed burn/percentile table
/// (what `tracetool slo` prints).
[[nodiscard]] std::string slo_snapshot_markdown(const SloSnapshot& snapshot);

}  // namespace redundancy::tracetool
