// tracetool's analysis model: load *.trace.jsonl files, reconstruct span
// trees, and derive the three reports the CLI prints —
//
//  (a) per-technique reliability attribution: verdict counts, ballots
//      failed vs masked, straggler-cancellation rates, next to the fault
//      class Table 2 of the paper assigns the technique;
//  (b) critical-path latency breakdown per pattern: where a request's time
//      went — pool queueing before the first variant started, the variant
//      window itself, and adjudication after the last ballot arrived;
//  (c) an SLO / error-budget report over the adjudication failure rate.
//
// All three are recomputed from recorded traces, not from campaign
// counters: the trace is the ground truth for what the adjudicators
// actually decided.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace redundancy::tracetool {

struct TraceData {
  std::vector<obs::SpanRecord> spans;
  std::vector<obs::AdjudicationEvent> adjudications;
  std::size_t malformed_lines = 0;  ///< truncated/unparseable lines skipped
  std::size_t unknown_records = 0;  ///< parseable lines of unknown "type"

  [[nodiscard]] bool empty() const noexcept {
    return spans.empty() && adjudications.empty();
  }
};

/// Append every record found in `in` (one JSON object per line).
void load_trace(std::istream& in, TraceData& out);

/// (a) One technique's attribution row.
struct TechniqueAttribution {
  std::string technique;
  std::string fault_class;        ///< Table-2 "Faults" cell, "—" if unknown
  std::size_t verdicts = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t masked = 0;         ///< accepted with ballots_failed > 0
  std::size_t ballots_seen = 0;
  std::size_t ballots_failed = 0;
  std::size_t stragglers_cancelled = 0;
  std::size_t rounds = 0;         ///< summed revote rounds

  [[nodiscard]] double mask_rate() const noexcept {
    return verdicts ? double(masked) / double(verdicts) : 0.0;
  }
  [[nodiscard]] double failure_rate() const noexcept {
    return verdicts ? double(rejected) / double(verdicts) : 0.0;
  }
  [[nodiscard]] double straggler_cancel_rate() const noexcept {
    return ballots_seen + stragglers_cancelled > 0
               ? double(stragglers_cancelled) /
                     double(ballots_seen + stragglers_cancelled)
               : 0.0;
  }
};

/// The Table-2 fault class ("development", "malicious", ...) for an obs
/// technique label ("nvp", "recovery_blocks", ...); "—" when unknown.
[[nodiscard]] std::string fault_class_of(const std::string& technique);

[[nodiscard]] std::vector<TechniqueAttribution> attribute(
    const TraceData& trace);  // sorted by technique name

/// (b) Aggregated critical-path decomposition for one pattern label (the
/// name of every span that directly parents variant-execution spans).
struct PatternLatency {
  std::string pattern;
  std::size_t requests = 0;
  std::uint64_t total_ns = 0;        ///< summed pattern-span durations
  std::uint64_t queue_ns = 0;        ///< span start -> first variant start
  std::uint64_t variant_ns = 0;      ///< first variant start -> last end
  std::uint64_t adjudication_ns = 0; ///< last variant end -> span end
  std::uint64_t variant_work_ns = 0; ///< summed variant durations (fan-out)
};

[[nodiscard]] std::vector<PatternLatency> critical_path(
    const TraceData& trace);  // sorted by pattern name

/// (c) Error-budget accounting at `slo_pct` (e.g. 99.9 = three nines of
/// accepted adjudications).
struct SloRow {
  std::string technique;
  std::size_t verdicts = 0;
  std::size_t rejected = 0;
  double failure_rate = 0.0;
  double budget_consumed = 0.0;  ///< failure_rate / (1 - slo), 1.0 = spent
};

struct SloReport {
  double slo_pct = 99.9;
  std::vector<SloRow> rows;  ///< per technique, sorted; last row = overall
};

[[nodiscard]] SloReport slo_report(const TraceData& trace, double slo_pct);

/// Markdown renderings (what `tracetool report` prints).
[[nodiscard]] std::string attribution_markdown(
    const std::vector<TechniqueAttribution>& rows);
[[nodiscard]] std::string latency_markdown(
    const std::vector<PatternLatency>& rows);
[[nodiscard]] std::string slo_markdown(const SloReport& report);

}  // namespace redundancy::tracetool
