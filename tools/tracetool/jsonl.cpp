#include "tracetool/jsonl.hpp"

#include <cctype>
#include <cstdlib>

namespace redundancy::tracetool {

namespace {

struct Cursor {
  std::string_view s;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const noexcept { return pos >= s.size(); }
  [[nodiscard]] char peek() const noexcept { return done() ? '\0' : s[pos]; }
  void skip_ws() {
    while (!done() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\r')) {
      ++pos;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos;
    return true;
  }
  bool consume_word(std::string_view w) {
    skip_ws();
    if (s.substr(pos, w.size()) != w) return false;
    pos += w.size();
    return true;
  }
};

bool parse_string(Cursor& c, std::string& out) {
  if (!c.consume('"')) return false;
  out.clear();
  while (!c.done()) {
    const char ch = c.s[c.pos++];
    if (ch == '"') return true;
    if (ch != '\\') {
      out.push_back(ch);
      continue;
    }
    if (c.done()) return false;
    const char esc = c.s[c.pos++];
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'u': {
        if (c.pos + 4 > c.s.size()) return false;
        const std::string hex{c.s.substr(c.pos, 4)};
        c.pos += 4;
        char* stop = nullptr;
        const long code = std::strtol(hex.c_str(), &stop, 16);
        if (stop != hex.c_str() + 4) return false;
        // The sinks only escape control characters; anything else is kept
        // as a replacement byte rather than implementing full UTF-16.
        out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated string
}

bool parse_value(Cursor& c, JsonValue& out) {
  c.skip_ws();
  const char ch = c.peek();
  if (ch == '"') {
    out.kind = JsonValue::Kind::string;
    return parse_string(c, out.str);
  }
  if (c.consume_word("true")) {
    out.kind = JsonValue::Kind::boolean;
    out.b = true;
    return true;
  }
  if (c.consume_word("false")) {
    out.kind = JsonValue::Kind::boolean;
    out.b = false;
    return true;
  }
  if (c.consume_word("null")) {
    out.kind = JsonValue::Kind::null;
    return true;
  }
  // Number. Collect the token, then decide integer vs double.
  const std::size_t start = c.pos;
  if (c.peek() == '-') ++c.pos;
  bool is_double = false;
  while (!c.done()) {
    const char d = c.peek();
    if (std::isdigit(static_cast<unsigned char>(d)) != 0) {
      ++c.pos;
    } else if (d == '.' || d == 'e' || d == 'E' || d == '+' || d == '-') {
      is_double = true;
      ++c.pos;
    } else {
      break;
    }
  }
  if (c.pos == start) return false;
  const std::string token{c.s.substr(start, c.pos - start)};
  char* stop = nullptr;
  if (is_double || token[0] == '-') {
    out.kind = JsonValue::Kind::number;
    out.num = std::strtod(token.c_str(), &stop);
  } else {
    out.kind = JsonValue::Kind::uinteger;
    out.u64 = std::strtoull(token.c_str(), &stop, 10);
  }
  return stop == token.c_str() + token.size();
}

}  // namespace

std::optional<JsonObject> parse_flat_object(std::string_view line) {
  Cursor c{line};
  if (!c.consume('{')) return std::nullopt;
  JsonObject out;
  c.skip_ws();
  if (c.consume('}')) {
    c.skip_ws();
    return c.done() ? std::optional{out} : std::nullopt;
  }
  while (true) {
    std::string key;
    if (!parse_string(c, key)) return std::nullopt;
    if (!c.consume(':')) return std::nullopt;
    JsonValue value;
    if (!parse_value(c, value)) return std::nullopt;
    out[std::move(key)] = std::move(value);
    if (c.consume(',')) continue;
    if (c.consume('}')) break;
    return std::nullopt;
  }
  c.skip_ws();
  return c.done() ? std::optional{out} : std::nullopt;
}

}  // namespace redundancy::tracetool
