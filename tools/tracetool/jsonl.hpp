// Minimal JSON parser for the flat one-object-per-line trace schema the
// obs:: sinks emit (EXPERIMENTS.md). Values are strings, integers, doubles,
// booleans or null — the schema nests nothing, so neither does the parser.
// Unsigned 64-bit integers are kept exact (trace ids and steady-clock
// nanosecond timestamps overflow a double's 53-bit mantissa).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace redundancy::tracetool {

struct JsonValue {
  enum class Kind { string, uinteger, number, boolean, null };
  Kind kind = Kind::null;
  std::string str;
  std::uint64_t u64 = 0;
  double num = 0.0;
  bool b = false;

  /// Numeric value regardless of integer/double representation.
  [[nodiscard]] double as_number() const noexcept {
    return kind == Kind::uinteger ? static_cast<double>(u64) : num;
  }
};

using JsonObject = std::map<std::string, JsonValue>;

/// Parse one flat JSON object; nullopt on malformed input (a truncated
/// line, nested structure, trailing garbage).
[[nodiscard]] std::optional<JsonObject> parse_flat_object(
    std::string_view line);

}  // namespace redundancy::tracetool
