// tracetool — reliability attribution from recorded traces.
//
//   tracetool report [--slo=99.9] [--out=FILE] <trace.jsonl> [more...]
//
// Loads *.trace.jsonl files (the obs:: JSONL schema, EXPERIMENTS.md),
// reconstructs span trees, and emits one markdown document with three
// sections: per-technique reliability attribution against the paper's
// Table-2 fault classes, a critical-path latency breakdown per pattern, and
// an SLO / error-budget report over the adjudication failure rate.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tracetool/trace_model.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: tracetool report [--slo=PCT] [--out=FILE] "
               "<trace.jsonl> [more.jsonl...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string{argv[1]} != "report") return usage();

  double slo_pct = 99.9;
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg.rfind("--slo=", 0) == 0) {
      char* stop = nullptr;
      slo_pct = std::strtod(arg.c_str() + 6, &stop);
      if (*stop != '\0' || slo_pct <= 0.0 || slo_pct >= 100.0) {
        std::fprintf(stderr, "tracetool: bad --slo value '%s'\n",
                     arg.c_str() + 6);
        return 2;
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  redundancy::tracetool::TraceData trace;
  for (const auto& path : inputs) {
    std::ifstream in{path};
    if (!in.is_open()) {
      std::fprintf(stderr, "tracetool: cannot open %s\n", path.c_str());
      return 1;
    }
    redundancy::tracetool::load_trace(in, trace);
  }

  std::string doc;
  doc += "# tracetool report\n\n";
  doc += "Input: " + std::to_string(inputs.size()) + " file(s), " +
         std::to_string(trace.spans.size()) + " spans, " +
         std::to_string(trace.adjudications.size()) +
         " adjudication events";
  if (trace.malformed_lines > 0) {
    doc += " (" + std::to_string(trace.malformed_lines) +
           " malformed lines skipped)";
  }
  doc += "\n\n";
  doc += "## Per-technique reliability attribution (Table 2 fault classes)\n\n";
  doc += attribution_markdown(attribute(trace));
  doc += "\n## Critical-path latency breakdown per pattern\n\n";
  doc += latency_markdown(critical_path(trace));
  doc += "\n## SLO / error budget (adjudication failure rate)\n\n";
  doc += slo_markdown(slo_report(trace, slo_pct));

  if (out_path.empty()) {
    std::cout << doc;
  } else {
    std::ofstream out{out_path};
    if (!out.is_open()) {
      std::fprintf(stderr, "tracetool: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << doc;
    std::fprintf(stderr, "tracetool: wrote %s\n", out_path.c_str());
  }
  return 0;
}
