// tracetool — reliability analysis from recorded telemetry artifacts.
//
//   tracetool report [--slo=99.9] [--out=FILE] <trace.jsonl> [more...]
//   tracetool flight [--tail=N] [--out=FILE] <flight.jsonl> [more...]
//   tracetool slo    [--out=FILE] <slo.jsonl> [more...]
//
// `report` loads *.trace.jsonl files (the obs:: JSONL schema,
// EXPERIMENTS.md), reconstructs span trees, and emits one markdown document
// with three sections: per-technique reliability attribution against the
// paper's Table-2 fault classes, a critical-path latency breakdown per
// pattern, and an SLO / error-budget report over the adjudication failure
// rate.
//
// `flight` analyses obs::FlightRecorder black-box dumps (a crash handler's
// appended file, or a `GET /debug/flight` body): per-kind/thread counts,
// covered time span, and the last N events.
//
// `slo` renders an obs::SloTracker NDJSON snapshot (a `GET /slo` body):
// per-class state and budget, and the windowed burn-rate/percentile table.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tracetool/trace_model.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: tracetool report [--slo=PCT] [--out=FILE] "
               "<trace.jsonl> [more.jsonl...]\n"
               "       tracetool flight [--tail=N] [--out=FILE] "
               "<flight.jsonl> [more.jsonl...]\n"
               "       tracetool slo [--out=FILE] "
               "<slo.jsonl> [more.jsonl...]\n");
  return 2;
}

/// Print to stdout, or to --out=FILE when given. 0 on success.
int emit(const std::string& doc, const std::string& out_path) {
  if (out_path.empty()) {
    std::cout << doc;
    return 0;
  }
  std::ofstream out{out_path};
  if (!out.is_open()) {
    std::fprintf(stderr, "tracetool: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << doc;
  std::fprintf(stderr, "tracetool: wrote %s\n", out_path.c_str());
  return 0;
}

template <typename Loader>
bool load_inputs(const std::vector<std::string>& inputs, Loader&& loader) {
  for (const auto& path : inputs) {
    std::ifstream in{path};
    if (!in.is_open()) {
      std::fprintf(stderr, "tracetool: cannot open %s\n", path.c_str());
      return false;
    }
    loader(in);
  }
  return true;
}

int run_report(double slo_pct, const std::string& out_path,
               const std::vector<std::string>& inputs) {
  redundancy::tracetool::TraceData trace;
  if (!load_inputs(inputs, [&trace](std::istream& in) {
        redundancy::tracetool::load_trace(in, trace);
      })) {
    return 1;
  }

  std::string doc;
  doc += "# tracetool report\n\n";
  doc += "Input: " + std::to_string(inputs.size()) + " file(s), " +
         std::to_string(trace.spans.size()) + " spans, " +
         std::to_string(trace.adjudications.size()) +
         " adjudication events";
  if (trace.malformed_lines > 0) {
    doc += " (" + std::to_string(trace.malformed_lines) +
           " malformed lines skipped)";
  }
  doc += "\n\n";
  doc += "## Per-technique reliability attribution (Table 2 fault classes)\n\n";
  doc += attribution_markdown(attribute(trace));
  doc += "\n## Critical-path latency breakdown per pattern\n\n";
  doc += latency_markdown(critical_path(trace));
  doc += "\n## SLO / error budget (adjudication failure rate)\n\n";
  doc += slo_markdown(slo_report(trace, slo_pct));
  return emit(doc, out_path);
}

int run_flight(std::size_t tail, const std::string& out_path,
               const std::vector<std::string>& inputs) {
  redundancy::tracetool::FlightDump dump;
  if (!load_inputs(inputs, [&dump](std::istream& in) {
        redundancy::tracetool::load_flight(in, dump);
      })) {
    return 1;
  }
  std::string doc;
  doc += "# tracetool flight\n\n";
  doc += flight_markdown(dump, tail);
  return emit(doc, out_path);
}

int run_slo(const std::string& out_path,
            const std::vector<std::string>& inputs) {
  redundancy::tracetool::SloSnapshot snapshot;
  if (!load_inputs(inputs, [&snapshot](std::istream& in) {
        redundancy::tracetool::load_slo_snapshot(in, snapshot);
      })) {
    return 1;
  }
  std::string doc;
  doc += "# tracetool slo\n\n";
  doc += slo_snapshot_markdown(snapshot);
  return emit(doc, out_path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command{argv[1]};
  if (command != "report" && command != "flight" && command != "slo") {
    return usage();
  }

  double slo_pct = 99.9;
  std::size_t tail = 32;
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    const std::string arg{argv[i]};
    if (command == "report" && arg.rfind("--slo=", 0) == 0) {
      char* stop = nullptr;
      slo_pct = std::strtod(arg.c_str() + 6, &stop);
      if (*stop != '\0' || slo_pct <= 0.0 || slo_pct >= 100.0) {
        std::fprintf(stderr, "tracetool: bad --slo value '%s'\n",
                     arg.c_str() + 6);
        return 2;
      }
    } else if (command == "flight" && arg.rfind("--tail=", 0) == 0) {
      char* stop = nullptr;
      const unsigned long long v = std::strtoull(arg.c_str() + 7, &stop, 10);
      if (stop == arg.c_str() + 7 || *stop != '\0' || v == 0) {
        std::fprintf(stderr, "tracetool: bad --tail value '%s'\n",
                     arg.c_str() + 7);
        return 2;
      }
      tail = static_cast<std::size_t>(v);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  if (command == "report") return run_report(slo_pct, out_path, inputs);
  if (command == "flight") return run_flight(tail, out_path, inputs);
  return run_slo(out_path, inputs);
}
