#include "tracetool/trace_model.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <map>
#include <utility>

#include "tracetool/jsonl.hpp"

namespace redundancy::tracetool {

namespace {

std::string get_str(const JsonObject& o, const char* key) {
  const auto it = o.find(key);
  return it != o.end() && it->second.kind == JsonValue::Kind::string
             ? it->second.str
             : std::string{};
}

std::uint64_t get_u64(const JsonObject& o, const char* key) {
  const auto it = o.find(key);
  if (it == o.end()) return 0;
  if (it->second.kind == JsonValue::Kind::uinteger) return it->second.u64;
  if (it->second.kind == JsonValue::Kind::number && it->second.num > 0) {
    return static_cast<std::uint64_t>(it->second.num);
  }
  return 0;
}

double get_num(const JsonObject& o, const char* key) {
  const auto it = o.find(key);
  return it == o.end() ? 0.0 : it->second.as_number();
}

bool get_bool(const JsonObject& o, const char* key) {
  const auto it = o.find(key);
  return it != o.end() && it->second.kind == JsonValue::Kind::boolean &&
         it->second.b;
}

/// Span names the instrumentation uses for one unit of variant execution.
bool is_variant_span(const std::string& name) {
  return name == "variant" || name == "component" || name == "alternative" ||
         name == "replica";
}

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", fraction * 100.0);
  return buf;
}

std::string fixed(double v, int digits = 1) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace

void load_trace(std::istream& in, TraceData& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto object = parse_flat_object(line);
    if (!object.has_value()) {
      ++out.malformed_lines;
      continue;
    }
    const std::string type = get_str(*object, "type");
    if (type == "span") {
      obs::SpanRecord span;
      span.trace_id = get_u64(*object, "trace");
      span.span_id = get_u64(*object, "span");
      span.parent_id = get_u64(*object, "parent");
      span.name = get_str(*object, "name");
      span.detail = get_str(*object, "detail");
      span.t_start_ns = get_u64(*object, "t_start_ns");
      span.t_end_ns = get_u64(*object, "t_end_ns");
      span.ok = get_bool(*object, "ok");
      out.spans.push_back(std::move(span));
    } else if (type == "adjudication") {
      obs::AdjudicationEvent event;
      event.trace_id = get_u64(*object, "trace");
      event.parent_id = get_u64(*object, "parent");
      event.technique = get_str(*object, "technique");
      event.t_ns = get_u64(*object, "t_ns");
      event.round = get_u64(*object, "round");
      event.electorate = get_u64(*object, "electorate");
      event.ballots_seen = get_u64(*object, "ballots_seen");
      event.ballots_failed = get_u64(*object, "ballots_failed");
      event.accepted = get_bool(*object, "accepted");
      event.verdict = get_str(*object, "verdict");
      event.winner = get_str(*object, "winner");
      event.stragglers_cancelled = get_u64(*object, "stragglers_cancelled");
      out.adjudications.push_back(std::move(event));
    } else {
      ++out.unknown_records;
    }
  }
}

std::string fault_class_of(const std::string& technique) {
  // The obs labels each instrumentation site emits, mapped to the fault
  // class Table 2 assigns the technique family (paper_cell spellings).
  static const std::map<std::string, std::string> kFaults{
      {"nvp", "development"},
      {"sql_nvp", "development"},
      {"recovery_blocks", "development"},
      {"concurrent_recovery_blocks", "development"},
      {"self_checking", "development"},
      {"parallel_evaluation", "development"},
      {"parallel_selection", "development"},
      {"sequential_alternatives", "development"},
      {"data_diversity", "development"},
      {"process_replicas", "malicious"},
      {"checkpoint_recovery", "Heisenbugs"},
      {"process_pair", "Heisenbugs"},
      {"microreboot", "Heisenbugs"},
  };
  const auto it = kFaults.find(technique);
  return it != kFaults.end() ? it->second : "—";
}

std::vector<TechniqueAttribution> attribute(const TraceData& trace) {
  std::map<std::string, TechniqueAttribution> rows;
  for (const auto& e : trace.adjudications) {
    TechniqueAttribution& row = rows[e.technique];
    if (row.verdicts == 0) {
      row.technique = e.technique;
      row.fault_class = fault_class_of(e.technique);
    }
    ++row.verdicts;
    if (e.accepted) {
      ++row.accepted;
      if (e.ballots_failed > 0) ++row.masked;
    } else {
      ++row.rejected;
    }
    row.ballots_seen += e.ballots_seen;
    row.ballots_failed += e.ballots_failed;
    row.stragglers_cancelled += e.stragglers_cancelled;
    row.rounds += e.round;
  }
  std::vector<TechniqueAttribution> out;
  out.reserve(rows.size());
  for (auto& [name, row] : rows) out.push_back(std::move(row));
  return out;
}

std::vector<PatternLatency> critical_path(const TraceData& trace) {
  // Index spans by (trace, span) — span ids alone can collide between the
  // processes that appended to one trace file — and collect, per parent
  // span, the variant-execution children. A span that parents variant spans
  // is a pattern span (its name is the technique/pattern label), whether it
  // is a root (live request) or nested under a campaign shard.
  using SpanKey = std::pair<obs::TraceId, obs::SpanId>;
  std::map<SpanKey, const obs::SpanRecord*> by_id;
  for (const auto& s : trace.spans) {
    by_id.emplace(SpanKey{s.trace_id, s.span_id}, &s);
  }

  struct Window {
    std::uint64_t first_start = UINT64_MAX;
    std::uint64_t last_end = 0;
    std::uint64_t work = 0;
  };
  std::map<SpanKey, Window> windows;
  for (const auto& s : trace.spans) {
    if (!is_variant_span(s.name) || s.parent_id == 0) continue;
    const SpanKey parent_key{s.trace_id, s.parent_id};
    if (by_id.find(parent_key) == by_id.end()) continue;
    Window& w = windows[parent_key];
    w.first_start = std::min(w.first_start, s.t_start_ns);
    w.last_end = std::max(w.last_end, s.t_end_ns);
    w.work += s.duration_ns();
  }

  std::map<std::string, PatternLatency> rows;
  for (const auto& [parent_key, w] : windows) {
    const obs::SpanRecord& parent = *by_id.at(parent_key);
    PatternLatency& row = rows[parent.name];
    if (row.requests == 0) row.pattern = parent.name;
    ++row.requests;
    row.total_ns += parent.duration_ns();
    if (w.first_start >= parent.t_start_ns) {
      row.queue_ns += w.first_start - parent.t_start_ns;
    }
    if (w.last_end >= w.first_start) {
      row.variant_ns += w.last_end - w.first_start;
    }
    if (parent.t_end_ns >= w.last_end) {
      row.adjudication_ns += parent.t_end_ns - w.last_end;
    }
    row.variant_work_ns += w.work;
  }

  std::vector<PatternLatency> out;
  out.reserve(rows.size());
  for (auto& [name, row] : rows) out.push_back(std::move(row));
  return out;
}

SloReport slo_report(const TraceData& trace, double slo_pct) {
  SloReport report;
  report.slo_pct = slo_pct;
  const double budget = 1.0 - slo_pct / 100.0;  // allowed failure fraction
  SloRow overall;
  overall.technique = "overall";
  for (const auto& row : attribute(trace)) {
    SloRow r;
    r.technique = row.technique;
    r.verdicts = row.verdicts;
    r.rejected = row.rejected;
    r.failure_rate = row.failure_rate();
    r.budget_consumed = budget > 0.0 ? r.failure_rate / budget : 0.0;
    overall.verdicts += r.verdicts;
    overall.rejected += r.rejected;
    report.rows.push_back(std::move(r));
  }
  overall.failure_rate = overall.verdicts
                             ? double(overall.rejected) /
                                   double(overall.verdicts)
                             : 0.0;
  overall.budget_consumed =
      budget > 0.0 ? overall.failure_rate / budget : 0.0;
  report.rows.push_back(std::move(overall));
  return report;
}

std::string attribution_markdown(
    const std::vector<TechniqueAttribution>& rows) {
  std::string out;
  out +=
      "| technique | faults (Table 2) | verdicts | accepted | masked | "
      "failed | mask rate | failure rate | ballots seen | ballots failed | "
      "straggler-cancel rate | avg rounds |\n";
  out +=
      "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& r : rows) {
    const double avg_rounds =
        r.verdicts ? double(r.rounds) / double(r.verdicts) : 0.0;
    out += "| " + r.technique + " | " + r.fault_class + " | " +
           std::to_string(r.verdicts) + " | " + std::to_string(r.accepted) +
           " | " + std::to_string(r.masked) + " | " +
           std::to_string(r.rejected) + " | " + pct(r.mask_rate()) + " | " +
           pct(r.failure_rate()) + " | " + std::to_string(r.ballots_seen) +
           " | " + std::to_string(r.ballots_failed) + " | " +
           pct(r.straggler_cancel_rate()) + " | " + fixed(avg_rounds, 2) +
           " |\n";
  }
  if (rows.empty()) out += "| _no adjudication events in trace_ ||||||||||||\n";
  return out;
}

std::string latency_markdown(const std::vector<PatternLatency>& rows) {
  std::string out;
  out +=
      "| pattern | requests | mean total µs | queue µs (%) | variant µs (%) "
      "| adjudication µs (%) | fan-out work µs |\n";
  out += "|---|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& r : rows) {
    if (r.requests == 0) continue;
    const double n = double(r.requests);
    const double total = double(r.total_ns) / n / 1000.0;
    const double queue = double(r.queue_ns) / n / 1000.0;
    const double variant = double(r.variant_ns) / n / 1000.0;
    const double adjudicate = double(r.adjudication_ns) / n / 1000.0;
    const double work = double(r.variant_work_ns) / n / 1000.0;
    const double denom = total > 0.0 ? total : 1.0;
    out += "| " + r.pattern + " | " + std::to_string(r.requests) + " | " +
           fixed(total) + " | " + fixed(queue) + " (" +
           pct(queue / denom) + ") | " + fixed(variant) + " (" +
           pct(variant / denom) + ") | " + fixed(adjudicate) + " (" +
           pct(adjudicate / denom) + ") | " + fixed(work) + " |\n";
  }
  if (rows.empty()) out += "| _no pattern spans in trace_ |||||||\n";
  return out;
}

std::string slo_markdown(const SloReport& report) {
  std::string out;
  out += "SLO target: " + fixed(report.slo_pct, 3) +
         "% of adjudications accepted (error budget " +
         pct(1.0 - report.slo_pct / 100.0) + ")\n\n";
  out +=
      "| technique | verdicts | failed | failure rate | error budget "
      "consumed | status |\n";
  out += "|---|---:|---:|---:|---:|---|\n";
  for (const auto& r : report.rows) {
    const char* status = r.budget_consumed > 1.0          ? "EXHAUSTED"
                         : r.budget_consumed > 0.75       ? "at risk"
                                                          : "within budget";
    out += "| " + r.technique + " | " + std::to_string(r.verdicts) + " | " +
           std::to_string(r.rejected) + " | " + pct(r.failure_rate) + " | " +
           pct(r.budget_consumed) + " | " + status + " |\n";
  }
  return out;
}

void load_flight(std::istream& in, FlightDump& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto object = parse_flat_object(line);
    if (!object.has_value()) {
      ++out.malformed_lines;
      continue;
    }
    const std::string type = get_str(*object, "type");
    if (type == "flight") {
      FlightEvent event;
      event.t_ns = get_u64(*object, "t_ns");
      event.kind = get_str(*object, "kind");
      event.name = get_str(*object, "name");
      event.trace = get_u64(*object, "trace");
      event.a = get_u64(*object, "a");
      event.b = get_u64(*object, "b");
      event.ok = get_bool(*object, "ok");
      event.thread = get_u64(*object, "thread");
      out.events.push_back(std::move(event));
    } else if (type == "flight_header") {
      // A file a crash handler appended to can hold several generations;
      // the last header describes the final (post-crash) dump.
      out.threads = get_u64(*object, "threads");
      out.records_per_thread = get_u64(*object, "records_per_thread");
      out.dropped = get_u64(*object, "dropped");
      ++out.headers;
    } else {
      ++out.unknown_records;
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.t_ns < y.t_ns;
                   });
}

std::string flight_markdown(const FlightDump& dump, std::size_t tail) {
  std::string out;
  out += "Events: " + std::to_string(dump.events.size()) + " across " +
         std::to_string(dump.threads) + " thread ring(s) of " +
         std::to_string(dump.records_per_thread) + " records";
  if (dump.headers > 1) {
    out += " (" + std::to_string(dump.headers) + " dump generations)";
  }
  if (dump.dropped > 0) {
    out += ", " + std::to_string(dump.dropped) + " dropped over thread cap";
  }
  if (dump.malformed_lines > 0) {
    out += ", " + std::to_string(dump.malformed_lines) +
           " malformed lines (torn records are expected in crash dumps)";
  }
  out += "\n\n";
  if (dump.events.empty()) {
    out += "_no flight events_\n";
    return out;
  }

  const std::uint64_t t0 = dump.events.front().t_ns;
  const std::uint64_t t1 = dump.events.back().t_ns;
  out += "Covered span: " + fixed(double(t1 - t0) / 1e6, 3) + " ms\n\n";

  std::map<std::string, std::size_t> by_kind;
  std::map<std::size_t, std::size_t> by_thread;
  for (const auto& e : dump.events) {
    ++by_kind[e.kind];
    ++by_thread[e.thread];
  }
  out += "| kind | events |\n|---|---:|\n";
  for (const auto& [kind, n] : by_kind) {
    out += "| " + kind + " | " + std::to_string(n) + " |\n";
  }
  out += "\n| thread | events |\n|---:|---:|\n";
  for (const auto& [thread, n] : by_thread) {
    out += "| " + std::to_string(thread) + " | " + std::to_string(n) + " |\n";
  }

  const std::size_t n = dump.events.size() < tail ? dump.events.size() : tail;
  out += "\nLast " + std::to_string(n) + " events (newest last):\n\n";
  out += "| t offset ms | kind | name | trace | a | b | ok | thread |\n";
  out += "|---:|---|---|---:|---:|---:|---|---:|\n";
  for (std::size_t i = dump.events.size() - n; i < dump.events.size(); ++i) {
    const FlightEvent& e = dump.events[i];
    out += "| " + fixed(double(e.t_ns - t0) / 1e6, 3) + " | " + e.kind +
           " | " + e.name + " | " + std::to_string(e.trace) + " | " +
           std::to_string(e.a) + " | " + std::to_string(e.b) + " | " +
           (e.ok ? "yes" : "no") + " | " + std::to_string(e.thread) + " |\n";
  }
  return out;
}

void load_slo_snapshot(std::istream& in, SloSnapshot& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto object = parse_flat_object(line);
    if (!object.has_value()) {
      ++out.malformed_lines;
      continue;
    }
    const std::string type = get_str(*object, "type");
    if (type == "slo_window") {
      SloWindowRow row;
      row.request_class = get_str(*object, "class");
      row.window = get_str(*object, "window");
      row.window_s = get_u64(*object, "window_s");
      row.total = get_u64(*object, "total");
      row.errors = get_u64(*object, "errors");
      row.error_rate = get_num(*object, "error_rate");
      row.burn_rate = get_num(*object, "burn_rate");
      row.p50_ns = get_num(*object, "p50_ns");
      row.p95_ns = get_num(*object, "p95_ns");
      row.p99_ns = get_num(*object, "p99_ns");
      out.windows.push_back(std::move(row));
    } else if (type == "slo_class") {
      SloClassRow row;
      row.request_class = get_str(*object, "class");
      row.latency_slo_ns = get_u64(*object, "latency_slo_ns");
      row.availability = get_num(*object, "availability");
      row.state = get_str(*object, "state");
      row.total = get_u64(*object, "total");
      row.errors = get_u64(*object, "errors");
      row.budget_allowed = get_num(*object, "budget_allowed");
      row.budget_consumed = get_num(*object, "budget_consumed");
      for (const auto& [key, value] : *object) {
        if (key.rfind("alert_", 0) == 0 &&
            value.kind == JsonValue::Kind::boolean && value.b) {
          row.firing.push_back(key.substr(6));
        }
      }
      out.classes.push_back(std::move(row));
    } else {
      ++out.unknown_records;
    }
  }
}

std::string slo_snapshot_markdown(const SloSnapshot& snapshot) {
  std::string out;
  if (snapshot.malformed_lines > 0) {
    out += "(" + std::to_string(snapshot.malformed_lines) +
           " malformed lines skipped)\n\n";
  }
  out += "## Classes\n\n";
  out +=
      "| class | state | latency SLO ms | availability | total | errors | "
      "budget consumed | firing |\n";
  out += "|---|---|---:|---:|---:|---:|---:|---|\n";
  for (const auto& c : snapshot.classes) {
    std::string firing;
    for (const auto& f : c.firing) {
      if (!firing.empty()) firing += ", ";
      firing += f;
    }
    if (firing.empty()) firing = "—";
    out += "| " + c.request_class + " | " + c.state + " | " +
           fixed(double(c.latency_slo_ns) / 1e6, 3) + " | " +
           pct(c.availability) + " | " + std::to_string(c.total) + " | " +
           std::to_string(c.errors) + " | " + pct(c.budget_consumed) +
           " | " + firing + " |\n";
  }
  if (snapshot.classes.empty()) out += "| _no slo_class records_ ||||||||\n";

  out += "\n## Windows\n\n";
  out +=
      "| class | window | total | errors | error rate | burn rate | p50 ms "
      "| p95 ms | p99 ms |\n";
  out += "|---|---|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& w : snapshot.windows) {
    out += "| " + w.request_class + " | " + w.window + " | " +
           std::to_string(w.total) + " | " + std::to_string(w.errors) +
           " | " + pct(w.error_rate) + " | " + fixed(w.burn_rate, 2) +
           " | " + fixed(w.p50_ns / 1e6, 3) + " | " +
           fixed(w.p95_ns / 1e6, 3) + " | " + fixed(w.p99_ns / 1e6, 3) +
           " |\n";
  }
  if (snapshot.windows.empty()) out += "| _no slo_window records_ |||||||||\n";
  return out;
}

}  // namespace redundancy::tracetool
