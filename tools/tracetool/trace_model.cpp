#include "tracetool/trace_model.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <map>
#include <utility>

#include "tracetool/jsonl.hpp"

namespace redundancy::tracetool {

namespace {

std::string get_str(const JsonObject& o, const char* key) {
  const auto it = o.find(key);
  return it != o.end() && it->second.kind == JsonValue::Kind::string
             ? it->second.str
             : std::string{};
}

std::uint64_t get_u64(const JsonObject& o, const char* key) {
  const auto it = o.find(key);
  if (it == o.end()) return 0;
  if (it->second.kind == JsonValue::Kind::uinteger) return it->second.u64;
  if (it->second.kind == JsonValue::Kind::number && it->second.num > 0) {
    return static_cast<std::uint64_t>(it->second.num);
  }
  return 0;
}

bool get_bool(const JsonObject& o, const char* key) {
  const auto it = o.find(key);
  return it != o.end() && it->second.kind == JsonValue::Kind::boolean &&
         it->second.b;
}

/// Span names the instrumentation uses for one unit of variant execution.
bool is_variant_span(const std::string& name) {
  return name == "variant" || name == "component" || name == "alternative" ||
         name == "replica";
}

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", fraction * 100.0);
  return buf;
}

std::string fixed(double v, int digits = 1) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace

void load_trace(std::istream& in, TraceData& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto object = parse_flat_object(line);
    if (!object.has_value()) {
      ++out.malformed_lines;
      continue;
    }
    const std::string type = get_str(*object, "type");
    if (type == "span") {
      obs::SpanRecord span;
      span.trace_id = get_u64(*object, "trace");
      span.span_id = get_u64(*object, "span");
      span.parent_id = get_u64(*object, "parent");
      span.name = get_str(*object, "name");
      span.detail = get_str(*object, "detail");
      span.t_start_ns = get_u64(*object, "t_start_ns");
      span.t_end_ns = get_u64(*object, "t_end_ns");
      span.ok = get_bool(*object, "ok");
      out.spans.push_back(std::move(span));
    } else if (type == "adjudication") {
      obs::AdjudicationEvent event;
      event.trace_id = get_u64(*object, "trace");
      event.parent_id = get_u64(*object, "parent");
      event.technique = get_str(*object, "technique");
      event.t_ns = get_u64(*object, "t_ns");
      event.round = get_u64(*object, "round");
      event.electorate = get_u64(*object, "electorate");
      event.ballots_seen = get_u64(*object, "ballots_seen");
      event.ballots_failed = get_u64(*object, "ballots_failed");
      event.accepted = get_bool(*object, "accepted");
      event.verdict = get_str(*object, "verdict");
      event.winner = get_str(*object, "winner");
      event.stragglers_cancelled = get_u64(*object, "stragglers_cancelled");
      out.adjudications.push_back(std::move(event));
    } else {
      ++out.unknown_records;
    }
  }
}

std::string fault_class_of(const std::string& technique) {
  // The obs labels each instrumentation site emits, mapped to the fault
  // class Table 2 assigns the technique family (paper_cell spellings).
  static const std::map<std::string, std::string> kFaults{
      {"nvp", "development"},
      {"sql_nvp", "development"},
      {"recovery_blocks", "development"},
      {"concurrent_recovery_blocks", "development"},
      {"self_checking", "development"},
      {"parallel_evaluation", "development"},
      {"parallel_selection", "development"},
      {"sequential_alternatives", "development"},
      {"data_diversity", "development"},
      {"process_replicas", "malicious"},
      {"checkpoint_recovery", "Heisenbugs"},
      {"process_pair", "Heisenbugs"},
      {"microreboot", "Heisenbugs"},
  };
  const auto it = kFaults.find(technique);
  return it != kFaults.end() ? it->second : "—";
}

std::vector<TechniqueAttribution> attribute(const TraceData& trace) {
  std::map<std::string, TechniqueAttribution> rows;
  for (const auto& e : trace.adjudications) {
    TechniqueAttribution& row = rows[e.technique];
    if (row.verdicts == 0) {
      row.technique = e.technique;
      row.fault_class = fault_class_of(e.technique);
    }
    ++row.verdicts;
    if (e.accepted) {
      ++row.accepted;
      if (e.ballots_failed > 0) ++row.masked;
    } else {
      ++row.rejected;
    }
    row.ballots_seen += e.ballots_seen;
    row.ballots_failed += e.ballots_failed;
    row.stragglers_cancelled += e.stragglers_cancelled;
    row.rounds += e.round;
  }
  std::vector<TechniqueAttribution> out;
  out.reserve(rows.size());
  for (auto& [name, row] : rows) out.push_back(std::move(row));
  return out;
}

std::vector<PatternLatency> critical_path(const TraceData& trace) {
  // Index spans by (trace, span) — span ids alone can collide between the
  // processes that appended to one trace file — and collect, per parent
  // span, the variant-execution children. A span that parents variant spans
  // is a pattern span (its name is the technique/pattern label), whether it
  // is a root (live request) or nested under a campaign shard.
  using SpanKey = std::pair<obs::TraceId, obs::SpanId>;
  std::map<SpanKey, const obs::SpanRecord*> by_id;
  for (const auto& s : trace.spans) {
    by_id.emplace(SpanKey{s.trace_id, s.span_id}, &s);
  }

  struct Window {
    std::uint64_t first_start = UINT64_MAX;
    std::uint64_t last_end = 0;
    std::uint64_t work = 0;
  };
  std::map<SpanKey, Window> windows;
  for (const auto& s : trace.spans) {
    if (!is_variant_span(s.name) || s.parent_id == 0) continue;
    const SpanKey parent_key{s.trace_id, s.parent_id};
    if (by_id.find(parent_key) == by_id.end()) continue;
    Window& w = windows[parent_key];
    w.first_start = std::min(w.first_start, s.t_start_ns);
    w.last_end = std::max(w.last_end, s.t_end_ns);
    w.work += s.duration_ns();
  }

  std::map<std::string, PatternLatency> rows;
  for (const auto& [parent_key, w] : windows) {
    const obs::SpanRecord& parent = *by_id.at(parent_key);
    PatternLatency& row = rows[parent.name];
    if (row.requests == 0) row.pattern = parent.name;
    ++row.requests;
    row.total_ns += parent.duration_ns();
    if (w.first_start >= parent.t_start_ns) {
      row.queue_ns += w.first_start - parent.t_start_ns;
    }
    if (w.last_end >= w.first_start) {
      row.variant_ns += w.last_end - w.first_start;
    }
    if (parent.t_end_ns >= w.last_end) {
      row.adjudication_ns += parent.t_end_ns - w.last_end;
    }
    row.variant_work_ns += w.work;
  }

  std::vector<PatternLatency> out;
  out.reserve(rows.size());
  for (auto& [name, row] : rows) out.push_back(std::move(row));
  return out;
}

SloReport slo_report(const TraceData& trace, double slo_pct) {
  SloReport report;
  report.slo_pct = slo_pct;
  const double budget = 1.0 - slo_pct / 100.0;  // allowed failure fraction
  SloRow overall;
  overall.technique = "overall";
  for (const auto& row : attribute(trace)) {
    SloRow r;
    r.technique = row.technique;
    r.verdicts = row.verdicts;
    r.rejected = row.rejected;
    r.failure_rate = row.failure_rate();
    r.budget_consumed = budget > 0.0 ? r.failure_rate / budget : 0.0;
    overall.verdicts += r.verdicts;
    overall.rejected += r.rejected;
    report.rows.push_back(std::move(r));
  }
  overall.failure_rate = overall.verdicts
                             ? double(overall.rejected) /
                                   double(overall.verdicts)
                             : 0.0;
  overall.budget_consumed =
      budget > 0.0 ? overall.failure_rate / budget : 0.0;
  report.rows.push_back(std::move(overall));
  return report;
}

std::string attribution_markdown(
    const std::vector<TechniqueAttribution>& rows) {
  std::string out;
  out +=
      "| technique | faults (Table 2) | verdicts | accepted | masked | "
      "failed | mask rate | failure rate | ballots seen | ballots failed | "
      "straggler-cancel rate | avg rounds |\n";
  out +=
      "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& r : rows) {
    const double avg_rounds =
        r.verdicts ? double(r.rounds) / double(r.verdicts) : 0.0;
    out += "| " + r.technique + " | " + r.fault_class + " | " +
           std::to_string(r.verdicts) + " | " + std::to_string(r.accepted) +
           " | " + std::to_string(r.masked) + " | " +
           std::to_string(r.rejected) + " | " + pct(r.mask_rate()) + " | " +
           pct(r.failure_rate()) + " | " + std::to_string(r.ballots_seen) +
           " | " + std::to_string(r.ballots_failed) + " | " +
           pct(r.straggler_cancel_rate()) + " | " + fixed(avg_rounds, 2) +
           " |\n";
  }
  if (rows.empty()) out += "| _no adjudication events in trace_ ||||||||||||\n";
  return out;
}

std::string latency_markdown(const std::vector<PatternLatency>& rows) {
  std::string out;
  out +=
      "| pattern | requests | mean total µs | queue µs (%) | variant µs (%) "
      "| adjudication µs (%) | fan-out work µs |\n";
  out += "|---|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& r : rows) {
    if (r.requests == 0) continue;
    const double n = double(r.requests);
    const double total = double(r.total_ns) / n / 1000.0;
    const double queue = double(r.queue_ns) / n / 1000.0;
    const double variant = double(r.variant_ns) / n / 1000.0;
    const double adjudicate = double(r.adjudication_ns) / n / 1000.0;
    const double work = double(r.variant_work_ns) / n / 1000.0;
    const double denom = total > 0.0 ? total : 1.0;
    out += "| " + r.pattern + " | " + std::to_string(r.requests) + " | " +
           fixed(total) + " | " + fixed(queue) + " (" +
           pct(queue / denom) + ") | " + fixed(variant) + " (" +
           pct(variant / denom) + ") | " + fixed(adjudicate) + " (" +
           pct(adjudicate / denom) + ") | " + fixed(work) + " |\n";
  }
  if (rows.empty()) out += "| _no pattern spans in trace_ |||||||\n";
  return out;
}

std::string slo_markdown(const SloReport& report) {
  std::string out;
  out += "SLO target: " + fixed(report.slo_pct, 3) +
         "% of adjudications accepted (error budget " +
         pct(1.0 - report.slo_pct / 100.0) + ")\n\n";
  out +=
      "| technique | verdicts | failed | failure rate | error budget "
      "consumed | status |\n";
  out += "|---|---:|---:|---:|---:|---|\n";
  for (const auto& r : report.rows) {
    const char* status = r.budget_consumed > 1.0          ? "EXHAUSTED"
                         : r.budget_consumed > 0.75       ? "at risk"
                                                          : "within budget";
    out += "| " + r.technique + " | " + std::to_string(r.verdicts) + " | " +
           std::to_string(r.rejected) + " | " + pct(r.failure_rate) + " | " +
           pct(r.budget_consumed) + " | " + status + " |\n";
  }
  return out;
}

}  // namespace redundancy::tracetool
