# Empty compiler generated dependencies file for diverse_db.
# This may be replaced when dependencies are built.
