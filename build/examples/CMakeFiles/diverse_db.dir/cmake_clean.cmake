file(REMOVE_RECURSE
  "CMakeFiles/diverse_db.dir/diverse_db.cpp.o"
  "CMakeFiles/diverse_db.dir/diverse_db.cpp.o.d"
  "diverse_db"
  "diverse_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diverse_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
