file(REMOVE_RECURSE
  "CMakeFiles/batch_pipeline.dir/batch_pipeline.cpp.o"
  "CMakeFiles/batch_pipeline.dir/batch_pipeline.cpp.o.d"
  "batch_pipeline"
  "batch_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
