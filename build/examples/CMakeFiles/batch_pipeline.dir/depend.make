# Empty dependencies file for batch_pipeline.
# This may be replaced when dependencies are built.
