# Empty dependencies file for flight_control.
# This may be replaced when dependencies are built.
