file(REMOVE_RECURSE
  "CMakeFiles/flight_control.dir/flight_control.cpp.o"
  "CMakeFiles/flight_control.dir/flight_control.cpp.o.d"
  "flight_control"
  "flight_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flight_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
