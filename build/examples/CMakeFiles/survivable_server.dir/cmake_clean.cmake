file(REMOVE_RECURSE
  "CMakeFiles/survivable_server.dir/survivable_server.cpp.o"
  "CMakeFiles/survivable_server.dir/survivable_server.cpp.o.d"
  "survivable_server"
  "survivable_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survivable_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
