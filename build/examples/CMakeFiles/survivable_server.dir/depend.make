# Empty dependencies file for survivable_server.
# This may be replaced when dependencies are built.
