# Empty compiler generated dependencies file for web_store.
# This may be replaced when dependencies are built.
