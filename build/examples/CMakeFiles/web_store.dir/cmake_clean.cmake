file(REMOVE_RECURSE
  "CMakeFiles/web_store.dir/web_store.cpp.o"
  "CMakeFiles/web_store.dir/web_store.cpp.o.d"
  "web_store"
  "web_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
