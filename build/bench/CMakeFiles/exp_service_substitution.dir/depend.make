# Empty dependencies file for exp_service_substitution.
# This may be replaced when dependencies are built.
