file(REMOVE_RECURSE
  "CMakeFiles/exp_service_substitution.dir/exp_service_substitution.cpp.o"
  "CMakeFiles/exp_service_substitution.dir/exp_service_substitution.cpp.o.d"
  "exp_service_substitution"
  "exp_service_substitution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_service_substitution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
