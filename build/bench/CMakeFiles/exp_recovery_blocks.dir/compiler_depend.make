# Empty compiler generated dependencies file for exp_recovery_blocks.
# This may be replaced when dependencies are built.
