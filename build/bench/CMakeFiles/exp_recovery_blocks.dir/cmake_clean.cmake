file(REMOVE_RECURSE
  "CMakeFiles/exp_recovery_blocks.dir/exp_recovery_blocks.cpp.o"
  "CMakeFiles/exp_recovery_blocks.dir/exp_recovery_blocks.cpp.o.d"
  "exp_recovery_blocks"
  "exp_recovery_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_recovery_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
