# Empty compiler generated dependencies file for exp_process_replicas.
# This may be replaced when dependencies are built.
