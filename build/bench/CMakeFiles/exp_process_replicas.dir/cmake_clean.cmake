file(REMOVE_RECURSE
  "CMakeFiles/exp_process_replicas.dir/exp_process_replicas.cpp.o"
  "CMakeFiles/exp_process_replicas.dir/exp_process_replicas.cpp.o.d"
  "exp_process_replicas"
  "exp_process_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_process_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
