file(REMOVE_RECURSE
  "CMakeFiles/exp_rejuvenation.dir/exp_rejuvenation.cpp.o"
  "CMakeFiles/exp_rejuvenation.dir/exp_rejuvenation.cpp.o.d"
  "exp_rejuvenation"
  "exp_rejuvenation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
