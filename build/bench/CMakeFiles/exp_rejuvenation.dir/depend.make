# Empty dependencies file for exp_rejuvenation.
# This may be replaced when dependencies are built.
