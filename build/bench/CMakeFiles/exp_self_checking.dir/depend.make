# Empty dependencies file for exp_self_checking.
# This may be replaced when dependencies are built.
