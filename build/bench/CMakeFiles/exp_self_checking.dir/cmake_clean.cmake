file(REMOVE_RECURSE
  "CMakeFiles/exp_self_checking.dir/exp_self_checking.cpp.o"
  "CMakeFiles/exp_self_checking.dir/exp_self_checking.cpp.o.d"
  "exp_self_checking"
  "exp_self_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_self_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
