file(REMOVE_RECURSE
  "CMakeFiles/table2_taxonomy.dir/table2_taxonomy.cpp.o"
  "CMakeFiles/table2_taxonomy.dir/table2_taxonomy.cpp.o.d"
  "table2_taxonomy"
  "table2_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
