file(REMOVE_RECURSE
  "CMakeFiles/exp_data_diversity.dir/exp_data_diversity.cpp.o"
  "CMakeFiles/exp_data_diversity.dir/exp_data_diversity.cpp.o.d"
  "exp_data_diversity"
  "exp_data_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_data_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
