# Empty dependencies file for exp_data_diversity.
# This may be replaced when dependencies are built.
