# Empty compiler generated dependencies file for exp_checkpoint_recovery.
# This may be replaced when dependencies are built.
