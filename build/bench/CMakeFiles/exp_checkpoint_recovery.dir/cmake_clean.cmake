file(REMOVE_RECURSE
  "CMakeFiles/exp_checkpoint_recovery.dir/exp_checkpoint_recovery.cpp.o"
  "CMakeFiles/exp_checkpoint_recovery.dir/exp_checkpoint_recovery.cpp.o.d"
  "exp_checkpoint_recovery"
  "exp_checkpoint_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_checkpoint_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
