# Empty dependencies file for exp_genetic_repair.
# This may be replaced when dependencies are built.
