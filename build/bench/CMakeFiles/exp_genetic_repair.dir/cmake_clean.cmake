file(REMOVE_RECURSE
  "CMakeFiles/exp_genetic_repair.dir/exp_genetic_repair.cpp.o"
  "CMakeFiles/exp_genetic_repair.dir/exp_genetic_repair.cpp.o.d"
  "exp_genetic_repair"
  "exp_genetic_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_genetic_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
