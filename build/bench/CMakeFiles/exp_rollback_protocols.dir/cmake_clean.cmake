file(REMOVE_RECURSE
  "CMakeFiles/exp_rollback_protocols.dir/exp_rollback_protocols.cpp.o"
  "CMakeFiles/exp_rollback_protocols.dir/exp_rollback_protocols.cpp.o.d"
  "exp_rollback_protocols"
  "exp_rollback_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_rollback_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
