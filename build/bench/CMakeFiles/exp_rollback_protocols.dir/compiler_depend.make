# Empty compiler generated dependencies file for exp_rollback_protocols.
# This may be replaced when dependencies are built.
