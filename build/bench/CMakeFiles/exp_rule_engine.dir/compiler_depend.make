# Empty compiler generated dependencies file for exp_rule_engine.
# This may be replaced when dependencies are built.
