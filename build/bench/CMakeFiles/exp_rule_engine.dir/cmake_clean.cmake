file(REMOVE_RECURSE
  "CMakeFiles/exp_rule_engine.dir/exp_rule_engine.cpp.o"
  "CMakeFiles/exp_rule_engine.dir/exp_rule_engine.cpp.o.d"
  "exp_rule_engine"
  "exp_rule_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_rule_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
