# Empty compiler generated dependencies file for exp_ablation_adjudicators.
# This may be replaced when dependencies are built.
