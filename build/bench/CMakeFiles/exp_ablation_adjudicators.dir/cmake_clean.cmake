file(REMOVE_RECURSE
  "CMakeFiles/exp_ablation_adjudicators.dir/exp_ablation_adjudicators.cpp.o"
  "CMakeFiles/exp_ablation_adjudicators.dir/exp_ablation_adjudicators.cpp.o.d"
  "exp_ablation_adjudicators"
  "exp_ablation_adjudicators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ablation_adjudicators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
