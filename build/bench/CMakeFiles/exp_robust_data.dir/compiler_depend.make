# Empty compiler generated dependencies file for exp_robust_data.
# This may be replaced when dependencies are built.
