file(REMOVE_RECURSE
  "CMakeFiles/exp_robust_data.dir/exp_robust_data.cpp.o"
  "CMakeFiles/exp_robust_data.dir/exp_robust_data.cpp.o.d"
  "exp_robust_data"
  "exp_robust_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_robust_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
