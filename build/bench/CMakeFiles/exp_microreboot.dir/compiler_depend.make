# Empty compiler generated dependencies file for exp_microreboot.
# This may be replaced when dependencies are built.
