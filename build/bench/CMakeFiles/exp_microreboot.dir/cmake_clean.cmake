file(REMOVE_RECURSE
  "CMakeFiles/exp_microreboot.dir/exp_microreboot.cpp.o"
  "CMakeFiles/exp_microreboot.dir/exp_microreboot.cpp.o.d"
  "exp_microreboot"
  "exp_microreboot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_microreboot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
