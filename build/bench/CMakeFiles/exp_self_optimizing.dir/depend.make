# Empty dependencies file for exp_self_optimizing.
# This may be replaced when dependencies are built.
