file(REMOVE_RECURSE
  "CMakeFiles/exp_self_optimizing.dir/exp_self_optimizing.cpp.o"
  "CMakeFiles/exp_self_optimizing.dir/exp_self_optimizing.cpp.o.d"
  "exp_self_optimizing"
  "exp_self_optimizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_self_optimizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
