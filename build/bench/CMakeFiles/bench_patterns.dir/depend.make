# Empty dependencies file for bench_patterns.
# This may be replaced when dependencies are built.
