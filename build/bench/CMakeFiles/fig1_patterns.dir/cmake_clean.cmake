file(REMOVE_RECURSE
  "CMakeFiles/fig1_patterns.dir/fig1_patterns.cpp.o"
  "CMakeFiles/fig1_patterns.dir/fig1_patterns.cpp.o.d"
  "fig1_patterns"
  "fig1_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
