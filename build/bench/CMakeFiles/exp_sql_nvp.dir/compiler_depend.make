# Empty compiler generated dependencies file for exp_sql_nvp.
# This may be replaced when dependencies are built.
