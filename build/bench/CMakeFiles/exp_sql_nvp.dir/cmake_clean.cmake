file(REMOVE_RECURSE
  "CMakeFiles/exp_sql_nvp.dir/exp_sql_nvp.cpp.o"
  "CMakeFiles/exp_sql_nvp.dir/exp_sql_nvp.cpp.o.d"
  "exp_sql_nvp"
  "exp_sql_nvp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sql_nvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
