file(REMOVE_RECURSE
  "CMakeFiles/bench_voters.dir/bench_voters.cpp.o"
  "CMakeFiles/bench_voters.dir/bench_voters.cpp.o.d"
  "bench_voters"
  "bench_voters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_voters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
