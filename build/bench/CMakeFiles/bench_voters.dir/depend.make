# Empty dependencies file for bench_voters.
# This may be replaced when dependencies are built.
