file(REMOVE_RECURSE
  "CMakeFiles/bench_wrappers.dir/bench_wrappers.cpp.o"
  "CMakeFiles/bench_wrappers.dir/bench_wrappers.cpp.o.d"
  "bench_wrappers"
  "bench_wrappers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wrappers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
