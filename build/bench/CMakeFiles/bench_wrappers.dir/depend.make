# Empty dependencies file for bench_wrappers.
# This may be replaced when dependencies are built.
