# Empty dependencies file for exp_cost_of_redundancy.
# This may be replaced when dependencies are built.
