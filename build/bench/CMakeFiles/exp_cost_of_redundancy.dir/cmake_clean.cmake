file(REMOVE_RECURSE
  "CMakeFiles/exp_cost_of_redundancy.dir/exp_cost_of_redundancy.cpp.o"
  "CMakeFiles/exp_cost_of_redundancy.dir/exp_cost_of_redundancy.cpp.o.d"
  "exp_cost_of_redundancy"
  "exp_cost_of_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_cost_of_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
