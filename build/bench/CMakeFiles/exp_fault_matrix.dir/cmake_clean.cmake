file(REMOVE_RECURSE
  "CMakeFiles/exp_fault_matrix.dir/exp_fault_matrix.cpp.o"
  "CMakeFiles/exp_fault_matrix.dir/exp_fault_matrix.cpp.o.d"
  "exp_fault_matrix"
  "exp_fault_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fault_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
