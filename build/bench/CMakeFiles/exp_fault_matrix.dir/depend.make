# Empty dependencies file for exp_fault_matrix.
# This may be replaced when dependencies are built.
