# Empty compiler generated dependencies file for exp_nvp_reliability.
# This may be replaced when dependencies are built.
