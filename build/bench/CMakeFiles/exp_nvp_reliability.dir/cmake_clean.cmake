file(REMOVE_RECURSE
  "CMakeFiles/exp_nvp_reliability.dir/exp_nvp_reliability.cpp.o"
  "CMakeFiles/exp_nvp_reliability.dir/exp_nvp_reliability.cpp.o.d"
  "exp_nvp_reliability"
  "exp_nvp_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_nvp_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
