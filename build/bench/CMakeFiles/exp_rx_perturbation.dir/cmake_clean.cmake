file(REMOVE_RECURSE
  "CMakeFiles/exp_rx_perturbation.dir/exp_rx_perturbation.cpp.o"
  "CMakeFiles/exp_rx_perturbation.dir/exp_rx_perturbation.cpp.o.d"
  "exp_rx_perturbation"
  "exp_rx_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_rx_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
