# Empty compiler generated dependencies file for exp_rx_perturbation.
# This may be replaced when dependencies are built.
