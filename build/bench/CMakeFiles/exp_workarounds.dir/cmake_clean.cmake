file(REMOVE_RECURSE
  "CMakeFiles/exp_workarounds.dir/exp_workarounds.cpp.o"
  "CMakeFiles/exp_workarounds.dir/exp_workarounds.cpp.o.d"
  "exp_workarounds"
  "exp_workarounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_workarounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
