# Empty compiler generated dependencies file for exp_workarounds.
# This may be replaced when dependencies are built.
