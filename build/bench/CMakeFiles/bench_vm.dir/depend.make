# Empty dependencies file for bench_vm.
# This may be replaced when dependencies are built.
