# Empty dependencies file for redundancy.
# This may be replaced when dependencies are built.
