file(REMOVE_RECURSE
  "libredundancy.a"
)
