
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/failure.cpp" "src/CMakeFiles/redundancy.dir/core/failure.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/core/failure.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/redundancy.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/redundancy.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/taxonomy.cpp" "src/CMakeFiles/redundancy.dir/core/taxonomy.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/core/taxonomy.cpp.o.d"
  "/root/repo/src/env/aging.cpp" "src/CMakeFiles/redundancy.dir/env/aging.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/env/aging.cpp.o.d"
  "/root/repo/src/env/checkpoint.cpp" "src/CMakeFiles/redundancy.dir/env/checkpoint.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/env/checkpoint.cpp.o.d"
  "/root/repo/src/env/heap_model.cpp" "src/CMakeFiles/redundancy.dir/env/heap_model.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/env/heap_model.cpp.o.d"
  "/root/repo/src/env/simenv.cpp" "src/CMakeFiles/redundancy.dir/env/simenv.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/env/simenv.cpp.o.d"
  "/root/repo/src/faults/campaign.cpp" "src/CMakeFiles/redundancy.dir/faults/campaign.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/faults/campaign.cpp.o.d"
  "/root/repo/src/faults/fault.cpp" "src/CMakeFiles/redundancy.dir/faults/fault.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/faults/fault.cpp.o.d"
  "/root/repo/src/rollback/distsim.cpp" "src/CMakeFiles/redundancy.dir/rollback/distsim.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/rollback/distsim.cpp.o.d"
  "/root/repo/src/services/binding.cpp" "src/CMakeFiles/redundancy.dir/services/binding.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/services/binding.cpp.o.d"
  "/root/repo/src/services/converter.cpp" "src/CMakeFiles/redundancy.dir/services/converter.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/services/converter.cpp.o.d"
  "/root/repo/src/services/registry.cpp" "src/CMakeFiles/redundancy.dir/services/registry.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/services/registry.cpp.o.d"
  "/root/repo/src/services/service.cpp" "src/CMakeFiles/redundancy.dir/services/service.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/services/service.cpp.o.d"
  "/root/repo/src/services/workflow.cpp" "src/CMakeFiles/redundancy.dir/services/workflow.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/services/workflow.cpp.o.d"
  "/root/repo/src/sql/btree_store.cpp" "src/CMakeFiles/redundancy.dir/sql/btree_store.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/sql/btree_store.cpp.o.d"
  "/root/repo/src/sql/chaos.cpp" "src/CMakeFiles/redundancy.dir/sql/chaos.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/sql/chaos.cpp.o.d"
  "/root/repo/src/sql/log_store.cpp" "src/CMakeFiles/redundancy.dir/sql/log_store.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/sql/log_store.cpp.o.d"
  "/root/repo/src/sql/vector_store.cpp" "src/CMakeFiles/redundancy.dir/sql/vector_store.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/sql/vector_store.cpp.o.d"
  "/root/repo/src/techniques/checkpoint_recovery.cpp" "src/CMakeFiles/redundancy.dir/techniques/checkpoint_recovery.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/checkpoint_recovery.cpp.o.d"
  "/root/repo/src/techniques/genetic_repair.cpp" "src/CMakeFiles/redundancy.dir/techniques/genetic_repair.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/genetic_repair.cpp.o.d"
  "/root/repo/src/techniques/microreboot.cpp" "src/CMakeFiles/redundancy.dir/techniques/microreboot.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/microreboot.cpp.o.d"
  "/root/repo/src/techniques/nvariant_data.cpp" "src/CMakeFiles/redundancy.dir/techniques/nvariant_data.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/nvariant_data.cpp.o.d"
  "/root/repo/src/techniques/process_pair.cpp" "src/CMakeFiles/redundancy.dir/techniques/process_pair.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/process_pair.cpp.o.d"
  "/root/repo/src/techniques/process_replicas.cpp" "src/CMakeFiles/redundancy.dir/techniques/process_replicas.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/process_replicas.cpp.o.d"
  "/root/repo/src/techniques/register_all.cpp" "src/CMakeFiles/redundancy.dir/techniques/register_all.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/register_all.cpp.o.d"
  "/root/repo/src/techniques/rejuvenation.cpp" "src/CMakeFiles/redundancy.dir/techniques/rejuvenation.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/rejuvenation.cpp.o.d"
  "/root/repo/src/techniques/robust_data.cpp" "src/CMakeFiles/redundancy.dir/techniques/robust_data.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/robust_data.cpp.o.d"
  "/root/repo/src/techniques/rule_engine.cpp" "src/CMakeFiles/redundancy.dir/techniques/rule_engine.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/rule_engine.cpp.o.d"
  "/root/repo/src/techniques/rx.cpp" "src/CMakeFiles/redundancy.dir/techniques/rx.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/rx.cpp.o.d"
  "/root/repo/src/techniques/self_optimizing.cpp" "src/CMakeFiles/redundancy.dir/techniques/self_optimizing.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/self_optimizing.cpp.o.d"
  "/root/repo/src/techniques/service_substitution.cpp" "src/CMakeFiles/redundancy.dir/techniques/service_substitution.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/service_substitution.cpp.o.d"
  "/root/repo/src/techniques/sql_nvp.cpp" "src/CMakeFiles/redundancy.dir/techniques/sql_nvp.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/sql_nvp.cpp.o.d"
  "/root/repo/src/techniques/workarounds.cpp" "src/CMakeFiles/redundancy.dir/techniques/workarounds.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/workarounds.cpp.o.d"
  "/root/repo/src/techniques/wrappers.cpp" "src/CMakeFiles/redundancy.dir/techniques/wrappers.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/techniques/wrappers.cpp.o.d"
  "/root/repo/src/util/checksum.cpp" "src/CMakeFiles/redundancy.dir/util/checksum.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/util/checksum.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/redundancy.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/redundancy.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/redundancy.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/vm/address_space.cpp" "src/CMakeFiles/redundancy.dir/vm/address_space.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/vm/address_space.cpp.o.d"
  "/root/repo/src/vm/assembler.cpp" "src/CMakeFiles/redundancy.dir/vm/assembler.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/vm/assembler.cpp.o.d"
  "/root/repo/src/vm/attacks.cpp" "src/CMakeFiles/redundancy.dir/vm/attacks.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/vm/attacks.cpp.o.d"
  "/root/repo/src/vm/program.cpp" "src/CMakeFiles/redundancy.dir/vm/program.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/vm/program.cpp.o.d"
  "/root/repo/src/vm/vm.cpp" "src/CMakeFiles/redundancy.dir/vm/vm.cpp.o" "gcc" "src/CMakeFiles/redundancy.dir/vm/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
