
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/acceptance_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/core/acceptance_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/core/acceptance_test.cpp.o.d"
  "/root/repo/tests/core/adaptive_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/core/adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/core/adaptive_test.cpp.o.d"
  "/root/repo/tests/core/patterns_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/core/patterns_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/core/patterns_test.cpp.o.d"
  "/root/repo/tests/core/result_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/core/result_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/core/result_test.cpp.o.d"
  "/root/repo/tests/core/taxonomy_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/core/taxonomy_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/core/taxonomy_test.cpp.o.d"
  "/root/repo/tests/core/voters_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/core/voters_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/core/voters_test.cpp.o.d"
  "/root/repo/tests/env/aging_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/env/aging_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/env/aging_test.cpp.o.d"
  "/root/repo/tests/env/checkpoint_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/env/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/env/checkpoint_test.cpp.o.d"
  "/root/repo/tests/env/heap_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/env/heap_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/env/heap_test.cpp.o.d"
  "/root/repo/tests/env/simenv_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/env/simenv_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/env/simenv_test.cpp.o.d"
  "/root/repo/tests/faults/fault_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/faults/fault_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/faults/fault_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/rollback/distsim_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/rollback/distsim_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/rollback/distsim_test.cpp.o.d"
  "/root/repo/tests/services/services_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/services/services_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/services/services_test.cpp.o.d"
  "/root/repo/tests/services/workflow_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/services/workflow_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/services/workflow_test.cpp.o.d"
  "/root/repo/tests/sql/chaos_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/sql/chaos_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/sql/chaos_test.cpp.o.d"
  "/root/repo/tests/sql/store_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/sql/store_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/sql/store_test.cpp.o.d"
  "/root/repo/tests/techniques/checkpoint_recovery_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/checkpoint_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/checkpoint_recovery_test.cpp.o.d"
  "/root/repo/tests/techniques/data_diversity_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/data_diversity_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/data_diversity_test.cpp.o.d"
  "/root/repo/tests/techniques/genetic_repair_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/genetic_repair_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/genetic_repair_test.cpp.o.d"
  "/root/repo/tests/techniques/healer_fuzz_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/healer_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/healer_fuzz_test.cpp.o.d"
  "/root/repo/tests/techniques/microreboot_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/microreboot_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/microreboot_test.cpp.o.d"
  "/root/repo/tests/techniques/nvariant_data_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/nvariant_data_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/nvariant_data_test.cpp.o.d"
  "/root/repo/tests/techniques/nvp_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/nvp_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/nvp_test.cpp.o.d"
  "/root/repo/tests/techniques/process_pair_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/process_pair_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/process_pair_test.cpp.o.d"
  "/root/repo/tests/techniques/process_replicas_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/process_replicas_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/process_replicas_test.cpp.o.d"
  "/root/repo/tests/techniques/recovery_blocks_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/recovery_blocks_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/recovery_blocks_test.cpp.o.d"
  "/root/repo/tests/techniques/rejuvenation_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/rejuvenation_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/rejuvenation_test.cpp.o.d"
  "/root/repo/tests/techniques/robust_data_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/robust_data_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/robust_data_test.cpp.o.d"
  "/root/repo/tests/techniques/rule_engine_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/rule_engine_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/rule_engine_test.cpp.o.d"
  "/root/repo/tests/techniques/rx_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/rx_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/rx_test.cpp.o.d"
  "/root/repo/tests/techniques/self_checking_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/self_checking_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/self_checking_test.cpp.o.d"
  "/root/repo/tests/techniques/self_optimizing_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/self_optimizing_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/self_optimizing_test.cpp.o.d"
  "/root/repo/tests/techniques/service_substitution_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/service_substitution_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/service_substitution_test.cpp.o.d"
  "/root/repo/tests/techniques/sql_nvp_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/sql_nvp_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/sql_nvp_test.cpp.o.d"
  "/root/repo/tests/techniques/workarounds_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/workarounds_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/workarounds_test.cpp.o.d"
  "/root/repo/tests/techniques/wrappers_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/techniques/wrappers_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/techniques/wrappers_test.cpp.o.d"
  "/root/repo/tests/util/checksum_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/util/checksum_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/util/checksum_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/util/thread_pool_test.cpp.o.d"
  "/root/repo/tests/vm/attacks_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/vm/attacks_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/vm/attacks_test.cpp.o.d"
  "/root/repo/tests/vm/vm_fuzz_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/vm/vm_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/vm/vm_fuzz_test.cpp.o.d"
  "/root/repo/tests/vm/vm_test.cpp" "tests/CMakeFiles/redundancy_tests.dir/vm/vm_test.cpp.o" "gcc" "tests/CMakeFiles/redundancy_tests.dir/vm/vm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/redundancy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
