# Empty dependencies file for redundancy_tests.
# This may be replaced when dependencies are built.
