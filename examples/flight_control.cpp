// flight_control: the classic safety-critical deployment the fault-
// tolerance literature was built for. A pitch-command control law is
// implemented by three independently developed channels; the deployment
// stacks *deliberate* redundancy three ways:
//
//   1. N-version programming with median voting across the channels
//      (inexact voting: channels legitimately differ in low-order bits);
//   2. a recovery block around the voted value, whose acceptance test is a
//      physical envelope check (commands must stay within actuator limits
//      and rate limits), falling back to a simple certified backup law;
//   3. robust data structures + a software audit protecting the command
//      history log against wild stores.
//
// One channel carries a Bohrbug (sign flip in a gain term on a region of
// the envelope) and another a Heisenbug (sporadic sensor-latch crash).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>

#include "core/voters.hpp"
#include "faults/fault.hpp"
#include "techniques/nvp.hpp"
#include "techniques/recovery_blocks.hpp"
#include "techniques/robust_data.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

struct FlightState {
  double pitch_error = 0.0;  // degrees
  double rate = 0.0;         // deg/s

  friend bool operator==(const FlightState&, const FlightState&) = default;
};

// The reference control law: PD with gain scheduling.
double control_law(const FlightState& s) {
  const double kp = 2.2, kd = 0.9;
  return kp * s.pitch_error + kd * s.rate;
}

// Certified, simple backup law (lower performance, trusted): a pure
// proportional law saturated at the actuator limit, so it can never emit an
// out-of-envelope command.
double backup_law(const FlightState& s) {
  const double cmd = 1.5 * s.pitch_error;
  return std::clamp(cmd, -35.0, 35.0);
}

}  // namespace

int main() {
  auto rng = std::make_shared<util::Rng>(2026);

  // --- Channel A: clean implementation.
  auto channel_a = core::make_variant<FlightState, double>(
      "channel-A", [](const FlightState& s) -> core::Result<double> {
        return control_law(s);
      });
  // --- Channel B: Bohrbug — sign flip of the damping term when the error
  // is large and the rate negative (an untested corner of the envelope).
  auto channel_b = core::make_variant<FlightState, double>(
      "channel-B", [](const FlightState& s) -> core::Result<double> {
        if (s.pitch_error > 8.0 && s.rate < -2.0) {
          return 2.2 * s.pitch_error - 0.9 * s.rate;  // sign flip
        }
        return control_law(s);
      });
  // --- Channel C: Heisenbug — sporadic sensor latch-up crashes the frame.
  auto channel_c = core::make_variant<FlightState, double>(
      "channel-C", [rng](const FlightState& s) -> core::Result<double> {
        if (rng->chance(0.02)) {
          return core::failure(core::FailureKind::crash, "sensor latch-up",
                               core::FaultClass::heisenbug);
        }
        return control_law(s);
      });

  auto nvp = std::make_shared<techniques::NVersionProgramming<FlightState, double>>(
      std::vector<core::Variant<FlightState, double>>{channel_a, channel_b,
                                                      channel_c},
      core::median_voter<double>());

  // Recovery block: voted command, then the certified backup; the
  // acceptance test is the actuator envelope.
  auto envelope = [](const FlightState&, const double& cmd) {
    return std::abs(cmd) <= 35.0;  // actuator hard limit, degrees
  };
  techniques::RecoveryBlocks<FlightState, double> controller{
      {core::make_variant<FlightState, double>(
           "voted-triplex",
           [nvp](const FlightState& s) { return nvp->run(s); }),
       core::make_variant<FlightState, double>(
           "certified-backup",
           [](const FlightState& s) -> core::Result<double> {
             return backup_law(s);
           })},
      envelope};

  // Robust command log, audited every 64 frames.
  techniques::RobustList command_log;
  techniques::SoftwareAudit audit{64};
  audit.watch("command-log", [&command_log] { return command_log.audit(); });

  // --- Fly a seeded gust profile.
  util::Rng world{7};
  std::size_t frames = 0, degraded = 0, masked = 0;
  for (int t = 0; t < 5000; ++t) {
    FlightState s{world.normal(0.0, 6.0), world.normal(0.0, 3.0)};
    const auto before = controller.metrics().recoveries;
    auto cmd = controller.run(s);
    if (!cmd.has_value()) {
      std::cerr << "frame " << t << ": TOTAL LOSS OF CONTROL LAW\n";
      return 1;
    }
    if (controller.last_used_alternate() == 1) ++degraded;
    if (controller.metrics().recoveries > before) ++masked;
    command_log.push_back(static_cast<std::int64_t>(cmd.value() * 1000));
    // A wild store hits the log occasionally (cosmic-ray stand-in).
    if (world.chance(0.002)) {
      command_log.corrupt_next(world.index(command_log.size()),
                               world.index(100'000));
    }
    audit.tick();
    ++frames;
  }

  util::Table table{"flight_control: 5000 frames through the triplex stack"};
  table.header({"metric", "value"});
  table.row({"frames flown", util::Table::count(frames)});
  table.row({"channel executions",
             util::Table::count(nvp->metrics().variant_executions)});
  table.row({"channel-level failures masked by the vote",
             util::Table::count(nvp->metrics().recoveries)});
  table.row({"envelope rejections handled by backup law",
             util::Table::count(degraded)});
  table.row({"recovery-block recoveries", util::Table::count(masked)});
  table.row({"command-log audits run", util::Table::count(audit.runs())});
  table.row({"log corruptions repaired",
             util::Table::count(audit.totals().errors_repaired)});
  table.row({"log entries surviving", util::Table::count(command_log.size())});
  table.print(std::cout);
  std::cout << "No frame was lost: the median vote rode through channel C's\n"
               "latch-ups and channel B's corner-case sign flip, the\n"
               "envelope check caught anything the vote let through, and\n"
               "the audited log repaired its own wild stores.\n";
  return 0;
}
