// web_store: the self-healing, service-oriented deployment from the
// autonomic-computing side of the survey. A checkout process orchestrates
// payment, inventory, and shipping services with *opportunistic*
// redundancy:
//
//   * dynamic service substitution — payment providers come and go; the
//     binding rebinds transparently, bridging a similar-interface provider
//     through an auto-derived converter;
//   * a BPEL-style workflow with retry and scoped fault handlers backed by
//     a rule registry (cached fallbacks);
//   * a micro-rebootable component tree hosting the web tier, with an
//     externalized session store.
#include <iostream>

#include "services/workflow.hpp"
#include "techniques/microreboot.hpp"
#include "techniques/rule_engine.hpp"
#include "techniques/service_substitution.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace redundancy;
using services::Interface;
using services::Message;

int main() {
  util::Rng rng{11};

  // --- Service registry: two exact payment providers plus a legacy one
  // behind a renamed interface.
  services::Registry registry;
  const Interface pay_iface{"charge", {"order", "amount"}, {"auth"}};
  auto pay_fast = std::make_shared<services::Endpoint>(
      "pay-fast", pay_iface,
      [](const Message&) -> core::Result<Message> {
        return Message{{"auth", std::string{"fast-0001"}}};
      },
      services::Qos{.mean_latency_ms = 12, .availability = 1.0});
  auto pay_main = std::make_shared<services::Endpoint>(
      "pay-main", pay_iface,
      [](const Message&) -> core::Result<Message> {
        return Message{{"auth", std::string{"main-0001"}}};
      },
      services::Qos{.mean_latency_ms = 30, .availability = 1.0});
  auto pay_legacy = std::make_shared<services::Endpoint>(
      "pay-legacy", Interface{"charge", {"order_id", "total"}, {"auth_code"}},
      [](const Message&) -> core::Result<Message> {
        return Message{{"auth_code", std::string{"legacy-9"}}};
      },
      services::Qos{.mean_latency_ms = 80, .availability = 1.0});
  registry.add(pay_fast);
  registry.add(pay_main);
  registry.add(pay_legacy);

  auto payment = std::make_shared<services::DynamicBinding>(pay_iface, registry);

  // --- Inventory is flaky (transient lock timeouts): BPEL retry handles it.
  auto inventory = std::make_shared<services::Endpoint>(
      "inventory", Interface{"reserve", {"sku"}, {"reserved"}},
      [&rng](const Message& m) -> core::Result<Message> {
        if (rng.chance(0.25)) {
          return core::failure(core::FailureKind::timeout, "lock timeout");
        }
        Message out = m;
        out["reserved"] = std::int64_t{1};
        return out;
      });

  // --- Shipping quotes fail outright now and then; a rule registry serves
  // the cached rate instead.
  techniques::RuleEngine rules;
  rules.add_rule({"quoteShipping", core::FailureKind::unavailable,
                  "cached-rate", [](const Message&) -> core::Result<Message> {
                    return Message{{"shipping", std::int64_t{799}}};
                  }});
  auto shipping_raw = [&rng](const Message&) -> core::Result<Message> {
    if (rng.chance(0.15)) {
      return core::failure(core::FailureKind::unavailable, "carrier API down");
    }
    return Message{{"shipping", std::int64_t{499}}};
  };
  auto shipping = rules.protect("quoteShipping", shipping_raw);

  // --- The checkout workflow.
  auto checkout = services::Workflow{
      "checkout",
      services::sequence(
          {services::retry(services::invoke(inventory), 8),
           services::invoke(payment),
           services::assign("ship", [&shipping](Message m) {
             if (auto quote = shipping(m); quote.has_value()) {
               m.insert(quote.value().begin(), quote.value().end());
             }
             return m;
           })})};

  // --- Web tier in a micro-rebootable container.
  techniques::MicrorebootContainer container;
  (void)container.add_component("kernel", 120.0);
  (void)container.add_component("web", 25.0, "kernel");
  (void)container.add_component("checkout-svc", 6.0, "web");

  std::size_t orders = 0, healed_payment = 0, microreboots = 0;
  double reboot_downtime = 0.0;
  for (int t = 0; t < 2000; ++t) {
    // The flagship payment provider suffers an outage window; later the
    // second provider dies for good.
    if (t == 400) pay_fast->kill();
    if (t == 900) pay_main->kill();
    // The web tier wedges occasionally (Heisenbug): micro-reboot it.
    if (rng.chance(0.005)) (void)container.fail("checkout-svc");
    if (!container.serve("checkout-svc").has_value()) {
      auto report = container.microreboot("checkout-svc");
      reboot_downtime += report.value().downtime;
      ++microreboots;
    }
    (void)container.open_session("checkout-svc", /*externalized=*/true);

    const std::size_t rebinds_before = payment->rebinds();
    auto out = checkout.run(Message{{"order", std::int64_t{t}},
                                    {"sku", std::string{"SKU-42"}},
                                    {"amount", std::int64_t{2499}}});
    if (out.has_value()) ++orders;
    if (payment->rebinds() > rebinds_before) ++healed_payment;
  }

  util::Table table{"web_store: 2000 checkouts through the self-healing stack"};
  table.header({"metric", "value"});
  table.row({"orders completed", util::Table::count(orders)});
  table.row({"payment rebinds (incl. converter)",
             util::Table::count(payment->rebinds())});
  table.row({"payment bound now", payment->current()->id()});
  table.row({"inventory retries that saved an order",
             util::Table::count(checkout.metrics().recoveries)});
  table.row({"shipping rule activations",
             util::Table::count(rules.activations())});
  table.row({"web-tier micro-reboots", util::Table::count(microreboots)});
  table.row({"micro-reboot downtime units",
             util::Table::num(reboot_downtime, 0)});
  table.row({"sessions alive (externalized)",
             util::Table::count(container.active_sessions())});
  table.print(std::cout);
  std::cout << "All " << orders << "/2000 orders completed: the binding\n"
            << "walked pay-fast -> pay-main -> pay-legacy (the last through\n"
            << "an automatically derived converter), retries absorbed the\n"
            << "inventory's lock timeouts, the rule registry served cached\n"
            << "shipping rates, and wedged web components were micro-\n"
            << "rebooted without losing a session.\n";
  return orders == 2000 ? 0 : 1;
}
