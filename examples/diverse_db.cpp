// diverse_db: N-version programming at the database tier (Gashi et al.,
// discussed in Section 4.1). An inventory application runs its statements
// against three independently designed storage engines behind a voting
// front end. One engine develops faults mid-run — it silently drops some
// mutations and corrupts some reads — and the deployment keeps answering
// correctly: wrong reads are outvoted statement by statement, and the
// periodic state-digest reconciliation exposes the lost updates and evicts
// the lying engine.
#include <iostream>

#include "sql/chaos.hpp"
#include "techniques/sql_nvp.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace redundancy;
using sql::Condition;
using sql::Row;

int main() {
  std::vector<sql::StorePtr> replicas;
  replicas.push_back(sql::make_vector_store());
  replicas.push_back(sql::make_btree_store());
  replicas.push_back(sql::make_chaotic_store(
      sql::make_log_store(),
      {.lose_mutation_probability = 0.08, .corrupt_read_probability = 0.08,
       .seed = 2026}));
  techniques::ReplicatedSqlServer db{std::move(replicas),
                                     {.reconcile_every = 32}};

  if (!db.create_table("inventory", {"sku", "stock", "price"}).has_value()) {
    return 1;
  }

  // Seed the catalogue.
  util::Rng rng{17};
  for (std::int64_t sku = 1; sku <= 50; ++sku) {
    if (!db.insert("inventory", Row{sku, rng.between(0, 100),
                                    rng.between(100, 5000)})
             .has_value()) {
      std::cerr << "seed insert failed\n";
      return 1;
    }
  }

  // Run a day of traffic: restocks, sales, price changes, stock queries.
  std::size_t statements = 0, refused = 0;
  std::int64_t audited_stock = -1;
  for (int t = 0; t < 1500; ++t) {
    ++statements;
    const auto sku = rng.between(1, 50);
    switch (rng.below(4)) {
      case 0:  // restock
        if (!db.update("inventory", Condition{"sku", Condition::Op::eq, sku},
                       "stock", rng.between(10, 120))
                 .has_value()) {
          ++refused;
        }
        break;
      case 1:  // price change
        if (!db.update("inventory", Condition{"sku", Condition::Op::eq, sku},
                       "price", rng.between(100, 5000))
                 .has_value()) {
          ++refused;
        }
        break;
      default: {  // stock query
        auto rows = db.select("inventory",
                              Condition{"sku", Condition::Op::eq, sku});
        if (!rows.has_value()) {
          ++refused;
        } else if (!rows.value().empty()) {
          audited_stock = rows.value()[0][1];
        }
        break;
      }
    }
  }

  // End-of-day audit: the deployment's state must be internally agreed.
  const bool digest_ok = db.state_digest().has_value();

  util::Table table{"diverse_db: a day of inventory traffic over 3 diverse "
                    "engines, one progressively faulty"};
  table.header({"metric", "value"});
  table.row({"statements executed", util::Table::count(statements)});
  table.row({"statements refused", util::Table::count(refused)});
  table.row({"divergences masked/caught",
             util::Table::count(db.divergences_masked())});
  table.row({"replicas still in service",
             util::Table::count(db.replicas_in_service())});
  table.row({"faulty engine evicted", db.evicted().contains(2) ? "yes" : "no"});
  table.row({"end-of-day digest agreed", digest_ok ? "yes" : "NO"});
  table.row({"last audited stock value", util::Table::count(
                                              static_cast<std::size_t>(
                                                  audited_stock < 0
                                                      ? 0
                                                      : audited_stock))});
  table.print(std::cout);
  std::cout << (refused == 0 && digest_ok
                    ? "Every statement was answered correctly; the faulty "
                      "engine was caught and\nevicted without the "
                      "application noticing anything.\n"
                    : "Some statements failed — see the table.\n");
  return (refused == 0 && digest_ok) ? 0 : 1;
}
