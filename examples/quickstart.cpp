// Quickstart: protect a computation with N-version programming in a dozen
// lines. Three "independently developed" square-root routines — one of
// which has a bug on a corner of its input domain — run under a majority
// vote.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cmath>
#include <iostream>

#include "core/voters.hpp"
#include "techniques/nvp.hpp"

using namespace redundancy;

int main() {
  // Three versions of the same functionality. Version C ships a Bohrbug:
  // it returns garbage for inputs in [100, 110).
  auto version_a = core::make_variant<double, double>(
      "newton", [](const double& x) -> core::Result<double> {
        double r = x > 1 ? x / 2 : 1.0;
        for (int i = 0; i < 40; ++i) r = 0.5 * (r + x / r);
        return r;
      });
  auto version_b = core::make_variant<double, double>(
      "stdlib", [](const double& x) -> core::Result<double> {
        return std::sqrt(x);
      });
  auto version_c = core::make_variant<double, double>(
      "buggy-table", [](const double& x) -> core::Result<double> {
        if (x >= 100.0 && x < 110.0) return -1.0;  // the shipped fault
        return std::sqrt(x);
      });

  // Majority voting with a tolerance, because independently developed
  // numeric code legitimately differs in the last bits.
  techniques::NVersionProgramming<double, double> nvp{
      {version_a, version_b, version_c},
      core::majority_voter<double>(core::ApproxEq{1e-9})};

  std::cout << "sqrt under 3-version programming (tolerates "
            << nvp.tolerated_faults() << " faulty version):\n";
  for (double x : {2.0, 42.0, 104.0, 10'000.0}) {
    auto result = nvp.run(x);
    if (result.has_value()) {
      std::cout << "  sqrt(" << x << ") = " << result.value() << '\n';
    } else {
      std::cout << "  sqrt(" << x << ") FAILED: "
                << result.error().describe() << '\n';
    }
  }
  std::cout << "metrics: " << nvp.metrics().summary() << '\n'
            << "note: x=104 hits version C's fault region — the vote masked "
               "it.\n";
  return 0;
}
