// gateway_demo: a long-running net::Gateway host for end-to-end drills —
// the demo routes (/fast hedged+cached, /vote 3-variant majority, /echo,
// /big) plus the in-process /metrics and /healthz, served until SIGTERM or
// SIGINT. This is what the gateway-e2e CI job curls against.
//
// Environment:
//   REDUNDANCY_GATEWAY_PORT       listen port (default 8217)
//   REDUNDANCY_GATEWAY_LINGER_MS  exit after this long even without a
//                                 signal (default: run until signalled)
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/health.hpp"
#include "net/gateway.hpp"

namespace {

std::sig_atomic_t g_stop = 0;
void handle_stop(int) { g_stop = 1; }

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(raw, nullptr, 10));
}

}  // namespace

int main() {
  using namespace redundancy;
  core::HealthTracker health;
  net::Gateway::Options options;
  options.conn.port =
      static_cast<std::uint16_t>(env_or("REDUNDANCY_GATEWAY_PORT", 8217));
  options.health = &health;
  net::Gateway gateway{options};
  net::install_demo_routes(gateway);
  if (!gateway.start()) {
    std::fprintf(stderr, "gateway_demo: failed to start on port %zu\n",
                 env_or("REDUNDANCY_GATEWAY_PORT", 8217));
    return 1;
  }
  std::signal(SIGTERM, handle_stop);
  std::signal(SIGINT, handle_stop);
  std::printf("gateway_demo: serving on port %u\n", gateway.port());
  std::fflush(stdout);

  const std::size_t linger_ms = env_or("REDUNDANCY_GATEWAY_LINGER_MS", 0);
  std::size_t elapsed_ms = 0;
  while (g_stop == 0 && (linger_ms == 0 || elapsed_ms < linger_ms)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    elapsed_ms += 50;
  }
  gateway.stop();
  std::printf("gateway_demo: clean shutdown, jobs in flight: %zu\n",
              gateway.jobs_inflight());
  return gateway.jobs_inflight() == 0 ? 0 : 1;
}
