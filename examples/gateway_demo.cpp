// gateway_demo: a long-running net::Gateway host for end-to-end drills —
// the demo routes (/fast hedged+cached, /vote 3-variant majority, /echo,
// /big) plus the in-process /metrics, /healthz, /slo and /debug/flight,
// served until SIGTERM or SIGINT. This is what the gateway-e2e CI job
// curls against.
//
// Environment:
//   REDUNDANCY_GATEWAY_PORT       listen port (default 8217)
//   REDUNDANCY_GATEWAY_LINGER_MS  exit after this long even without a
//                                 signal (default: run until signalled)
//   REDUNDANCY_SLO_TARGETS        per-route SLOs, class=latency_ms@avail_pct
//                                 (default "/fast=50@99,/vote=50@99"); the
//                                 tracker rotates windows, serves /slo, and
//                                 feeds slo:<route> verdicts into /healthz
//   REDUNDANCY_SLO_EPOCH_MS       window rotation period (default 10000)
//   REDUNDANCY_FLIGHT_DUMP        enable the flight recorder, install the
//                                 crash handler appending to this path, and
//                                 dump there on a page-level SLO breach
//   REDUNDANCY_FLIGHT_RING        flight records per thread (default 1024)
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/health.hpp"
#include "net/gateway.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"

namespace {

std::sig_atomic_t g_stop = 0;
void handle_stop(int) { g_stop = 1; }

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(raw, nullptr, 10));
}

}  // namespace

int main() {
  using namespace redundancy;
  core::HealthTracker health;

  // SLO tracker over the demo routes; defaults keep the e2e drill honest
  // even with no environment set.
  const char* slo_spec = std::getenv("REDUNDANCY_SLO_TARGETS");
  if (slo_spec == nullptr || *slo_spec == '\0') {
    slo_spec = "/fast=50@99,/vote=50@99";
  }
  obs::SloTracker::Options slo_options;
  slo_options.epoch_ns =
      static_cast<std::uint64_t>(env_or("REDUNDANCY_SLO_EPOCH_MS", 10'000)) *
      1'000'000ull;
  obs::SloTracker slo{slo_options};
  for (const auto& [cls, target] : obs::parse_slo_targets(slo_spec)) {
    slo.register_class(cls, target);
  }
  slo.set_verdict_callback([&health](const obs::AdjudicationEvent& verdict) {
    health.observe(verdict);
  });

  const char* flight_path = std::getenv("REDUNDANCY_FLIGHT_DUMP");
  if (flight_path != nullptr && *flight_path != '\0') {
    auto& flight = obs::FlightRecorder::instance();
    flight.enable(env_or("REDUNDANCY_FLIGHT_RING", 1024));
    flight.install_crash_handler(flight_path);
    const std::string dump_path{flight_path};
    slo.set_breach_callback(
        [dump_path](const std::string& cls, const std::string& rule) {
          std::fprintf(stderr,
                       "gateway_demo: SLO breach on %s (%s); dumping flight "
                       "recorder -> %s\n",
                       cls.c_str(), rule.c_str(), dump_path.c_str());
          obs::FlightRecorder::instance().dump_to_path(dump_path.c_str());
        });
    std::fprintf(stderr, "gateway_demo: flight recorder on, crash dump -> %s\n",
                 flight_path);
  } else {
    // Always-on black box even without a dump path: /debug/flight works,
    // only the crash handler is left uninstalled.
    obs::FlightRecorder::instance().enable(
        env_or("REDUNDANCY_FLIGHT_RING", 1024));
  }
  slo.start();

  net::Gateway::Options options;
  options.conn.port =
      static_cast<std::uint16_t>(env_or("REDUNDANCY_GATEWAY_PORT", 8217));
  options.health = &health;
  options.slo = &slo;
  net::Gateway gateway{options};
  net::install_demo_routes(gateway);
  if (!gateway.start()) {
    std::fprintf(stderr, "gateway_demo: failed to start on port %zu\n",
                 env_or("REDUNDANCY_GATEWAY_PORT", 8217));
    return 1;
  }
  std::signal(SIGTERM, handle_stop);
  std::signal(SIGINT, handle_stop);
  std::printf(
      "gateway_demo: serving on port %u with %zu reactor loop%s (backend "
      "%s)\n",
      gateway.port(), gateway.loops(), gateway.loops() == 1 ? "" : "s",
      net::EventLoop::backend_name(gateway.backend()));
  std::fflush(stdout);

  const std::size_t linger_ms = env_or("REDUNDANCY_GATEWAY_LINGER_MS", 0);
  std::size_t elapsed_ms = 0;
  while (g_stop == 0 && (linger_ms == 0 || elapsed_ms < linger_ms)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    elapsed_ms += 50;
  }
  gateway.stop();
  slo.stop();
  std::printf("gateway_demo: clean shutdown, jobs in flight: %zu\n",
              gateway.jobs_inflight());
  for (std::size_t loop = 0; loop < gateway.loops(); ++loop) {
    std::printf("gateway_demo: loop %zu jobs in flight: %zu\n", loop,
                gateway.jobs_inflight(loop));
  }
  return gateway.jobs_inflight() == 0 ? 0 : 1;
}
