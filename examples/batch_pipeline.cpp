// batch_pipeline: the long-running-computation deployment (the setting of
// Huang/Garg rejuvenation and Elnozahy checkpoint-recovery). A nightly ETL
// job must push 200k records through an *aging* worker process — leaks
// accumulate, the failure hazard climbs, crashes lose uncommitted work.
//
// Configurations of the same job are compared live: reactive-only
// checkpointing at two checkpoint frequencies, and checkpointing combined
// with *preventive* rejuvenation (restart the worker on an age threshold,
// trading cheap planned downtime for expensive crashes and lost windows).
//
// Each processed batch is also wrapped in a saga so that a crash mid-batch
// compensates the partially published records.
#include <iostream>

#include "env/aging.hpp"
#include "env/checkpoint.hpp"
#include "techniques/rejuvenation.hpp"
#include "util/table.hpp"

using namespace redundancy;

namespace {

/// The job's durable state: how many records are committed.
class JobState final : public env::Checkpointable {
 public:
  std::int64_t committed = 0;
  [[nodiscard]] util::ByteBuffer snapshot() const override {
    util::ByteBuffer buf;
    buf.put(committed);
    return buf;
  }
  void restore(const util::ByteBuffer& state) override {
    committed = state.reader().get<std::int64_t>();
  }
};

struct RunReport {
  double elapsed = 0.0;
  std::uint64_t crashes = 0;
  std::uint64_t rejuvenations = 0;
  std::uint64_t checkpoints = 0;
};

constexpr std::int64_t kTotalRecords = 200'000;
constexpr std::int64_t kBatch = 100;  // records per worker request

env::AgingConfig worker_config() {
  env::AgingConfig cfg;
  cfg.capacity = 3000.0;       // leak budget before certain death
  cfg.mean_leak = 2.0;         // per batch
  cfg.hazard_scale = 0.12;
  cfg.reboot_time = 400.0;     // crash recovery is expensive
  cfg.request_time = 1.0;
  return cfg;
}

RunReport run_job(std::int64_t checkpoint_every_batches, bool rejuvenation,
                  std::uint64_t seed) {
  env::AgingProcess worker{worker_config(), seed};
  JobState state;
  env::CheckpointStore store{2};
  RunReport report;
  double extra_time = 0.0;
  constexpr double kCheckpointCost = 2.0;
  constexpr double kPlannedRestart = 60.0;

  std::int64_t batches_since_checkpoint = 0;
  store.capture(state);
  ++report.checkpoints;
  while (state.committed < kTotalRecords) {
    // Preventive rejuvenation: commit, then restart young at planned cost.
    if (rejuvenation && worker.age_fraction() > 0.2) {
      store.capture(state);
      ++report.checkpoints;
      extra_time += kCheckpointCost;
      batches_since_checkpoint = 0;
      worker.reboot();
      extra_time += kPlannedRestart - worker_config().reboot_time;
      ++report.rejuvenations;
    }
    if (batches_since_checkpoint >= checkpoint_every_batches) {
      store.capture(state);
      ++report.checkpoints;
      extra_time += kCheckpointCost;
      batches_since_checkpoint = 0;
    }
    auto status = worker.serve();
    if (status.has_value()) {
      state.committed += kBatch;  // the saga's forward step
      ++batches_since_checkpoint;
    } else {
      // Crash mid-batch: the saga compensates the partial batch (our
      // forward step is atomic here, so compensation is implicit), then we
      // roll back to the last durable state.
      ++report.crashes;
      (void)store.restore_latest(state);
      batches_since_checkpoint = 0;
      worker.reboot();
    }
  }
  report.elapsed = worker.clock() + extra_time;
  return report;
}

}  // namespace

int main() {
  util::Table table{
      "batch_pipeline: 200k records through an aging worker (batch=100, "
      "crash reboot=400, planned restart=60; mean of 5 seeds)"};
  table.header({"configuration", "elapsed", "crashes", "rejuvenations",
                "checkpoints"});

  struct Config {
    const char* name;
    std::int64_t checkpoint_every;
    bool rejuvenation;
  };
  for (const Config& cfg :
       {Config{"checkpoint/100 batches, reactive only", 100, false},
        Config{"checkpoint/20 batches, reactive only", 20, false},
        Config{"checkpoint/20 + rejuvenation @20% age", 20, true}}) {
    double elapsed = 0.0, crashes = 0.0, rejuv = 0.0, ckpts = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto r = run_job(cfg.checkpoint_every, cfg.rejuvenation, seed);
      elapsed += r.elapsed;
      crashes += static_cast<double>(r.crashes);
      rejuv += static_cast<double>(r.rejuvenations);
      ckpts += static_cast<double>(r.checkpoints);
    }
    table.row({cfg.name, util::Table::num(elapsed / 5.0, 0),
               util::Table::num(crashes / 5.0, 1),
               util::Table::num(rejuv / 5.0, 1),
               util::Table::num(ckpts / 5.0, 1)});
  }
  table.print(std::cout);
  std::cout << "Tighter checkpointing bounds the re-work lost per crash;\n"
               "rejuvenation then removes most crashes outright by restarting\n"
               "the worker before old age kills it — the stacked environment-\n"
               "redundancy recipe of Sections 4.3 and 5.2.\n";
  return 0;
}
