// survivable_server: the security-oriented deployment — the survey's
// malicious-fault techniques layered around one vulnerable network server.
//
//   * the request handler is the memory-unsafe VM server (unchecked copy
//     into a fixed buffer, function-pointer dispatch);
//   * it runs as 3 diversified process replicas (partitioned address
//     spaces + tagged instructions) behind a divergence monitor;
//   * the server's credential cell lives in a 3-variant data store, so
//     even a *successful* smash of one layout cannot be read back;
//   * the accounting heap is guarded by a Fetzer-style healer that bounds
//     checks every write.
//
// An attacker mixes benign traffic with absolute-address hijacks, code
// injection, and heap smashes.
//
// Live telemetry (opt-in): REDUNDANCY_OBS_HTTP_PORT=9137 starts the
// embedded exporter — `curl localhost:9137/metrics` scrapes Prometheus
// text, `/healthz` reports per-technique health from recent adjudication
// verdicts, `/traces?n=10` tails recent request spans. Set
// REDUNDANCY_OBS_HTTP_LINGER_MS to keep the endpoints up after the
// workload finishes.
#include <iostream>

#include "core/live_telemetry.hpp"
#include "techniques/nvariant_data.hpp"
#include "techniques/process_replicas.hpp"
#include "techniques/wrappers.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "vm/attacks.hpp"

using namespace redundancy;

int main() {
  auto telemetry = core::start_live_telemetry_from_env();
  util::Rng rng{1337};

  techniques::ProcessReplicas replicas{
      vm::vulnerable_server(),
      {.replicas = 3},
      [](vm::Vm& machine, std::size_t base) {
        (void)machine.poke(base + vm::ServerLayout::secret, vm::kSecretValue);
      }};
  const std::size_t known_base = replicas.partitions()[0].base;

  techniques::NVariantStore credentials{8, 3, /*seed=*/rng()};
  (void)credentials.write(0, 0x5ec7e7);  // the API token cell

  env::HeapModel heap{1 << 16};
  techniques::HeapHealer healer{heap};
  std::vector<env::BlockId> ledger;
  for (int i = 0; i < 16; ++i) ledger.push_back(healer.malloc(64).value());

  std::size_t benign_ok = 0, benign_total = 0;
  std::size_t attacks = 0, leaks = 0, detected = 0;
  std::size_t smashes_blocked = 0, cred_reads_blocked = 0;

  const std::vector<std::byte> oversized(256, std::byte{0x41});
  for (int t = 0; t < 3000; ++t) {
    replicas.reset();
    const double dice = rng.uniform();
    if (dice < 0.85) {
      // Benign request.
      ++benign_total;
      const int a = static_cast<int>(rng.below(1000));
      const int b = static_cast<int>(rng.below(1000));
      auto out = replicas.serve(vm::benign_request(a, b));
      if (out.has_value() && out.value().ret == a + b) ++benign_ok;
      // Normal ledger write, in bounds.
      (void)healer.write(ledger[rng.index(ledger.size())], 0,
                         std::span{oversized}.first(64));
    } else if (dice < 0.90) {
      // Control-flow hijack via hard-coded absolute address.
      ++attacks;
      auto out = replicas.serve(vm::absolute_address_attack(known_base));
      if (out.has_value() && out.value().ret == vm::kSecretValue) ++leaks;
      if (!out.has_value() &&
          out.error().kind == core::FailureKind::detected_attack) {
        ++detected;
      }
    } else if (dice < 0.95) {
      // Code injection with a guessed tag.
      ++attacks;
      auto out = replicas.serve(vm::code_injection_attack(
          known_base, static_cast<std::uint8_t>(rng.below(4))));
      if (out.has_value() && out.value().ret == vm::kSecretValue) ++leaks;
      if (!out.has_value() &&
          out.error().kind == core::FailureKind::detected_attack) {
        ++detected;
      }
    } else {
      // Heap smash against the ledger + direct credential overwrite.
      ++attacks;
      auto status =
          healer.write(ledger[rng.index(ledger.size())], 32, oversized);
      if (!status.has_value()) ++smashes_blocked;
      credentials.smash_all_variants(0, static_cast<std::int64_t>(rng()));
      if (!credentials.read(0).has_value()) {
        ++cred_reads_blocked;
        (void)credentials.write(0, 0x5ec7e7);  // operator restores the cell
      }
      ++detected;
    }
  }

  util::Table table{"survivable_server: 3000 requests, ~15% hostile"};
  table.header({"metric", "value"});
  table.row({"benign served correctly", std::to_string(benign_ok) + "/" +
                                            std::to_string(benign_total)});
  table.row({"attacks launched", util::Table::count(attacks)});
  table.row({"secrets leaked", util::Table::count(leaks)});
  table.row({"attacks detected by replica divergence",
             util::Table::count(replicas.detections())});
  table.row({"heap smashes blocked by the healer",
             util::Table::count(smashes_blocked)});
  table.row({"credential corruptions caught by N-variant data",
             util::Table::count(cred_reads_blocked)});
  table.row({"ledger blocks corrupted",
             util::Table::count(heap.corrupted_blocks())});
  table.print(std::cout);
  std::cout << (leaks == 0 && heap.corrupted_blocks() == 0
                    ? "Zero leaks, zero corrupted blocks: every attack was "
                      "detected or defused.\n"
                    : "SOME ATTACKS SUCCEEDED — see the table.\n");
  if (telemetry) core::linger_from_env();
  return (leaks == 0 && heap.corrupted_blocks() == 0) ? 0 : 1;
}
