// survivable_server: the security-oriented deployment — the survey's
// malicious-fault techniques layered around one vulnerable network server,
// now served over a REAL socket through the net::Gateway front door.
//
//   * the request handler is the memory-unsafe VM server (unchecked copy
//     into a fixed buffer, function-pointer dispatch);
//   * it runs as 3 diversified process replicas (partitioned address
//     spaces + tagged instructions) behind a divergence monitor;
//   * the server's credential cell lives in a 3-variant data store, so
//     even a *successful* smash of one layout cannot be read back;
//   * the accounting heap is guarded by a Fetzer-style healer that bounds
//     checks every write;
//   * everything above sits behind the epoll event loop: requests are
//     parsed on the loop thread, dispatched into the lock-free engine via
//     submit_batch, and completions come back over the wakeup-fd queue.
//
// An attacker (the in-process client below, over a keep-alive loopback
// connection) mixes benign traffic with absolute-address hijacks, code
// injection, and heap smashes — every attack travels through the same
// HTTP front door a real one would.
//
// Live telemetry (opt-in): REDUNDANCY_OBS_HTTP_PORT=9137 starts the
// embedded exporter — `curl localhost:9137/metrics` scrapes Prometheus
// text, `/healthz` reports per-technique health from recent adjudication
// verdicts, `/traces?n=10` tails recent request spans. The gateway also
// serves `/metrics` and `/healthz` in-process on its own port. Set
// REDUNDANCY_OBS_HTTP_LINGER_MS to keep the endpoints up after the
// workload finishes.
#include <iostream>
#include <mutex>
#include <string>

#include "core/live_telemetry.hpp"
#include "net/gateway.hpp"
#include "net/loopback_client.hpp"
#include "techniques/nvariant_data.hpp"
#include "techniques/process_replicas.hpp"
#include "techniques/wrappers.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "vm/attacks.hpp"

using namespace redundancy;

namespace {

/// All the redundancy-protected server state, shared by the route handlers.
/// Handlers run on pool workers, so one mutex serializes the techniques
/// (each pattern instance is owner-thread by contract); the gateway's
/// event loop and engine dispatch stay fully concurrent around it.
struct Survivable {
  std::mutex m;
  techniques::ProcessReplicas replicas;
  std::size_t known_base;
  techniques::NVariantStore credentials;
  env::HeapModel heap{1 << 16};
  techniques::HeapHealer healer{heap};
  std::vector<env::BlockId> ledger;
  const std::vector<std::byte> oversized =
      std::vector<std::byte>(256, std::byte{0x41});

  explicit Survivable(std::uint64_t seed)
      : replicas{vm::vulnerable_server(),
                 {.replicas = 3},
                 [](vm::Vm& machine, std::size_t base) {
                   (void)machine.poke(base + vm::ServerLayout::secret,
                                      vm::kSecretValue);
                 }},
        known_base{replicas.partitions()[0].base},
        credentials{8, 3, seed} {
    (void)credentials.write(0, 0x5ec7e7);  // the API token cell
    for (int i = 0; i < 16; ++i) ledger.push_back(healer.malloc(64).value());
  }
};

std::uint64_t param(const net::Gateway::Request& request, const char* key) {
  return static_cast<std::uint64_t>(
      net::http::query_param(request.query, key).value_or(0));
}

net::http::Response text(std::string body) {
  return {200, "text/plain; charset=utf-8", std::move(body)};
}

void install_survivable_routes(net::Gateway& gateway, Survivable& s) {
  // Benign request: replicated VM serve + an in-bounds ledger write.
  gateway.add_route("/vm", [&s](const net::Gateway::Request& request) {
    const int a = static_cast<int>(param(request, "a"));
    const int b = static_cast<int>(param(request, "b"));
    const std::size_t i = param(request, "i") % 16;
    std::lock_guard lock{s.m};
    s.replicas.reset();
    auto out = s.replicas.serve(vm::benign_request(a, b));
    (void)s.healer.write(s.ledger[i], 0, std::span{s.oversized}.first(64));
    if (out.has_value() && out.value().ret == a + b) return text("ok\n");
    return text("wrong\n");
  });
  // Control-flow hijack via hard-coded absolute address, or code injection
  // with a guessed tag — exactly what a remote attacker would send.
  gateway.add_route("/attack", [&s](const net::Gateway::Request& request) {
    const bool inject = net::http::query_param(request.query, "tag").has_value();
    const auto tag = static_cast<std::uint8_t>(param(request, "tag") % 4);
    std::lock_guard lock{s.m};
    s.replicas.reset();
    auto out = s.replicas.serve(
        inject ? vm::code_injection_attack(s.known_base, tag)
               : vm::absolute_address_attack(s.known_base));
    if (out.has_value() && out.value().ret == vm::kSecretValue) {
      return text("leak\n");  // the secret escaped: the defense failed
    }
    if (!out.has_value() &&
        out.error().kind == core::FailureKind::detected_attack) {
      return text("detected\n");
    }
    return text("survived\n");
  });
  // Heap smash against the ledger + direct credential overwrite.
  gateway.add_route("/smash", [&s](const net::Gateway::Request& request) {
    const std::size_t i = param(request, "i") % 16;
    const auto garbage = static_cast<std::int64_t>(param(request, "v"));
    std::lock_guard lock{s.m};
    auto status = s.healer.write(s.ledger[i], 32, s.oversized);
    const bool blocked = !status.has_value();
    s.credentials.smash_all_variants(0, garbage);
    bool caught = false;
    if (!s.credentials.read(0).has_value()) {
      caught = true;
      (void)s.credentials.write(0, 0x5ec7e7);  // operator restores the cell
    }
    return text(std::string{blocked ? "blocked" : "missed"} + " " +
                (caught ? "caught" : "leaked") + "\n");
  });
  // End-of-run accounting the client cannot see from response bodies.
  gateway.add_route("/final", [&s](const net::Gateway::Request&) {
    std::lock_guard lock{s.m};
    return text("detections=" + std::to_string(s.replicas.detections()) +
                " corrupted=" + std::to_string(s.heap.corrupted_blocks()) +
                "\n");
  });
}

}  // namespace

int main() {
  auto telemetry = core::start_live_telemetry_from_env();
  util::Rng rng{1337};

  Survivable state{/*seed=*/rng()};
  net::Gateway gateway;
  install_survivable_routes(gateway, state);
  if (!gateway.start()) {
    std::cerr << "survivable_server: gateway failed to start\n";
    return 1;
  }

  // The attacker/client side: one keep-alive connection through the real
  // front door, same 3000-request ~15%-hostile mix as always.
  const int fd = net::loopback::connect_loopback(gateway.port());
  if (fd < 0) {
    std::cerr << "survivable_server: loopback connect failed\n";
    return 1;
  }
  const auto exchange = [fd](const std::string& target) {
    if (!net::loopback::send_all(fd,
                                 "GET " + target + " HTTP/1.1\r\n\r\n")) {
      return std::string{};
    }
    const net::loopback::Reply reply = net::loopback::read_response(fd);
    return reply.complete ? reply.body : std::string{};
  };

  std::size_t benign_ok = 0, benign_total = 0;
  std::size_t attacks = 0, leaks = 0, detected = 0;
  std::size_t smashes_blocked = 0, cred_reads_blocked = 0;

  for (int t = 0; t < 3000; ++t) {
    const double dice = rng.uniform();
    if (dice < 0.85) {
      ++benign_total;
      const auto a = rng.below(1000);
      const auto b = rng.below(1000);
      const std::string body = exchange(
          "/vm?a=" + std::to_string(a) + "&b=" + std::to_string(b) +
          "&i=" + std::to_string(rng.below(16)));
      if (body == "ok\n") ++benign_ok;
    } else if (dice < 0.95) {
      ++attacks;
      const std::string target =
          dice < 0.90 ? "/attack"
                      : "/attack?tag=" + std::to_string(rng.below(4));
      const std::string body = exchange(target);
      if (body == "leak\n") ++leaks;
      if (body == "detected\n") ++detected;
    } else {
      ++attacks;
      const std::string body = exchange(
          "/smash?i=" + std::to_string(rng.below(16)) +
          "&v=" + std::to_string(rng()));
      if (body.rfind("blocked", 0) == 0) ++smashes_blocked;
      if (body.find("caught") != std::string::npos) {
        ++cred_reads_blocked;
      }
      ++detected;
    }
  }

  // Server-side tallies the wire cannot carry per-request.
  const std::string final_body = exchange("/final");
  std::size_t divergence_detections = 0, corrupted_blocks = 0;
  (void)std::sscanf(final_body.c_str(), "detections=%zu corrupted=%zu",
                    &divergence_detections, &corrupted_blocks);
  ::close(fd);
  gateway.stop();

  util::Table table{
      "survivable_server: 3000 requests via net::Gateway, ~15% hostile"};
  table.header({"metric", "value"});
  table.row({"benign served correctly", std::to_string(benign_ok) + "/" +
                                            std::to_string(benign_total)});
  table.row({"attacks launched", util::Table::count(attacks)});
  table.row({"secrets leaked", util::Table::count(leaks)});
  table.row({"attacks detected by replica divergence",
             util::Table::count(divergence_detections)});
  table.row({"heap smashes blocked by the healer",
             util::Table::count(smashes_blocked)});
  table.row({"credential corruptions caught by N-variant data",
             util::Table::count(cred_reads_blocked)});
  table.row({"ledger blocks corrupted", util::Table::count(corrupted_blocks)});
  table.print(std::cout);
  std::cout << (leaks == 0 && corrupted_blocks == 0
                    ? "Zero leaks, zero corrupted blocks: every attack was "
                      "detected or defused.\n"
                    : "SOME ATTACKS SUCCEEDED — see the table.\n");
  if (telemetry) core::linger_from_env();
  return (leaks == 0 && corrupted_blocks == 0) ? 0 : 1;
}
